"""Setup shim for legacy editable installs (offline environments).

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works without the ``wheel`` package (PEP 660 editable
wheels require bdist_wheel, unavailable offline).
"""

from setuptools import setup

setup()
