#!/usr/bin/env python
"""End-to-end stack: heartbeat ◇P₁ over GST partial synchrony.

No oracle anywhere — the failure detector is implemented with heartbeats
and adaptive timeouts over a network whose delays are wild (up to 8 time
units) before a global stabilization time and bounded (≤ 1) afterwards.
The early chaos causes real false suspicions (watch the counter); the
adaptive timeouts absorb them; and Algorithm 1 on top still delivers
wait-freedom, an eventually clean exclusion suffix, and 2-bounded
waiting — with two diners crashing along the way.

Run:  python examples/heartbeat_partial_synchrony.py
"""

from repro import AlwaysHungry, CrashPlan, DiningTable, PartialSynchronyLatency, heartbeat_detector
from repro.graphs import ring


def main() -> None:
    gst = 60.0
    graph = ring(8)
    table = DiningTable(
        graph,
        seed=11,
        latency=PartialSynchronyLatency(
            gst=gst, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
        ),
        detector=heartbeat_detector(interval=1.0, initial_timeout=2.0, timeout_increment=1.0),
        crash_plan=CrashPlan.scripted({2: 30.0, 6: 80.0}),
        workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
    )

    for checkpoint in (gst, 200.0, 700.0):
        table.run(until=checkpoint)
        print(
            f"t={table.sim.now:6.0f}: "
            f"{sum(table.eat_counts().values()):5d} meals, "
            f"{len(table.violations()):2d} violations so far, "
            f"{table.detector.total_false_retractions():3d} false suspicions retracted"
        )

    print("\nDetector timeline: hostile pre-GST, quiet afterwards.")
    starving = table.starving_correct(patience=250.0)
    late_violations = table.violations_after(350.0)
    overtaking = table.max_overtaking(after=350.0)

    print(f"Starving correct diners:        {starving or 'none'}")
    print(f"Violations after t=350:         {len(late_violations)}")
    print(f"Max overtaking after t=350:     {overtaking}")
    print(f"Dining messages to crashed 2:   "
          f"{len(table.quiescence.sends_to(2, layer='dining'))} (then silence)")
    print(f"Peak dining messages per edge:  {table.occupancy.max_occupancy} (bound: 4)")

    assert not starving and not late_violations and overtaking <= 2
    print("\nThe full stack delivers the paper's guarantees with a real ◇P₁. ✓")


if __name__ == "__main__":
    main()
