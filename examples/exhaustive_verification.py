#!/usr/bin/env python
"""Exhaustive verification: every schedule of a small dining instance.

Simulation samples one schedule per seed; the paper's proofs quantify
over all of them.  For small crash-free configurations this demo closes
the gap with bounded model checking of the *real* diner objects: it
explores every FIFO-respecting interleaving of message deliveries and
timer firings, checking in each reachable state that no two neighbors
eat simultaneously (with no crashes and no detector mistakes, weak
exclusion is perpetual), that forks and tokens stay unique, and that no
hungry diner is ever stuck with nothing left to happen.

Then it seeds a one-line bug — granting fork requests even while eating —
and shows the explorer producing a concrete counterexample schedule.

Run:  python examples/exhaustive_verification.py
"""

import types

from repro.core.messages import Fork
from repro.graphs import path, ring, star
from repro.verify import explore_dining


def verify_scopes() -> None:
    print("Exhaustive exploration (all FIFO-respecting schedules):\n")
    print(f"{'scope':<22} {'states':>8} {'replayed':>10} {'depth':>6}  verdict")
    print("-" * 60)
    scopes = [
        ("path-2, 2 sessions", lambda: explore_dining(path(2), max_sessions=2)),
        ("path-3", lambda: explore_dining(path(3), max_sessions=1)),
        ("ring-3", lambda: explore_dining(ring(3), max_sessions=1)),
        ("star-4", lambda: explore_dining(star(4), max_sessions=1)),
    ]
    for name, run in scopes:
        report = run()
        verdict = "CLEAN" if report.clean else "VIOLATIONS!"
        print(
            f"{name:<22} {report.states_visited:>8} {report.events_fired:>10} "
            f"{report.max_depth:>6}  {verdict}"
        )
        assert report.clean


def hunt_seeded_bug() -> None:
    def eager_grant(diner):
        def evil(self, src, requester_color):
            link = self.links[src]
            link.token = True
            if link.fork:  # grants even while eating: the seeded bug
                self.send(src, Fork(self.pid))
                link.fork = False

        diner._on_fork_request = types.MethodType(evil, diner)

    report = explore_dining(path(2), max_sessions=2, diner_mutator=eager_grant)
    violation = report.violations[0]
    print("\nSeeded bug (fork granted while eating) — counterexample found:")
    print(f"  property violated: {violation.kind} ({violation.detail})")
    print("  schedule reaching it:")
    for step in violation.path:
        print(f"    {step}")
    assert violation.kind == "exclusion"


def main() -> None:
    verify_scopes()
    hunt_seeded_bug()
    print(
        "\nEvery reachable state of the unmodified algorithm is safe; the"
        "\nmutated algorithm is caught with a concrete schedule. ✓"
    )


if __name__ == "__main__":
    main()
