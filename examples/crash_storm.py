#!/usr/bin/env python
"""Crash storm: wait-freedom under arbitrarily many crash faults.

The paper's progress guarantee holds "in the presence of arbitrarily many
crash faults".  This demo pushes that to the limit on a 10-clique (global
mutual exclusion — everyone conflicts with everyone): diners crash one by
one until a single survivor remains, and after every crash the remaining
correct diners keep right on eating.  The same storm starves the
oracle-free Choy-Singh baseline at the very first crash.

Run:  python examples/crash_storm.py
"""

from repro import AlwaysHungry, CrashPlan, DiningTable, scripted_detector
from repro.baselines import choy_singh_table
from repro.graphs import clique


def storm_plan(n: int) -> CrashPlan:
    # One crash every 30 time units; all but diner 0 eventually die.
    return CrashPlan.scripted({pid: 30.0 * pid for pid in range(1, n)})


def main() -> None:
    n = 10
    graph = clique(n)
    plan = storm_plan(n)

    table = DiningTable(
        graph,
        seed=3,
        detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
        crash_plan=plan,
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )

    print("Algorithm 1 under the storm (one crash every 30 t.u.):")
    previous = {pid: 0 for pid in range(n)}
    for step in range(1, n):
        table.run(until=30.0 * step)
        meals = table.eat_counts()
        live = [pid for pid in range(n) if not table.diners[pid].crashed]
        gained = {pid: meals.get(pid, 0) - previous[pid] for pid in live}
        previous = {pid: meals.get(pid, 0) for pid in range(n)}
        print(
            f"  t={30 * step:4d}: {len(live):2d} live; "
            f"meals gained this window by live diners: "
            f"min={min(gained.values())}, max={max(gained.values())}"
        )
        assert min(gained.values()) > 0, "a live diner stopped eating"

    table.run(until=30.0 * n + 100.0)
    assert table.starving_correct(patience=80.0) == []
    survivor_meals = table.eat_counts()[0]
    print(f"  survivor (diner 0) total meals: {survivor_meals}")

    print("\nChoy-Singh baseline under the same storm:")
    baseline = choy_singh_table(
        graph,
        seed=3,
        crash_plan=plan,
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )
    baseline.run(until=30.0 * n + 100.0)
    starving = baseline.starving_correct(patience=120.0)
    print(f"  starving correct diners: {starving}")
    assert starving, "the crash-oblivious baseline should starve"

    print("\nAlgorithm 1 stayed wait-free down to the last diner; the")
    print("baseline stalled at the first crash. ✓")


if __name__ == "__main__":
    main()
