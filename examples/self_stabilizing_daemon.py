#!/usr/bin/env python
"""The paper's motivating application: a wait-free daemon scheduling a
self-stabilizing protocol through crashes and transient faults.

A 4×4 grid hosts a self-stabilizing graph-coloring protocol.  The run is
hostile on purpose:

* the protocol starts fully corrupted (every register = 0, every edge in
  collision);
* two processes crash mid-run;
* a transient-fault burst re-corrupts three registers later;
* the failure detector makes mistakes until t=30, so early scheduling
  can co-schedule neighbors — each such sharing violation is charged as
  one more transient fault, exactly as the paper models it.

Because the daemon is wait-free, every correct process keeps executing
steps, and the protocol converges anyway.  For contrast, the same
scenario is replayed under the crash-oblivious Choy-Singh daemon, where
the neighbors of crashed processes starve and convergence fails.

Run:  python examples/self_stabilizing_daemon.py
"""

from repro import CrashPlan, DistributedDaemon, null_detector, scripted_detector
from repro.baselines import ChoySinghDiner
from repro.graphs import grid
from repro.stabilization import GreedyRecoloring, TransientFaultPlan


def run_scenario(kind: str) -> DistributedDaemon:
    graph = grid(4, 4)
    protocol = GreedyRecoloring(graph)  # all-zero: maximal corruption
    crash_plan = CrashPlan.scripted({5: 20.0, 10: 35.0})

    if kind == "wait-free":
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=11,
            detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
            crash_plan=crash_plan,
        )
    else:
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=11,
            detector=null_detector(),
            diner_factory=ChoySinghDiner,
            crash_plan=crash_plan,
        )

    # After the crashes: corrupt a live neighbor of a crashed process so
    # it collides with one of its own live neighbors.  Only that process
    # can repair the collision — if it starves, corruption is permanent.
    def targeted_fault() -> None:
        live = set(daemon.live_pids())
        for dead in crash_plan.faulty:
            for victim in graph.neighbors(dead):
                if victim in live:
                    peers = [p for p in graph.neighbors(victim) if p in live]
                    if peers:
                        daemon.corrupt_register(victim, protocol.read(peers[0]))
                        return

    daemon.table.sim.schedule_at(120.0, targeted_fault)
    faults = TransientFaultPlan.random(daemon, burst_times=(160.0,), victims_per_burst=3)
    faults.apply(daemon)

    daemon.run(until=500.0)
    return daemon


def report(kind: str, daemon: DistributedDaemon) -> None:
    protocol = daemon.protocol
    live = daemon.live_pids()
    conflicts = protocol.conflict_edges(live)
    print(f"\n=== {kind} daemon ===")
    print(f"  protocol steps executed:   {daemon.steps_executed}")
    print(f"  sharing violations (→ transient faults): {daemon.sharing_violations}")
    print(f"  converged: {daemon.converged()}", end="")
    if daemon.converged():
        print(f"  (legitimate since t≈{daemon.convergence_time():.1f})")
    else:
        print(f"  — {len(conflicts)} unrepaired collisions: {conflicts}")


def main() -> None:
    wait_free = run_scenario("wait-free")
    report("wait-free (Algorithm 1 + ◇P₁)", wait_free)

    baseline = run_scenario("crash-oblivious")
    report("crash-oblivious (Choy-Singh)", baseline)

    assert wait_free.converged()
    assert not baseline.converged()
    print(
        "\nThe wait-free daemon restored a proper coloring despite crashes,"
        "\ncorruption, and pre-convergence scheduling mistakes; the"
        "\ncrash-oblivious daemon left corruption parked at starved processes. ✓"
    )


if __name__ == "__main__":
    main()
