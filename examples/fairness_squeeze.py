#!/usr/bin/env python
"""Fairness demo: the squeeze scenario (Theorem 3 vs. a doorway-free baseline).

Diner 1 has the lowest static priority and sits between two always-hungry
high-priority rivals.  Under forks-only static-priority dining, the
rivals take the forks back faster than diner 1 can collect both, and its
overtake count grows with the run.  Under Algorithm 1, the asynchronous
doorway with the one-ack-per-session throttle pins overtaking at 2.

Run:  python examples/fairness_squeeze.py
"""

from repro import AlwaysHungry, DiningTable, scripted_detector
from repro.baselines import fork_priority_table
from repro.graphs import path
from repro.sim.latency import UniformLatency

SQUEEZE_COLORING = {0: 1, 1: 0, 2: 2}  # diner 1 always loses fork conflicts
WORKLOAD = dict(eat_time=1.0, think_time=0.01)


def run_fork_priority(horizon: float):
    table = fork_priority_table(
        path(3),
        seed=5,
        coloring=SQUEEZE_COLORING,
        workload=AlwaysHungry(**WORKLOAD),
        latency=UniformLatency(0.2, 0.6),
    )
    table.run(until=horizon)
    return table


def run_algorithm_1(horizon: float):
    table = DiningTable(
        path(3),
        seed=5,
        coloring=SQUEEZE_COLORING,
        workload=AlwaysHungry(**WORKLOAD),
        latency=UniformLatency(0.2, 0.6),
        detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
    )
    table.run(until=horizon)
    return table


def main() -> None:
    print(f"{'horizon':>8}  {'algorithm':<14}  {'victim meals':>12}  {'max overtaking':>15}")
    print("-" * 58)
    for horizon in (250.0, 500.0, 1000.0):
        for name, runner, cutoff in (
            ("fork-priority", run_fork_priority, 0.0),
            ("algorithm-1", run_algorithm_1, 60.0),
        ):
            table = runner(horizon)
            meals = table.eat_counts()
            overtaking = table.max_overtaking(after=cutoff)
            print(f"{horizon:8.0f}  {name:<14}  {meals.get(1, 0):12d}  {overtaking:15d}")

    final_baseline = run_fork_priority(1000.0)
    final_alg1 = run_algorithm_1(1000.0)
    assert final_baseline.max_overtaking() > 2
    assert final_alg1.max_overtaking(after=60.0) <= 2
    print(
        "\nForks-only overtaking grows with run length; Algorithm 1 stays"
        "\nat the paper's k = 2 bound after detector convergence. ✓"
    )


if __name__ == "__main__":
    main()
