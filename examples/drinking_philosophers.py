#!/usr/bin/env python
"""Drinking philosophers: the dining substrate lifted to partial demands.

Eight processes in full conflict (a clique — think: eight services
sharing 28 pairwise locks).  Under dining, every session grabs all locks,
so at most one process runs at a time.  Under drinking, each session
declares just the locks it needs; sessions with disjoint demands run
concurrently, and the paper's machinery still guarantees wait-freedom
under crashes and an eventually clean (bottle-scoped) exclusion suffix.

Run:  python examples/drinking_philosophers.py
"""

from repro import CrashPlan, scripted_detector
from repro.drinking import (
    RandomThirst,
    concurrency_profile,
    drinking_table,
    drinking_violations_after,
)
from repro.graphs import clique


def run(demand: float):
    graph = clique(8)
    table = drinking_table(
        graph,
        seed=10,
        workload=RandomThirst(demand=demand, drink_time=1.0),
        detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
        crash_plan=CrashPlan.scripted({3: 40.0}),
    )
    table.run(until=300.0)
    return graph, table


def main() -> None:
    print(f"{'demand':>7}  {'drinks':>7}  {'mean conc.':>10}  {'peak':>5}  "
          f"{'late viol.':>10}  {'starving':>8}")
    print("-" * 58)
    for demand in (1.0, 0.6, 0.3):
        graph, table = run(demand)
        profile = concurrency_profile(table.trace, graph, horizon=300.0)
        late = drinking_violations_after(table.trace, graph, 43.0, horizon=300.0)
        starving = table.starving_correct(patience=120.0)
        print(
            f"{demand:7.1f}  {sum(table.eat_counts().values()):7d}  "
            f"{profile['mean']:10.2f}  {profile['peak']:5.0f}  "
            f"{len(late):10d}  {len(starving):8d}"
        )
        assert not late and not starving

    print(
        "\ndemand 1.0 is dining (exclusion caps the clique at ~1 concurrent"
        "\ndrinker); thinning demands multiplies throughput while every"
        "\npaper guarantee — wait-freedom included, despite the crash —"
        "\ncarries over to the bottle-scoped setting. ✓"
    )


if __name__ == "__main__":
    main()
