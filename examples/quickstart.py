#!/usr/bin/env python
"""Quickstart: wait-free dining on a ring with a crash.

Builds an 8-diner ring, gives it an eventually perfect failure detector
(◇P₁) that makes random mistakes until t=40, crashes one diner mid-run,
and then verifies the paper's three headline guarantees on the trace:

* wait-freedom      — every correct hungry diner keeps eating;
* eventual weak exclusion — conflicts only during the mistake window;
* eventual 2-bounded waiting — nobody is overtaken more than twice.

Run:  python examples/quickstart.py
"""

from repro import CrashPlan, DiningTable, scripted_detector
from repro.graphs import ring


def main() -> None:
    convergence_time = 40.0
    graph = ring(8)
    table = DiningTable(
        graph,
        seed=7,
        detector=scripted_detector(
            convergence_time=convergence_time,
            random_mistakes=True,  # false suspicions before convergence
        ),
        crash_plan=CrashPlan.scripted({3: 25.0}),  # diner 3 dies at t=25
    )
    table.run(until=400.0)

    meals = table.eat_counts()
    print("Meals per diner:")
    for pid in graph.nodes:
        fate = "CRASHED t=25" if pid == 3 else ""
        print(f"  diner {pid}: {meals.get(pid, 0):4d} meals  {fate}")

    starving = table.starving_correct(patience=150.0)
    print(f"\nStarving correct diners: {starving or 'none'} (wait-freedom)")

    violations = table.violations()
    # Settling margin: convergence + crash detection + one eating duration.
    cutoff = convergence_time + 1.0 + 1.0
    late = table.violations_after(cutoff)
    print(
        f"Exclusion violations: {len(violations)} total, "
        f"{len(late)} after t={cutoff:.0f} (eventual weak exclusion)"
    )

    overtaking = table.max_overtaking(after=100.0)
    print(f"Max overtaking after t=100: {overtaking} (eventual 2-bounded waiting)")

    assert not starving
    assert not late
    assert overtaking <= 2
    print("\nAll three guarantees hold on this run. ✓")


if __name__ == "__main__":
    main()
