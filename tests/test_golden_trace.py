"""Golden-trace refactor pin (determinism contract).

Runs a fixed-seed ring-5 scenario — contention, detector mistakes, and a
mid-run crash, so CONTROL/DELIVERY/TIMER/REEVALUATE events all interleave
— and asserts that the serialized trace is **byte-identical** to the
recording checked into ``tests/fixtures/golden_trace_ring5.json``.

The fixture was produced by the pre-calendar-queue binary-heap kernel, so
this test is the proof that the event-queue rework preserved the
``(time, priority, sequence)`` determinism contract bit-for-bit: any
reordering of same-instant events, any change in tie-breaking, or any
drift in the random-stream consumption order changes the trace bytes and
fails the hash comparison.

Regenerate (only when the scenario itself is deliberately changed) with:

    PYTHONPATH=src python tests/test_golden_trace.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import ring
from repro.sim.crash import CrashPlan
from repro.trace import serialize

FIXTURE = Path(__file__).parent / "fixtures" / "golden_trace_ring5.json"


def run_golden_scenario() -> DiningTable:
    """The pinned scenario: ring-5, seed 2026, one crash, noisy detector."""
    table = DiningTable(
        ring(5),
        seed=2026,
        detector=scripted_detector(
            convergence_time=20.0,
            detection_delay=1.0,
            random_mistakes=True,
            mistakes_per_edge=1.0,
        ),
        crash_plan=CrashPlan.scripted({2: 25.0}),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.05),
        strict_checks=False,  # pre-convergence mistakes may cause violations
    )
    table.run(until=150.0)
    return table


def trace_bytes(table: DiningTable) -> bytes:
    """Canonical byte serialization of the recorded trace."""
    lines = [
        json.dumps(serialize.record_to_dict(record), sort_keys=True)
        for record in table.trace
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


def measure() -> dict:
    table = run_golden_scenario()
    payload = trace_bytes(table)
    return {
        "scenario": "ring-5 seed-2026 crash@25 T_c=20 mistakes horizon-150",
        "records": len(table.trace),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "fingerprint": list(table.fingerprint()),
    }


def test_golden_trace_bytes_are_pinned():
    expected = json.loads(FIXTURE.read_text())
    actual = measure()
    assert actual["records"] == expected["records"], (
        "trace length diverged from the pinned recording"
    )
    assert actual["sha256"] == expected["sha256"], (
        "trace bytes diverged from the pre-refactor recording — the "
        "(time, priority, sequence) determinism contract is broken"
    )


def test_golden_fingerprint_is_pinned():
    """Event/message/meal counts pin the run beyond the trace records."""
    expected = json.loads(FIXTURE.read_text())
    table = run_golden_scenario()
    actual = json.loads(json.dumps(table.fingerprint()))  # tuples -> lists
    assert actual == expected["fingerprint"]


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(measure(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
