"""Empirical checks of the paper's lemmas and proof-level invariants.

Lemmas 1.1/1.2 (fork uniqueness) and 2.2 (one pending ping per pair) are
enforced online by the checkers in :mod:`repro.checks`, which the
DiningTable arms by default (raising strictly through
:func:`repro.sim.checks.raise_violation`) — the tests here (a) confirm
the checkers would actually catch violations, and (b) verify the
lemma-shaped facts on real runs, including the ack-budget mechanics
behind Theorem 3.
"""

from dataclasses import dataclass

import pytest

from repro.checks import (
    CheckSuite,
    DeliverEvent,
    DinerLocalChecker,
    PendingPingChecker,
    ProbeEvent,
    SendEvent,
)
from repro.core import AlwaysHungry, DiningTable, ScriptedWorkload, scripted_detector
from repro.core.messages import Ack
from repro.errors import InvariantViolation
from repro.graphs import clique, path
from repro.sim.checks import raise_violation
from repro.sim.crash import CrashPlan
from repro.sim.latency import LogNormalLatency
from repro.sim.network import NetworkMonitor


# ----------------------------------------------------------------------
# Checker unit tests (violations ARE caught)
# ----------------------------------------------------------------------
@dataclass
class FakeLink:
    ack: bool = False
    replied: bool = False


class FakeDiner:
    def __init__(self, *, eating=False, inside=False, hungry=False, links=None):
        self.crashed = False
        self.is_eating = eating
        self.inside = inside
        self.is_hungry = hungry
        self.phase = "eating" if eating else ("hungry" if hungry else "thinking")
        self._links = links or {}

    def _links_in_order(self):
        return iter(sorted(self._links.items()))


def _strict_suite(*checkers):
    """The same strict arming the DiningTable uses by default."""
    return CheckSuite(checkers, on_violation=raise_violation)


class TestDinerLocalChecker:
    def _probe(self, states, time=1.0):
        _strict_suite(DinerLocalChecker()).observe(ProbeEvent(time, states))

    def test_eating_outside_doorway_caught(self):
        with pytest.raises(InvariantViolation, match="outside the doorway"):
            self._probe({0: FakeDiner(eating=True, inside=False)})

    def test_ack_while_inside_caught(self):
        diner = FakeDiner(hungry=True, inside=True, links={1: FakeLink(ack=True)})
        with pytest.raises(InvariantViolation, match="doorway ack"):
            self._probe({0: diner})

    def test_replied_while_thinking_caught(self):
        diner = FakeDiner(links={1: FakeLink(replied=True)})
        with pytest.raises(InvariantViolation, match="replied"):
            self._probe({0: diner})

    def test_clean_states_pass(self):
        self._probe(
            {
                0: FakeDiner(eating=True, inside=True),
                1: FakeDiner(hungry=True, links={0: FakeLink(ack=True, replied=True)}),
            }
        )

    def test_crashed_diners_skipped(self):
        diner = FakeDiner(eating=True, inside=False)
        diner.crashed = True
        self._probe({0: diner})


class TestPendingPingChecker:
    @staticmethod
    def _ping(time, src, dst):
        return SendEvent(time, src, dst, "Ping", "dining")

    def test_second_concurrent_ping_caught(self):
        suite = _strict_suite(PendingPingChecker())
        suite.observe(self._ping(1.0, 0, 1))
        with pytest.raises(InvariantViolation, match="Lemma 2.2"):
            suite.observe(self._ping(2.0, 0, 1))

    def test_ack_retires_the_ping(self):
        suite = _strict_suite(PendingPingChecker())
        suite.observe(self._ping(1.0, 0, 1))
        # Ack back to the initiator retires the outstanding ping.
        suite.observe(DeliverEvent(2.0, 1, 0, "Ack", "dining"))
        suite.observe(self._ping(3.0, 0, 1))  # now legal again

    def test_opposite_directions_independent(self):
        suite = _strict_suite(PendingPingChecker())
        suite.observe(self._ping(1.0, 0, 1))
        suite.observe(self._ping(1.0, 1, 0))  # fine: different initiator


# ----------------------------------------------------------------------
# Lemma-shaped facts on real runs
# ----------------------------------------------------------------------
class AckBudgetMonitor(NetworkMonitor):
    """Counts acks sent per ordered pair, bucketed by the sender's phase."""

    def __init__(self, diners):
        self._diners = diners
        self.acks_while_hungry: dict = {}

    def on_send(self, src, dst, message, time):
        if isinstance(message, Ack) and self._diners[src].is_hungry:
            key = (src, dst)
            self.acks_while_hungry[key] = self.acks_while_hungry.get(key, 0) + 1


class TestLemmaFactsOnRuns:
    def test_lemma_2_2_holds_under_stress(self):
        # Heavy jitter + crashes + mistakes: the armed PendingPingChecker
        # would raise on a second concurrent ping.
        table = DiningTable(
            clique(8),
            seed=13,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({2: 25.0, 6: 45.0}),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            latency=LogNormalLatency(median=1.0, sigma=1.0, ceiling=25.0),
        )
        table.run(until=300.0)
        assert table.message_stats.by_type["Ping"] > 100  # it was stressed

    def test_at_most_one_ack_granted_per_hungry_session(self):
        # Theorem 3's mechanism: while one long hungry session of diner 1
        # runs, it grants each neighbor at most one ack.
        graph = path(3)
        # 1 gets hungry once and waits long (its neighbors hog); count the
        # acks 1 sends while hungry.
        workload = ScriptedWorkload(
            {0: [1.0] + [0.01] * 100, 1: [1.0], 2: [1.0] + [0.01] * 100},
            default_eat=1.0,
        )
        table = DiningTable(
            graph,
            seed=3,
            coloring={0: 1, 1: 0, 2: 2},
            workload=workload,
            detector=scripted_detector(),
        )
        budget = AckBudgetMonitor(table.diners)
        table.network.add_monitor(budget)
        table.run(until=120.0)
        sessions = [
            c for c in table.trace.phase_changes(1) if c.new_phase == "hungry"
        ]
        for (src, dst), count in budget.acks_while_hungry.items():
            if src == 1:
                # Acks granted while hungry never exceed 1's hungry sessions.
                assert count <= len(sessions)

    def test_fork_uniqueness_under_every_suite_run(self):
        # Direct statement: run with checkers on a dense graph and verify
        # the checker actually executed many times without raising.
        table = DiningTable(
            clique(6),
            seed=5,
            detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        table.run(until=150.0)
        # processed_events is a proxy: each event re-ran every checker.
        assert table.sim.processed_events > 1000

    def test_ping_flag_pins_after_neighbor_crash(self):
        # The quiescence argument: after j crashes, pinged_ij stays true
        # forever (the ack never arrives), so no further pings flow.
        table = DiningTable(
            path(2),
            seed=1,
            coloring={0: 0, 1: 1},
            workload=ScriptedWorkload({0: [1.0] + [0.5] * 50}),
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({1: 0.5}),
        )
        table.run(until=100.0)
        assert table.diners[0].links[1].pinged  # pinned forever
        pings = [
            s for s in table.quiescence.sends_to(1, layer="dining")
            if s.message_type == "Ping"
        ]
        assert len(pings) == 1
