"""Unit tests for the metrics primitives, registry, and renderers."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    counter_by_label,
    counter_total,
    gauge_max,
    gauge_max_time,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_extremes_and_witness_time(self):
        gauge = Gauge("g")
        gauge.set(1, 0.0)
        gauge.set(4, 10.0)
        gauge.set(2, 20.0)
        assert gauge.value == 2
        assert gauge.max == 4
        assert gauge.min == 1
        assert gauge.max_time == 10.0

    def test_time_weighted_average(self):
        gauge = Gauge("g")
        gauge.set(0, 0.0)
        gauge.set(2, 10.0)  # level 0 held for 10
        gauge.set(0, 20.0)  # level 2 held for 10
        # integral = 0*10 + 2*10 = 20 over span 20.
        assert gauge.time_average() == pytest.approx(1.0)

    def test_average_undefined_without_timestamps(self):
        gauge = Gauge("g")
        gauge.set(5)
        assert gauge.time_average() is None

    def test_inc_dec_round_trip(self):
        gauge = Gauge("g")
        gauge.inc(3, 1.0)
        gauge.dec(1, 2.0)
        assert gauge.value == 2
        assert gauge.max == 3


class TestHistogram:
    def test_exact_moments(self):
        hist = Histogram("h")
        for value in (0.5, 1.5, 100.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(102.0)
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert sum(hist.bucket_counts) == 3

    def test_bucket_assignment_respects_bounds(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(0.5)  # <= 1
        hist.observe(10.0)  # <= 10 (boundary inclusive)
        hist.observe(11.0)  # overflow
        assert hist.bucket_counts == [1, 1, 1]

    def test_quantile_brackets_the_population(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 3.0, 50.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 10.0  # second bucket's upper bound
        assert hist.quantile(1.0) == 50.0  # capped at the observed max

    def test_quantile_empty_is_none(self):
        assert Histogram("h").quantile(0.5) is None


class TestRegistry:
    def test_same_name_and_labels_share_the_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", kind="x")
        b = registry.counter("hits", kind="x")
        c = registry.counter("hits", kind="y")
        assert a is b
        assert a is not c

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        assert registry.gauge("g", a=1, b=2) is registry.gauge("g", b=2, a=1)

    def test_next_instance_is_deterministic(self):
        registry = MetricsRegistry()
        assert registry.next_instance("table") == "t0"
        assert registry.next_instance("table") == "t1"
        assert MetricsRegistry().next_instance("table") == "t0"

    def test_snapshot_is_json_faithful(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="a").inc(2)
        registry.gauge("g").set(3, 1.5)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_finalizers_run_at_snapshot(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_finalizer(lambda: calls.append(1))
        registry.snapshot()
        registry.snapshot()
        assert calls == [1, 1]


class TestSnapshotQueries:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("msgs", type="Ping", layer="dining").inc(3)
        registry.counter("msgs", type="Fork", layer="dining").inc(2)
        registry.counter("msgs", type="HB", layer="detector").inc(7)
        registry.gauge("edge", edge="0-1").set(4, 12.0)
        registry.gauge("edge", edge="1-2").set(2, 5.0)
        return registry.snapshot()

    def test_counter_total_filters_by_labels(self):
        snapshot = self._snapshot()
        assert counter_total(snapshot, "msgs") == 12
        assert counter_total(snapshot, "msgs", layer="dining") == 5
        assert counter_total(snapshot, "msgs", type="HB") == 7

    def test_counter_by_label_groups(self):
        grouped = counter_by_label(self._snapshot(), "msgs", "layer")
        assert grouped == {"dining": 5.0, "detector": 7.0}

    def test_gauge_max_and_witness_time(self):
        snapshot = self._snapshot()
        assert gauge_max(snapshot, "edge") == 4
        assert gauge_max_time(snapshot, "edge") == 12.0


class TestMergeSnapshots:
    def test_counters_add_and_gauges_keep_envelope(self):
        first = MetricsRegistry()
        first.counter("c").inc(2)
        first.gauge("g").set(3, 10.0)
        second = MetricsRegistry()
        second.counter("c").inc(5)
        second.gauge("g").set(7, 40.0)
        second.gauge("g").set(1, 50.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert counter_total(merged, "c") == 7
        assert gauge_max(merged, "g") == 7
        assert gauge_max_time(merged, "g") == 40.0
        (entry,) = [g for g in merged["gauges"] if g["name"] == "g"]
        assert entry["min"] == 1

    def test_histogram_populations_add(self):
        first = MetricsRegistry()
        first.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        second = MetricsRegistry()
        second.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        (entry,) = merged["histograms"]
        assert entry["count"] == 2
        assert entry["bucket_counts"] == [1, 1, 0]

    def test_disjoint_label_sets_stay_separate(self):
        first = MetricsRegistry()
        first.counter("c", seed="1").inc(1)
        second = MetricsRegistry()
        second.counter("c", seed="2").inc(1)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert len(merged["counters"]) == 2

    def test_empty_input_merges_to_empty(self):
        merged = merge_snapshots([])
        assert merged == {"counters": [], "gauges": [], "histograms": []}


class TestPrometheusRendering:
    def test_families_values_and_facets(self):
        registry = MetricsRegistry()
        registry.counter("net.messages_sent_total", type="Ping").inc(3)
        registry.gauge("net.in_transit", edge="0-1").set(2, 1.0)
        registry.histogram("q.time", bounds=(1.0, 10.0)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_net_messages_sent_total counter" in text
        assert 'repro_net_messages_sent_total{type="Ping"} 3' in text
        assert "# TYPE repro_net_in_transit gauge" in text
        assert 'repro_net_in_transit_max{edge="0-1"} 2' in text
        assert 'repro_q_time_bucket{le="1"} 1' in text
        assert 'repro_q_time_bucket{le="+Inf"} 1' in text
        assert "repro_q_time_count 1" in text
        # Every non-comment line is "name{labels} value" — parseable.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert " " in line
                float(line.rsplit(" ", 1)[1])
