"""Integration tests for Theorem 1: eventual weak exclusion.

For every run there is a time after which no two live neighbors eat
simultaneously.  We verify the strong form our oracle makes checkable:
no violation overlaps the suffix after max(detector convergence, last
crash detection).
"""

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.detectors.scripted import MistakeInterval
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.latency import LogNormalLatency
from repro.sim.rng import RandomStreams

TOPOLOGIES = ["ring", "clique", "grid", "star", "random"]


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_no_violations_after_convergence(topology, seed):
    graph = topologies.by_name(topology, 9 if topology != "grid" else 9, seed=seed)
    convergence = 40.0
    detection = 1.0
    crash_plan = CrashPlan.random(graph.nodes, 2, (10.0, 60.0), RandomStreams(seed))
    table = DiningTable(
        graph,
        seed=seed,
        detector=scripted_detector(
            convergence_time=convergence,
            detection_delay=detection,
            random_mistakes=True,
            mistakes_per_edge=2.0,
        ),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=0.7, think_time=0.01),
    )
    table.run(until=300.0)
    # +0.7: settling margin of one max eating duration (see analysis docs).
    cutoff = max(convergence, crash_plan.last_crash_time + detection) + 0.7
    assert table.violations_after(cutoff) == [], (
        f"{topology} seed={seed}: violations in the converged suffix"
    )
    # The run exercised the algorithm: many meals happened.
    assert sum(table.eat_counts().values()) > 20


def test_violations_are_finite_and_pre_convergence_only():
    graph = topologies.ring(8)
    table = DiningTable(
        graph,
        seed=7,
        detector=scripted_detector(
            convergence_time=60.0, random_mistakes=True, mistakes_per_edge=4.0
        ),
        workload=AlwaysHungry(eat_time=1.5, think_time=0.01),
    )
    table.run(until=500.0)
    violations = table.violations()
    # Every violation ends within one eating duration of convergence.
    assert all(v.end <= 60.0 + 1.5 for v in violations)


def test_mutual_mistake_forces_a_violation_then_silence():
    # Deterministic: neighbors suspect each other long enough to both eat.
    graph = topologies.path(2)
    table = DiningTable(
        graph,
        seed=1,
        coloring={0: 0, 1: 1},
        detector=scripted_detector(
            convergence_time=30.0,
            mistakes=[MistakeInterval(0, 1, 2.0, 25.0), MistakeInterval(1, 0, 2.0, 25.0)],
        ),
        workload=AlwaysHungry(eat_time=3.0, think_time=0.05),
    )
    table.run(until=300.0)
    assert len(table.violations()) >= 1
    assert table.violations_after(30.0 + 3.0) == []


def test_no_detector_mistakes_means_no_violations():
    graph = topologies.clique(6)
    table = DiningTable(
        graph,
        seed=4,
        detector=scripted_detector(convergence_time=0.0),
        crash_plan=CrashPlan.scripted({0: 15.0, 5: 25.0}),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )
    table.run(until=200.0)
    assert table.violations() == []


def test_safety_under_heavy_latency_jitter():
    graph = topologies.ring(8)
    crash_plan = CrashPlan.scripted({3: 30.0})
    table = DiningTable(
        graph,
        seed=11,
        latency=LogNormalLatency(median=1.0, sigma=1.0, ceiling=30.0),
        detector=scripted_detector(convergence_time=50.0, random_mistakes=True),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )
    table.run(until=400.0)
    assert table.violations_after(max(50.0, 31.0) + 0.5) == []
