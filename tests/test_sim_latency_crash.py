"""Unit tests for latency models and crash plans."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.crash import CrashPlan
from repro.sim.latency import (
    FixedLatency,
    LogNormalLatency,
    PartialSynchronyLatency,
    UniformLatency,
)
from repro.sim.rng import RandomStreams


class TestFixedLatency:
    def test_constant(self):
        model = FixedLatency(2.0)
        streams = RandomStreams(0)
        assert model.sample(0, 1, 0.0, streams) == 2.0
        assert model.sample(3, 4, 99.0, streams) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(0.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.5, 1.5)
        streams = RandomStreams(1)
        samples = [model.sample(0, 1, 0.0, streams) for _ in range(200)]
        assert all(0.5 <= s <= 1.5 for s in samples)

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)

    def test_per_channel_streams_are_independent(self):
        model = UniformLatency(0.5, 1.5)
        s1 = RandomStreams(1)
        s2 = RandomStreams(1)
        # Channel (0,1) draws identically whether or not (2,3) also draws.
        a = [model.sample(0, 1, 0.0, s1) for _ in range(5)]
        b = []
        for _ in range(5):
            model.sample(2, 3, 0.0, s2)
            b.append(model.sample(0, 1, 0.0, s2))
        assert a == b


class TestLogNormalLatency:
    def test_clipped(self):
        model = LogNormalLatency(median=1.0, sigma=2.0, floor=0.2, ceiling=3.0)
        streams = RandomStreams(2)
        samples = [model.sample(0, 1, 0.0, streams) for _ in range(300)]
        assert all(0.2 <= s <= 3.0 for s in samples)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(sigma=0.0)

    def test_rejects_inverted_clip(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(floor=5.0, ceiling=1.0)


class TestPartialSynchrony:
    def test_pre_gst_can_exceed_post_bound(self):
        model = PartialSynchronyLatency(gst=100.0, min_delay=0.1, pre_gst_max=50.0, post_gst_max=1.0)
        streams = RandomStreams(3)
        pre = [model.sample(0, 1, 10.0, streams) for _ in range(200)]
        assert max(pre) > 1.0

    def test_post_gst_respects_bound(self):
        model = PartialSynchronyLatency(gst=100.0, min_delay=0.1, pre_gst_max=50.0, post_gst_max=1.0)
        streams = RandomStreams(3)
        post = [model.sample(0, 1, 100.0, streams) for _ in range(200)]
        assert all(0.1 <= s <= 1.0 for s in post)

    def test_boundary_uses_post_bound_at_gst(self):
        model = PartialSynchronyLatency(gst=5.0, min_delay=0.1, pre_gst_max=50.0, post_gst_max=0.2)
        streams = RandomStreams(4)
        assert model.sample(0, 1, 5.0, streams) <= 0.2

    def test_rejects_max_below_min(self):
        with pytest.raises(ConfigurationError):
            PartialSynchronyLatency(min_delay=1.0, pre_gst_max=0.5)


class TestCrashPlan:
    def test_none_plan_is_empty(self):
        plan = CrashPlan.none()
        assert plan.faulty == ()
        assert plan.last_crash_time == 0.0

    def test_scripted_round_trip(self):
        plan = CrashPlan.scripted({3: 10.0, 1: 5.0})
        assert plan.faulty == (1, 3)
        assert plan.crash_time(1) == 5.0
        assert plan.crash_time(3) == 10.0
        assert plan.as_dict() == {1: 5.0, 3: 10.0}

    def test_correct_complement(self):
        plan = CrashPlan.scripted({2: 1.0})
        assert plan.correct([0, 1, 2, 3]) == (0, 1, 3)

    def test_crash_time_of_correct_process_raises(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.scripted({2: 1.0}).crash_time(0)

    def test_last_crash_time(self):
        plan = CrashPlan.scripted({0: 3.0, 1: 9.0, 2: 6.0})
        assert plan.last_crash_time == 9.0

    def test_random_plan_is_deterministic(self):
        a = CrashPlan.random(range(10), 3, (0.0, 50.0), RandomStreams(11))
        b = CrashPlan.random(range(10), 3, (0.0, 50.0), RandomStreams(11))
        assert a == b

    def test_random_plan_respects_count_and_window(self):
        plan = CrashPlan.random(range(10), 4, (5.0, 6.0), RandomStreams(1))
        assert len(plan.faulty) == 4
        assert len(set(plan.faulty)) == 4
        assert all(5.0 <= t <= 6.0 for _, t in plan.crashes)

    def test_random_rejects_excess_count(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.random(range(3), 4, (0.0, 1.0), RandomStreams(1))

    def test_rejects_inverted_window(self):
        with pytest.raises(ConfigurationError):
            CrashPlan.random(range(3), 1, (5.0, 1.0), RandomStreams(1))
