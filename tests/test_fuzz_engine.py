"""The fault-plan engine: plans, windows, triggered crashes, mutants.

Kernel-substrate tests only (deterministic, fast); the live path is
covered by test_fuzz_differential.py.
"""

import json

import pytest

from repro.checks import replay
from repro.errors import ConfigurationError
from repro.faults import (
    CrashSpec,
    FaultPlan,
    FlapSpec,
    JudgeWindows,
    LatencySpec,
    WorkloadSpec,
    all_mutants,
    get_mutant,
    mutant_names,
    run_plan_kernel,
    sample_plan,
)
from repro.faults.engine import RUNTIME_ERROR
from repro.graphs import topologies


# ----------------------------------------------------------------------
# Plan vocabulary
# ----------------------------------------------------------------------
def test_plan_round_trips_through_json():
    plan = FaultPlan(
        topology="ring",
        n=5,
        seed=7,
        horizon=90.0,
        latency=LatencySpec.of("gst", gst=20.0, pre_gst_max=4.0, post_gst_max=1.0),
        crashes=(
            CrashSpec(pid=1, at=12.5),
            CrashSpec(pid=3, when="fork", after=5.0, deadline=30.0),
        ),
        flaps=FlapSpec(convergence=20.0, mistakes_per_edge=1.5),
        workload=WorkloadSpec.of("burst", burst=3, idle_time=6.0),
        mutant="greedy-eater",
    )
    assert FaultPlan.from_json(json.loads(json.dumps(plan.to_json()))) == plan


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        CrashSpec(pid=0)  # neither at nor when
    with pytest.raises(ConfigurationError):
        CrashSpec(pid=0, at=1.0, when="fork", deadline=5.0)  # both
    with pytest.raises(ConfigurationError):
        CrashSpec(pid=0, when="fork")  # triggered without deadline
    with pytest.raises(ConfigurationError):
        FaultPlan(n=3, crashes=(CrashSpec(pid=5, at=1.0),))  # pid out of range
    with pytest.raises(ConfigurationError):
        FaultPlan(n=3, crashes=(CrashSpec(pid=1, at=1.0), CrashSpec(pid=1, at=2.0)))


def test_judge_windows_cover_the_adversary():
    plan = FaultPlan(
        n=4,
        latency=LatencySpec.of("uniform", low=0.5, high=2.0),
        crashes=(CrashSpec(pid=0, when="fork", after=5.0, deadline=25.0),),
        flaps=FlapSpec(convergence=15.0, detection_delay=2.0),
    )
    w = JudgeWindows.for_plan(plan)
    # Settle can't precede detector convergence or the last possible
    # crash's detection; patience grows with n; grace covers the gap
    # between the crash and trustworthy suspicion.
    assert w.settle >= 27.0
    assert w.patience > w.settle
    assert w.after == w.settle
    assert w.grace > 0.0


# ----------------------------------------------------------------------
# Benign interpretation
# ----------------------------------------------------------------------
def test_benign_plan_passes_every_property():
    result = run_plan_kernel(FaultPlan(n=5, seed=3, horizon=80.0))
    assert result.ok
    assert set(result.verdict.statuses().values()) == {"pass"}
    assert sum(result.meals.values()) > 0
    assert result.wire  # the wire log recorded traffic
    assert result.error is None


def test_triggered_crash_fires_before_deadline_holding_fork():
    plan = FaultPlan(
        n=5,
        seed=11,
        horizon=80.0,
        crashes=(CrashSpec(pid=2, when="fork", after=2.0, deadline=40.0),),
    )
    result = run_plan_kernel(plan)
    assert result.ok, result.verdict.failed
    # The victim crashed at the trigger, well before the deadline.
    assert 2.0 <= result.crash_times[2] < 40.0


def test_wire_log_replays_offline():
    plan = FaultPlan(n=4, seed=5, horizon=60.0)
    result = run_plan_kernel(plan)
    from repro.checks import events_from_wire

    edges = sorted(topologies.by_name(plan.topology, plan.n, seed=plan.seed).edges)
    verdict = replay(edges, events_from_wire(result.wire), horizon=plan.horizon)
    assert verdict.property("fifo").status == "pass"
    assert verdict.property("channel-bound").status == "pass"


# ----------------------------------------------------------------------
# Mutants
# ----------------------------------------------------------------------
def test_mutant_registry_is_well_formed():
    names = mutant_names()
    assert len(names) >= 8
    assert len(set(names)) == len(names)
    for mutant in all_mutants():
        assert mutant.expected, mutant.name
        assert mutant.description
    with pytest.raises(ConfigurationError):
        get_mutant("no-such-mutant")


@pytest.mark.parametrize("name", ["greedy-eater", "eager-fork-grant"])
def test_safety_mutants_fail_wx_safety(name):
    result = run_plan_kernel(FaultPlan(n=5, seed=3, horizon=80.0, mutant=name))
    assert "wx-safety" in result.failed


def test_token_reuse_folds_lemma_assert_into_fork_uniqueness():
    plan = sample_plan(n=5, seed=0, index=0, mutant="token-reuse")
    result = run_plan_kernel(plan)
    assert "fork-uniqueness" in result.failed
    assert result.error is not None and "ForkDuplication" in result.error
    assert result.stopped_early


def test_runtime_error_never_collides_with_a_standard_property():
    result = run_plan_kernel(FaultPlan(n=3, seed=1, horizon=40.0))
    assert RUNTIME_ERROR not in result.verdict.properties


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
def test_sampler_is_deterministic_and_archetype_diverse():
    a = [sample_plan(n=5, seed=9, index=i) for i in range(6)]
    b = [sample_plan(n=5, seed=9, index=i) for i in range(6)]
    assert a == b
    # The cycle visits crash-bearing and crash-free shapes.
    assert any(p.crashes for p in a) and any(not p.crashes for p in a)
    # Every plan's horizon contains its own judgement windows.
    for plan in a:
        assert plan.horizon >= JudgeWindows.for_plan(plan).patience
    # Different seeds draw different parameters.
    assert sample_plan(n=5, seed=1, index=0) != sample_plan(n=5, seed=2, index=0)
