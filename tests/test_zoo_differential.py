"""Differential pinning of the new classics: kernel ≡ loopback.

Same plan, same diner, same (null) detector on the discrete-event kernel
and on a loopback AsyncHost, judged informationally (``judge=False``) so
every per-property status depends only on what the observed stream
proves.  The full status maps must be identical — the bake-off's claim
that bakery / Ricart–Agrawala / Lehmann–Rabin run *unmodified* on both
substrates, checked the same way ``test_fuzz_differential`` checks
Algorithm 1.

Marked ``fuzz`` + ``live``: wall-clock asyncio runs.
"""

import pytest

from repro.baselines import BakeryDiner, LehmannRabinDiner, RicartAgrawalaDiner
from repro.core.table import null_detector
from repro.detectors import NullDetector
from repro.faults import FaultPlan, run_plan_kernel, run_plan_live
from repro.faults.plan import LatencySpec, WorkloadSpec

pytestmark = [pytest.mark.fuzz, pytest.mark.live]

TIME_SCALE = 0.01

CLASSICS = [
    pytest.param(BakeryDiner, id="bakery"),
    pytest.param(RicartAgrawalaDiner, id="ricart_agrawala"),
    pytest.param(LehmannRabinDiner, id="lehmann_rabin"),
]


def _plan(seed: int) -> FaultPlan:
    return FaultPlan(
        topology="ring",
        n=4,
        seed=seed,
        horizon=8.0,
        latency=LatencySpec.of("fixed", delay=0.02),
        workload=WorkloadSpec.of("always", eat_time=0.15, think_time=0.05),
    )


@pytest.mark.parametrize("diner_factory", CLASSICS)
@pytest.mark.parametrize("seed", [1, 2])
def test_kernel_and_live_status_maps_agree(diner_factory, seed):
    plan = _plan(seed)
    kernel = run_plan_kernel(
        plan, judge=False, diner_factory=diner_factory, detector=null_detector()
    )
    live = run_plan_live(
        plan,
        judge=False,
        time_scale=TIME_SCALE,
        diner_factory=diner_factory,
        detector=NullDetector,
    )
    assert kernel.verdict.statuses() == live.verdict.statuses(), (
        f"substrates disagree for {diner_factory.__name__} on {plan.describe()}"
    )
    # Informational judgement of a clean run never fails, on either side.
    assert kernel.ok and live.ok
    # Both substrates actually scheduled meals (the runs are non-vacuous).
    assert sum(kernel.meals.values()) > 0
    assert sum(live.meals.values()) > 0


@pytest.mark.parametrize("diner_factory", CLASSICS)
def test_live_run_speaks_the_same_wire_vocabulary(diner_factory):
    """The classics' frames survive the real codec: the live wire log
    contains the algorithm's own message types, not just heartbeats."""
    plan = _plan(seed=3)
    live = run_plan_live(
        plan,
        judge=False,
        time_scale=TIME_SCALE,
        diner_factory=diner_factory,
        detector=NullDetector,
    )
    kinds = {event["type"] for event in live.wire}
    expected = {
        BakeryDiner: "BakeryRequest",
        RicartAgrawalaDiner: "RaRequest",
        LehmannRabinDiner: "LrRequest",
    }[diner_factory]
    assert expected in kinds, sorted(kinds)
