"""Coverage of remaining public surface: errors, runners, report, exports."""


import pytest

import repro
from repro.errors import (
    ChannelCapacityError,
    ColoringError,
    ConfigurationError,
    CrashedProcessError,
    FifoViolationError,
    ForkDuplicationError,
    InvariantViolation,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_single_base_class(self):
        for exc in (
            ConfigurationError,
            SimulationError,
            SchedulingError,
            CrashedProcessError,
            InvariantViolation,
            ForkDuplicationError,
            ChannelCapacityError,
            FifoViolationError,
            ColoringError,
        ):
            assert issubclass(exc, ReproError)

    def test_invariant_subtree(self):
        for exc in (ForkDuplicationError, ChannelCapacityError, FifoViolationError):
            assert issubclass(exc, InvariantViolation)

    def test_scheduling_is_simulation(self):
        assert issubclass(SchedulingError, SimulationError)
        assert issubclass(CrashedProcessError, SimulationError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_exports_resolve(self):
        import repro.baselines
        import repro.core
        import repro.detectors
        import repro.drinking
        import repro.graphs
        import repro.sim
        import repro.stabilization
        import repro.trace
        import repro.verify

        for module in (
            repro.baselines,
            repro.core,
            repro.detectors,
            repro.drinking,
            repro.graphs,
            repro.sim,
            repro.stabilization,
            repro.trace,
            repro.verify,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)

    def test_quickstart_docstring_scenario_runs(self):
        # The package docstring's quickstart must stay true.
        from repro import CrashPlan, DiningTable, scripted_detector
        from repro.graphs import ring

        table = DiningTable(
            ring(8),
            seed=7,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({3: 25.0}),
        )
        table.run(until=400.0)
        assert table.starving_correct(patience=150.0) == []
        assert not table.violations_after(60.0)
        assert table.max_overtaking(after=120.0) <= 2


class TestRunners:
    def test_report_writes_every_section(self, tmp_path):
        # Scaled via monkeypatching would be invasive; just exercise the
        # writer against two real (fast) experiment mains.
        from repro.experiments import e6_space
        from repro.experiments.report import _markdown_table

        rows = e6_space.run_space(topology_names=("ring",), sizes=(8,))
        text = _markdown_table(rows, e6_space.COLUMNS)
        assert text.count("|") >= len(e6_space.COLUMNS) + 1

    def test_experiment_modules_expose_contract(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert len(ALL_EXPERIMENTS) == 11
        for module in ALL_EXPERIMENTS:
            assert isinstance(module.CLAIM, str) and module.CLAIM
            assert isinstance(module.COLUMNS, tuple) and module.COLUMNS
            assert callable(module.main)

    def test_main_module_entrypoint_importable(self):
        import repro.__main__  # noqa: F401 - import side effects only


class TestTableFactoryValidation:
    def test_scripted_factory_convergence_zero_rejects_random(self):
        from repro.core import DiningTable, scripted_detector
        from repro.graphs import ring

        # random_mistakes with convergence 0 yields the empty script: legal.
        table = DiningTable(
            ring(4), seed=1, detector=scripted_detector(convergence_time=0.0, random_mistakes=True)
        )
        table.run(until=20.0)
        assert table.violations() == []

    def test_channel_bound_parameter_respected(self):
        from repro.core import DiningTable, scripted_detector
        from repro.errors import ChannelCapacityError
        from repro.graphs import ring

        # An absurdly tight bound must trip the online checker.
        table = DiningTable(
            ring(6), seed=1, detector=scripted_detector(), channel_bound=0
        )
        with pytest.raises(ChannelCapacityError):
            table.run(until=20.0)
