"""Unit and scenario tests for the baseline algorithms."""

import pytest

from repro.baselines import (
    ChoySinghDiner,
    ForkPriorityDiner,
    NoDoorwaySuspicionDiner,
    NoForkSuspicionDiner,
    choy_singh_table,
    fork_priority_table,
    perfect_dining_table,
)
from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.detectors import NullDetector, PerfectDetector
from repro.graphs import path, ring
from repro.sim.crash import CrashPlan
from repro.sim.latency import UniformLatency

SQUEEZE = {0: 1, 1: 0, 2: 2}


class TestChoySingh:
    def test_factory_wires_null_detector_and_diner(self, ring6):
        table = choy_singh_table(ring6, seed=1)
        assert isinstance(table.detector, NullDetector)
        assert all(isinstance(d, ChoySinghDiner) for d in table.diners.values())

    def test_factory_rejects_detector_override(self, ring6):
        with pytest.raises(TypeError):
            choy_singh_table(ring6, detector=scripted_detector())

    def test_failure_free_run_works(self, ring6):
        table = choy_singh_table(ring6, seed=1).run(until=150.0)
        assert table.starving_correct(patience=60.0) == []
        assert table.violations() == []

    def test_crash_starves_neighbors(self, ring6):
        table = choy_singh_table(ring6, seed=1, crash_plan=CrashPlan.scripted({2: 20.0}))
        table.run(until=400.0)
        starving = table.starving_correct(patience=150.0)
        assert set(starving) >= {1, 3}  # both ring-neighbors of 2 block

    def test_no_replied_throttle(self):
        # While hungry and outside, the original grants every ping.
        table = choy_singh_table(path(2), seed=1)
        table.run(until=2.0)
        diner = table.diners[0]
        diner.state = type(diner.state).HUNGRY
        diner._on_ping(1)
        diner._on_ping(1)
        assert not diner.links[1].replied
        assert not diner.links[1].deferred


class TestForkPriority:
    def test_factory_defaults_to_null_detector(self):
        table = fork_priority_table(path(3), seed=1)
        assert isinstance(table.detector, NullDetector)
        assert all(isinstance(d, ForkPriorityDiner) for d in table.diners.values())

    def test_no_pings_ever_sent(self):
        table = fork_priority_table(path(3), seed=1).run(until=100.0)
        assert "Ping" not in table.message_stats.by_type
        assert "Ack" not in table.message_stats.by_type

    def test_safety_holds_without_detector(self):
        table = fork_priority_table(path(3), seed=1).run(until=200.0)
        assert table.violations() == []

    def test_unbounded_overtaking_of_low_color(self):
        short = fork_priority_table(
            path(3),
            seed=5,
            coloring=SQUEEZE,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        ).run(until=250.0)
        long = fork_priority_table(
            path(3),
            seed=5,
            coloring=SQUEEZE,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        ).run(until=1000.0)
        assert short.max_overtaking() > 2
        assert long.max_overtaking() > short.max_overtaking()

    def test_suspicion_restores_progress_under_crash(self):
        # The "wait-free but unfair" ablation: fork-priority + ◇P₁.
        table = fork_priority_table(
            ring(6),
            seed=1,
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({2: 20.0}),
        ).run(until=300.0)
        assert table.starving_correct(patience=120.0) == []

    def test_without_detector_crash_starves(self):
        table = fork_priority_table(
            ring(6), seed=1, crash_plan=CrashPlan.scripted({2: 20.0})
        ).run(until=400.0)
        assert table.starving_correct(patience=150.0) != []


class TestPerfectDining:
    def test_factory_wires_perfect_detector(self, ring6):
        table = perfect_dining_table(ring6, seed=1)
        assert isinstance(table.detector, PerfectDetector)

    def test_factory_rejects_detector_override(self, ring6):
        with pytest.raises(TypeError):
            perfect_dining_table(ring6, detector=scripted_detector())

    def test_perpetual_weak_exclusion(self, ring6):
        # With P there is no mistake window: zero violations from t=0.
        table = perfect_dining_table(
            ring6, seed=2, crash_plan=CrashPlan.scripted({1: 10.0, 4: 30.0})
        ).run(until=300.0)
        assert table.violations() == []
        assert table.starving_correct(patience=120.0) == []


class TestAblations:
    def test_no_doorway_suspicion_starves_in_phase1(self, ring6):
        # The crashed process owes acks; without suspicion at the doorway
        # its neighbors stay outside forever.
        table = DiningTable(
            ring6,
            seed=1,
            detector=scripted_detector(detection_delay=2.0),
            diner_factory=NoDoorwaySuspicionDiner,
            crash_plan=CrashPlan.scripted({2: 5.0}),
        ).run(until=400.0)
        starving = table.starving_correct(patience=150.0)
        assert starving != []
        # Victims are stuck OUTSIDE the doorway (phase 1).
        assert all(not table.diners[pid].inside for pid in starving)

    def test_no_fork_suspicion_starves_in_phase2(self, ring6):
        table = DiningTable(
            ring6,
            seed=1,
            detector=scripted_detector(detection_delay=2.0),
            diner_factory=NoForkSuspicionDiner,
            crash_plan=CrashPlan.scripted({2: 5.0}),
        ).run(until=400.0)
        starving = table.starving_correct(patience=150.0)
        assert starving != []
        # At least one victim got INSIDE and blocks on the dead fork.
        assert any(table.diners[pid].inside for pid in starving)

    def test_ablations_fine_without_crashes(self, ring6):
        for factory in (NoDoorwaySuspicionDiner, NoForkSuspicionDiner):
            table = DiningTable(
                ring6, seed=1, detector=scripted_detector(), diner_factory=factory
            ).run(until=150.0)
            assert table.starving_correct(patience=60.0) == []
