"""Dynamic membership: the epoched topology machinery end to end.

Three layers of coverage:

* **Replay model** (hypothesis) — arbitrary valid delta scripts replay
  deterministically, survive JSON round-trips, and the shrinker's
  equivalence-preserving cancellation rungs (a leave with its rejoin,
  an edge flip) never change the final :class:`TopologyView`.
* **Check-event plumbing** — ``MembershipChange`` trace records become
  :class:`MembershipEvent`\\ s, merge *before* same-instant sends, and
  the offline Lemma 2.2 checker retires outstanding pings exactly the
  way the online adapters do (join/rejoin/add_edge forgive, leave does
  not — stale traffic toward a departed pid must stay countable).
* **Acceptance runs** — a clean ring-6 churn plan exercising every verb
  PASSes ``standard_suite(dynamic=True)`` on the kernel, the seeded
  ``unreclaimed-leave`` mutant FAILs edge-scoped exclusion with an
  epoch-stamped witness, kernel and live substrates agree property by
  property on the same churn plan, an all-static run with an explicit
  empty log stays byte-identical to the pinned golden trace, and a real
  3-process cluster survives a mid-run join + leave.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.checks import (
    EDGE_EXCLUSION,
    PROGRESS,
    MembershipEvent,
    SendEvent,
    events_from_trace,
    merge_events,
)
from repro.checks.properties import PendingPingChecker
from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignSpec
from repro.faults.engine import run_plan_kernel, run_plan_live
from repro.faults.plan import FaultPlan, MembershipSpec
from repro.faults.sampler import ARCHETYPES, CHURN_ARCHETYPES, sample_plan
from repro.faults.shrink import _membership_candidates
from repro.graphs import ring
from repro.graphs.membership import (
    MembershipDelta,
    MembershipLog,
    TopologyTimeline,
)
from repro.net.cluster import ClusterSpec, launch
from repro.sim.crash import CrashPlan
from repro.trace import serialize
from repro.trace.recorder import TraceRecorder

GOLDEN = Path(__file__).parent / "fixtures" / "golden_trace_ring5.json"


# ----------------------------------------------------------------------
# Strategy: valid membership scripts over a small ring
# ----------------------------------------------------------------------
@st.composite
def churn_histories(draw, max_deltas=10):
    """``(initial_graph, MembershipLog)`` pairs that replay by construction.

    The generator mirrors the replay model's latent/active state so every
    drawn verb is legal at its instant — the same discipline the sampler
    uses, but unconstrained by archetype shapes.
    """
    n = draw(st.integers(min_value=3, max_value=6))
    initial = ring(n)
    active = set(range(n))
    latent = {pid: set(initial.neighbors(pid)) for pid in range(n)}
    next_pid = n
    deltas = []
    t = 0.0
    for _ in range(draw(st.integers(min_value=0, max_value=max_deltas))):
        t += draw(st.floats(min_value=0.25, max_value=4.0, allow_nan=False))
        options = ["join"]
        departed = sorted(set(latent) - active)
        missing = sorted(
            (a, b)
            for a in latent
            for b in latent
            if a < b and b not in latent[a]
        )
        present = sorted((a, b) for a in latent for b in latent[a] if a < b)
        if len(active) > 1:
            # Never drain the graph: a snapshot needs at least one node.
            options.append("leave")
        if departed:
            options.append("rejoin")
        if missing:
            options.append("add_edge")
        if present:
            options.append("remove_edge")
        verb = draw(st.sampled_from(options))
        if verb == "join":
            peers = draw(
                st.lists(
                    st.sampled_from(sorted(latent)),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            deltas.append(
                MembershipDelta(time=t, verb="join", pid=next_pid, edges=tuple(peers))
            )
            latent[next_pid] = set(peers)
            for peer in peers:
                latent[peer].add(next_pid)
            active.add(next_pid)
            next_pid += 1
        elif verb == "leave":
            pid = draw(st.sampled_from(sorted(active)))
            deltas.append(MembershipDelta(time=t, verb="leave", pid=pid))
            active.discard(pid)
        elif verb == "rejoin":
            pid = draw(st.sampled_from(departed))
            deltas.append(MembershipDelta(time=t, verb="rejoin", pid=pid))
            active.add(pid)
        elif verb == "add_edge":
            a, b = draw(st.sampled_from(missing))
            deltas.append(MembershipDelta(time=t, verb="add_edge", pid=a, peer=b))
            latent[a].add(b)
            latent[b].add(a)
        else:
            a, b = draw(st.sampled_from(present))
            deltas.append(MembershipDelta(time=t, verb="remove_edge", pid=a, peer=b))
            latent[a].discard(b)
            latent[b].discard(a)
    return initial, MembershipLog(deltas)


def _final_shape(timeline: TopologyTimeline):
    view = timeline.final()
    return set(view.graph.nodes), {tuple(e) for e in view.graph.edges}


# ----------------------------------------------------------------------
# Replay model properties
# ----------------------------------------------------------------------
@given(churn_histories())
@settings(max_examples=100)
def test_replay_is_deterministic_and_roundtrips(history):
    initial, log = history
    first = TopologyTimeline(initial, log)
    again = TopologyTimeline(initial, log)
    assert _final_shape(first) == _final_shape(again)
    assert first.final_epoch == again.final_epoch == len(log)

    recovered = MembershipLog.from_json(log.to_json())
    assert recovered == log
    assert _final_shape(TopologyTimeline(initial, recovered)) == _final_shape(first)


@given(churn_histories())
@settings(max_examples=100)
def test_union_covers_every_snapshot(history):
    initial, log = history
    timeline = TopologyTimeline(initial, log)
    union = timeline.union()
    union_edges = {tuple(e) for e in union.edges}
    for view in timeline.snapshots():
        assert set(view.graph.nodes) <= set(union.nodes)
        assert {tuple(e) for e in view.graph.edges} <= union_edges
    if not log:
        # Static callers observe the exact graph object they passed in.
        assert union is initial


@given(churn_histories(max_deltas=8))
@settings(max_examples=60)
def test_cancellation_rungs_preserve_final_view(history):
    """A shrunk delta sequence replays to the same final TopologyView.

    The verb-aware rungs (cancel a leave/rejoin bounce, cancel an edge
    remove/re-add flip) are the shrinker's equivalence-preserving moves:
    whatever subset of them applies, the final snapshot must be
    unchanged — otherwise a minimized churn witness would describe a
    different topology than the failure it certifies.
    """
    initial, log = history
    specs = tuple(
        MembershipSpec(
            time=d.time, verb=d.verb, pid=d.pid, edges=d.edges, peer=d.peer
        )
        for d in log
    )
    plan = FaultPlan(topology="ring", n=len(initial), membership=specs)
    baseline = _final_shape(TopologyTimeline(initial, log))
    for label, candidate in _membership_candidates(plan):
        if not label.startswith("cancel"):
            continue
        try:
            shrunk = MembershipLog(m.to_delta() for m in candidate.membership)
            timeline = TopologyTimeline(initial, shrunk)
        except ConfigurationError:
            continue  # the ladder skips unreplayable candidates too
        assert _final_shape(timeline) == baseline, label


def test_campaign_archetype_restriction_walks_only_churn_shapes():
    """``repro fuzz --archetypes churn_storm ...`` re-parameterizes the
    walk: every counted run is a churn shape, none of the budget is
    spent skipping foreign archetypes."""
    spec = CampaignSpec(
        topology="ring", n=6, seed=0, runs=6, archetypes=CHURN_ARCHETYPES
    )
    churn_positions = [ARCHETYPES.index(name) for name in CHURN_ARCHETYPES]
    assert [spec.sampler_index(i) for i in range(6)] == [
        *churn_positions,
        *(p + len(ARCHETYPES) for p in churn_positions),
    ]
    assert all(spec.plan(i).membership for i in range(6))
    with pytest.raises(ConfigurationError):
        CampaignSpec(archetypes=("bogus",))


def test_unknown_membership_scripts_shrink_generically():
    """Drop-half bisection and per-delta drops need no verb knowledge."""
    specs = tuple(
        MembershipSpec(time=5.0 * (i + 1), verb="leave", pid=i) for i in range(4)
    )
    plan = FaultPlan(topology="ring", n=6, membership=specs)
    labels = [label for label, _ in _membership_candidates(plan)]
    assert "drop the membership script" in labels
    assert any("first 2" in label for label in labels)
    assert any("last 2" in label for label in labels)
    assert sum(1 for label in labels if label.startswith("drop membership delta")) == 4


# ----------------------------------------------------------------------
# Check-event plumbing
# ----------------------------------------------------------------------
def test_membership_trace_records_become_check_events():
    recorder = TraceRecorder()
    recorder.membership_change(3.0, 2, "rejoin", 4)
    recorder.membership_change(8.0, 3, "join", 6, (0, 5))
    events = [e for e in events_from_trace(recorder) if type(e) is MembershipEvent]
    assert events == [
        MembershipEvent(3.0, 2, "rejoin", 4),
        MembershipEvent(8.0, 3, "join", 6, (0, 5)),
    ]


def test_membership_events_merge_before_same_instant_sends():
    """The kernel stamps a delta and the fresh incarnation's first pings
    at the same sim instant; replay must apply the link resets first."""
    send = SendEvent(5.0, 2, 1, "Ping", "dining", seq=0)
    delta = MembershipEvent(5.0, 1, "rejoin", 2)
    merged = merge_events([send], [delta])
    assert merged == [delta, send]


def test_pending_ping_checker_forgives_rejoins_not_leaves():
    checker = PendingPingChecker()
    assert checker.record_ping_send(1, 2, 1.0) is None
    checker.note_membership("rejoin", 2, ())
    # The rejoin retired pid 2's link state: a fresh ping is legal.
    assert checker.record_ping_send(1, 2, 2.0) is None
    checker.note_membership("leave", 2, ())
    # A leave forgives nothing — a survivor re-pinging the departed pid
    # while its own ping is outstanding is exactly what Lemma 2.2 counts.
    assert checker.record_ping_send(1, 2, 3.0) is not None


def test_pending_ping_checker_resets_both_directions_on_add_edge():
    checker = PendingPingChecker()
    assert checker.record_ping_send(3, 4, 1.0) is None
    assert checker.record_ping_send(4, 3, 1.0) is None
    checker.note_membership("add_edge", 3, (4,))
    assert checker.record_ping_send(3, 4, 2.0) is None
    assert checker.record_ping_send(4, 3, 2.0) is None


# ----------------------------------------------------------------------
# Kernel acceptance: every verb, clean and mutated
# ----------------------------------------------------------------------
ALL_VERB_CHURN = (
    MembershipSpec(time=8.0, verb="join", pid=6, edges=(0, 5)),
    MembershipSpec(time=14.0, verb="leave", pid=2),
    MembershipSpec(time=22.0, verb="rejoin", pid=2),
    MembershipSpec(time=28.0, verb="add_edge", pid=1, peer=4),
    MembershipSpec(time=34.0, verb="remove_edge", pid=1, peer=4),
)


def _ring6_churn_plan(**overrides) -> FaultPlan:
    base = dict(
        topology="ring",
        n=6,
        seed=0,
        horizon=90.0,
        membership=ALL_VERB_CHURN,
    )
    base.update(overrides)
    return FaultPlan(**base)


def test_clean_ring6_churn_passes_dynamic_suite():
    result = run_plan_kernel(_ring6_churn_plan())
    assert result.ok, result.verdict.describe()
    # The dynamic suite actually ran (edge-scoped exclusion judged it).
    assert result.verdict.properties[EDGE_EXCLUSION].status == "pass"
    # The joiner ate after arriving; the bounced pid ate after rejoining.
    assert result.meals.get(6, 0) > 0
    assert result.meals.get(2, 0) > 0


def test_unreclaimed_leave_mutant_fails_edge_exclusion_with_epoch_witness():
    # The sampler's ring-6 index 7 (a rolling-restart shape with a
    # leave/rejoin bounce) is the deterministic plan the mutation
    # campaign kills this mutant with.
    plan = sample_plan(topology="ring", n=6, seed=0, index=7)
    assert any(m.verb == "rejoin" for m in plan.membership)
    result = run_plan_kernel(plan.with_(mutant="unreclaimed-leave"))
    assert EDGE_EXCLUSION in result.failed, result.verdict.describe()
    witness = result.verdict.properties[EDGE_EXCLUSION].first_violation
    assert witness is not None
    assert "epoch" in witness.detail


@pytest.mark.live
def test_churn_plan_statuses_agree_across_substrates():
    """The same all-verb churn plan, judged on the kernel and on the live
    loopback host, must produce identical per-property status maps."""
    plan = _ring6_churn_plan(horizon=60.0)
    kernel = run_plan_kernel(plan, judge=False)
    live = run_plan_live(plan, judge=False, time_scale=0.01)
    assert kernel.verdict.statuses() == live.verdict.statuses()


# ----------------------------------------------------------------------
# Static-path non-regression
# ----------------------------------------------------------------------
def test_explicit_empty_log_is_byte_identical_to_static_golden():
    """Passing ``membership=MembershipLog()`` must not perturb one byte
    of the pinned pre-refactor golden trace: an empty log costs nothing
    and changes nothing."""
    table = DiningTable(
        ring(5),
        seed=2026,
        detector=scripted_detector(
            convergence_time=20.0,
            detection_delay=1.0,
            random_mistakes=True,
            mistakes_per_edge=1.0,
        ),
        crash_plan=CrashPlan.scripted({2: 25.0}),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.05),
        strict_checks=False,
        membership=MembershipLog(),
    )
    table.run(until=150.0)
    lines = [
        json.dumps(serialize.record_to_dict(record), sort_keys=True)
        for record in table.trace
    ]
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    expected = json.loads(GOLDEN.read_text())
    assert hashlib.sha256(payload).hexdigest() == expected["sha256"]


# ----------------------------------------------------------------------
# Live cluster: a real mid-run join and leave across 3 OS processes
# ----------------------------------------------------------------------
@pytest.mark.live
def test_three_process_cluster_join_and_leave(tmp_path):
    """Ring-6 over 3 unix-socket processes: pid 6 joins at 0.8s, pid 2
    leaves at 1.2s.  The joined node must eat, and the departed node's
    forks must be reclaimed — its neighbors keep eating, so the merged
    residency-conditioned progress property passes."""
    spec = ClusterSpec(
        topology="ring",
        n=6,
        processes=3,
        duration=2.5,
        seed=3,
        eat_time=0.02,
        think_time=0.005,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
        run_dir=str(tmp_path / "churn-cluster"),
        membership=[
            {"time": 0.8, "verb": "join", "pid": 6, "edges": [0, 5]},
            {"time": 1.2, "verb": "leave", "pid": 2},
        ],
    )
    verdict = launch(spec, quiet=True)
    assert verdict.ok, verdict.describe()

    meals = {}
    for host in verdict.hosts:
        for pid, count in host.get("meals", {}).items():
            meals[int(pid)] = meals.get(int(pid), 0) + int(count)
    assert meals.get(6, 0) > 0  # the joined node eats
    # The leaver's forks were reclaimed: both ring neighbors keep making
    # progress, and the dynamic suite holds residents starvation-free.
    assert meals.get(1, 0) > 0 and meals.get(3, 0) > 0
    assert verdict.checks.properties[PROGRESS].status == "pass"
    assert verdict.checks.properties[EDGE_EXCLUSION].status == "pass"
