"""Unit tests for the online invariant checkers."""

from dataclasses import dataclass

import pytest

from repro.errors import ChannelCapacityError, FifoViolationError, ForkDuplicationError
from repro.trace.invariants import ChannelBoundChecker, FifoChecker, ForkUniquenessChecker


@dataclass
class FakeDiner:
    forks: dict
    tokens: dict
    crashed: bool = False

    def holds_fork(self, neighbor):
        return self.forks.get(neighbor, False)

    def holds_token(self, neighbor):
        return self.tokens.get(neighbor, False)


@dataclass(frozen=True)
class DiningMsg:
    n: int
    layer = "dining"


@dataclass(frozen=True)
class OtherMsg:
    n: int
    layer = "detector"


class TestForkUniqueness:
    def test_clean_state_passes(self):
        diners = {
            0: FakeDiner({1: True}, {1: False}),
            1: FakeDiner({0: False}, {0: True}),
        }
        checker = ForkUniquenessChecker(diners, [(0, 1)])
        checker.check(1.0)
        assert checker.checks_performed == 1

    def test_fork_in_transit_passes(self):
        diners = {
            0: FakeDiner({1: False}, {1: False}),
            1: FakeDiner({0: False}, {0: True}),
        }
        ForkUniquenessChecker(diners, [(0, 1)]).check(1.0)

    def test_duplicated_fork_raises(self):
        diners = {
            0: FakeDiner({1: True}, {1: False}),
            1: FakeDiner({0: True}, {0: False}),
        }
        with pytest.raises(ForkDuplicationError, match="fork"):
            ForkUniquenessChecker(diners, [(0, 1)]).check(1.0)

    def test_duplicated_token_raises(self):
        diners = {
            0: FakeDiner({1: False}, {1: True}),
            1: FakeDiner({0: False}, {0: True}),
        }
        with pytest.raises(ForkDuplicationError, match="token"):
            ForkUniquenessChecker(diners, [(0, 1)]).check(1.0)

    def test_crashed_endpoint_skipped(self):
        diners = {
            0: FakeDiner({1: True}, {1: False}, crashed=True),
            1: FakeDiner({0: True}, {0: False}),
        }
        ForkUniquenessChecker(diners, [(0, 1)]).check(1.0)  # no raise


class TestChannelBound:
    def test_within_bound_passes(self):
        checker = ChannelBoundChecker(bound=2, layer="dining")
        checker.on_send(0, 1, DiningMsg(1), 0.0)
        checker.on_send(0, 1, DiningMsg(2), 0.0)
        checker.on_deliver(0, 1, DiningMsg(1), 1.0)
        checker.on_send(0, 1, DiningMsg(3), 1.0)

    def test_exceeding_bound_raises(self):
        checker = ChannelBoundChecker(bound=2, layer="dining")
        checker.on_send(0, 1, DiningMsg(1), 0.0)
        checker.on_send(1, 0, DiningMsg(2), 0.0)  # same undirected edge
        with pytest.raises(ChannelCapacityError):
            checker.on_send(0, 1, DiningMsg(3), 0.0)

    def test_other_layers_ignored(self):
        checker = ChannelBoundChecker(bound=1, layer="dining")
        checker.on_send(0, 1, DiningMsg(1), 0.0)
        for _ in range(5):
            checker.on_send(0, 1, OtherMsg(1), 0.0)  # must not raise

    def test_different_edges_independent(self):
        checker = ChannelBoundChecker(bound=1, layer="dining")
        checker.on_send(0, 1, DiningMsg(1), 0.0)
        checker.on_send(2, 3, DiningMsg(2), 0.0)  # different edge: fine


class TestFifoChecker:
    def test_in_order_delivery_passes(self):
        checker = FifoChecker()
        a, b = DiningMsg(1), DiningMsg(2)
        checker.on_send(0, 1, a, 0.0)
        checker.on_send(0, 1, b, 0.1)
        checker.on_deliver(0, 1, a, 1.0)
        checker.on_deliver(0, 1, b, 1.1)

    def test_out_of_order_delivery_raises(self):
        checker = FifoChecker()
        a, b = DiningMsg(1), DiningMsg(2)
        checker.on_send(0, 1, a, 0.0)
        checker.on_send(0, 1, b, 0.1)
        with pytest.raises(FifoViolationError):
            checker.on_deliver(0, 1, b, 1.0)

    def test_delivery_without_send_raises(self):
        checker = FifoChecker()
        with pytest.raises(FifoViolationError):
            checker.on_deliver(0, 1, DiningMsg(1), 1.0)

    def test_channels_are_directed(self):
        checker = FifoChecker()
        a, b = DiningMsg(1), DiningMsg(2)
        checker.on_send(0, 1, a, 0.0)
        checker.on_send(1, 0, b, 0.0)
        checker.on_deliver(1, 0, b, 0.5)
        checker.on_deliver(0, 1, a, 1.0)

    def test_drop_consumes_in_order(self):
        checker = FifoChecker()
        a, b = DiningMsg(1), DiningMsg(2)
        checker.on_send(0, 1, a, 0.0)
        checker.on_send(0, 1, b, 0.1)
        checker.on_drop(0, 1, a, 1.0)
        checker.on_deliver(0, 1, b, 1.1)
