"""Unit tests for the network traffic probes."""

from dataclasses import dataclass

from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.monitors import (
    ChannelOccupancyMonitor,
    MessageStats,
    QuiescenceMonitor,
    message_layer,
)
from repro.sim.network import Network


@dataclass(frozen=True)
class DiningMsg:
    payload: int
    layer = "dining"


@dataclass(frozen=True)
class DetectorMsg:
    payload: int
    layer = "detector"


class Sink(Actor):
    def on_message(self, src, message):
        pass


def wire(monitors, latency=FixedLatency(1.0)):
    sim = Simulator()
    network = Network(sim, latency=latency)
    a, b = Sink(0), Sink(1)
    network.register(a)
    network.register(b)
    for monitor in monitors:
        network.add_monitor(monitor)
    return sim, network, a, b


class TestMessageLayer:
    def test_reads_layer_attribute(self):
        assert message_layer(DiningMsg(1)) == "dining"

    def test_defaults_to_app(self):
        assert message_layer("plain string") == "app"


class TestChannelOccupancy:
    def test_counts_in_transit(self):
        monitor = ChannelOccupancyMonitor()
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: [a.send(1, DiningMsg(i)) for i in range(3)])
        sim.run(until=0.5)
        assert monitor.current[(0, 1)] == 3
        sim.run_until_quiescent()
        assert monitor.current[(0, 1)] == 0
        assert monitor.peak[(0, 1)] == 3

    def test_edge_is_undirected(self):
        monitor = ChannelOccupancyMonitor()
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        sim.schedule_at(0.0, lambda: b.send(0, DiningMsg(2)))
        sim.run(until=0.5)
        assert monitor.current[(0, 1)] == 2

    def test_layer_filter(self):
        monitor = ChannelOccupancyMonitor(layer="dining")
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        sim.schedule_at(0.0, lambda: a.send(1, DetectorMsg(1)))
        sim.run(until=0.5)
        assert monitor.current[(0, 1)] == 1

    def test_drop_decrements(self):
        monitor = ChannelOccupancyMonitor()
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        network.crash_at(1, 0.5)
        sim.run_until_quiescent()
        assert monitor.current[(0, 1)] == 0

    def test_peak_time_recorded(self):
        monitor = ChannelOccupancyMonitor()
        sim, network, a, b = wire([monitor])
        sim.schedule_at(2.0, lambda: a.send(1, DiningMsg(1)))
        sim.run_until_quiescent()
        assert monitor.peak_time[(0, 1)] == 2.0

    def test_edges_exceeding(self):
        monitor = ChannelOccupancyMonitor()
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: [a.send(1, DiningMsg(i)) for i in range(5)])
        sim.run_until_quiescent()
        assert monitor.edges_exceeding(4) == [(0, 1)]
        assert monitor.edges_exceeding(5) == []

    def test_max_occupancy_empty(self):
        assert ChannelOccupancyMonitor().max_occupancy == 0


class TestMessageStats:
    def test_counts_by_type_and_layer(self):
        stats = MessageStats()
        sim, network, a, b = wire([stats])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(2)))
        sim.schedule_at(0.0, lambda: a.send(1, DetectorMsg(1)))
        sim.run_until_quiescent()
        assert stats.total == 3
        assert stats.by_type == {"DiningMsg": 2, "DetectorMsg": 1}
        assert stats.by_layer == {"dining": 2, "detector": 1}


class TestQuiescenceMonitor:
    def test_pre_crash_sends_not_recorded(self):
        monitor = QuiescenceMonitor({1: 5.0}.get)
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        sim.run_until_quiescent()
        assert monitor.post_crash_sends == []

    def test_post_crash_sends_recorded(self):
        monitor = QuiescenceMonitor({1: 5.0}.get)
        sim, network, a, b = wire([monitor])
        network.crash_at(1, 5.0)
        sim.schedule_at(6.0, lambda: a.send(1, DiningMsg(1)))
        sim.schedule_at(7.0, lambda: a.send(1, DetectorMsg(1)))
        sim.run_until_quiescent()
        assert len(monitor.post_crash_sends) == 2
        assert len(monitor.sends_to(1, layer="dining")) == 1
        assert monitor.last_send_time(1) == 7.0
        assert monitor.last_send_time(1, layer="dining") == 6.0

    def test_sends_to_correct_process_ignored(self):
        monitor = QuiescenceMonitor({}.get)
        sim, network, a, b = wire([monitor])
        sim.schedule_at(0.0, lambda: a.send(1, DiningMsg(1)))
        sim.run_until_quiescent()
        assert monitor.post_crash_sends == []
        assert monitor.last_send_time(1) is None
