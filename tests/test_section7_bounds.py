"""Integration tests for the Section 7 resource claims.

Bounded channel capacity (≤ 4 dining messages per edge), quiescence
toward crashed processes, and the space accounting.
"""

import dataclasses

import pytest

from repro.core import AlwaysHungry, DiningTable, local_state_bits, scripted_detector
from repro.core.state import NeighborLinks
from repro.graphs import topologies
from repro.graphs.coloring import color_count
from repro.sim.crash import CrashPlan
from repro.sim.latency import LogNormalLatency
from repro.sim.rng import RandomStreams


class TestChannelBound:
    @pytest.mark.parametrize("topology", ["ring", "clique", "star", "grid"])
    def test_never_more_than_four_dining_messages_per_edge(self, topology):
        # check_invariants=True arms ChannelBoundChecker(4): a fifth
        # in-transit message raises during the run.
        graph = topologies.by_name(topology, 12)
        table = DiningTable(
            graph,
            seed=2,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            crash_plan=CrashPlan.random(graph.nodes, 3, (20.0, 100.0), RandomStreams(2)),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            latency=LogNormalLatency(median=1.0, sigma=0.9, ceiling=25.0),
        )
        table.run(until=300.0)
        assert table.occupancy.max_occupancy <= 4
        assert table.occupancy.edges_exceeding(4) == []

    def test_at_most_one_fork_and_token_in_transit(self):
        # Stronger decomposition: per edge, fork ≤ 1 and token ≤ 1 at once.
        from repro.sim.network import NetworkMonitor

        class PerTypeOccupancy(NetworkMonitor):
            def __init__(self):
                self.current = {}
                self.peak = {}

            def _key(self, src, dst, message):
                edge = (src, dst) if src <= dst else (dst, src)
                return (edge, type(message).__name__)

            def on_send(self, src, dst, message, time):
                key = self._key(src, dst, message)
                self.current[key] = self.current.get(key, 0) + 1
                self.peak[key] = max(self.peak.get(key, 0), self.current[key])

            def on_deliver(self, src, dst, message, time):
                self.current[self._key(src, dst, message)] -= 1

            on_drop = on_deliver

        graph = topologies.ring(8)
        table = DiningTable(
            graph,
            seed=3,
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            latency=LogNormalLatency(median=1.0, sigma=0.9, ceiling=25.0),
        )
        probe = PerTypeOccupancy()
        table.network.add_monitor(probe)
        table.run(until=300.0)
        for (edge, kind), peak in probe.peak.items():
            if kind in ("Fork", "ForkRequest"):
                assert peak <= 1, f"{peak} simultaneous {kind} on {edge}"

    def test_detector_layer_not_counted(self):
        # Heartbeats are not dining messages and may exceed the bound
        # without tripping the checker.
        from repro.core import heartbeat_detector

        graph = topologies.path(2)
        table = DiningTable(
            graph,
            seed=1,
            detector=heartbeat_detector(interval=0.2, initial_timeout=5.0),
            latency=LogNormalLatency(median=1.0, sigma=0.3, ceiling=3.0),
        )
        table.run(until=60.0)  # would raise if heartbeats were counted


class TestQuiescence:
    def test_bounded_post_crash_traffic_and_silence(self):
        graph = topologies.ring(8)
        crash_plan = CrashPlan.scripted({2: 30.0, 5: 40.0})
        table = DiningTable(
            graph,
            seed=4,
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        table.run(until=200.0)
        counts = {
            pid: len(table.quiescence.sends_to(pid, layer="dining"))
            for pid in crash_plan.faulty
        }
        # Extend the run 4x: no new dining message may reach the dead.
        table.run(until=800.0)
        for pid in crash_plan.faulty:
            assert len(table.quiescence.sends_to(pid, layer="dining")) == counts[pid]

    def test_per_neighbor_post_crash_budget(self):
        # Per correct neighbor: at most 1 ping, 1 fork request, 1 fork,
        # and 1 ack can chase a crashed process.
        graph = topologies.clique(6)
        crash_plan = CrashPlan.scripted({0: 25.0})
        table = DiningTable(
            graph,
            seed=5,
            detector=scripted_detector(detection_delay=1.0),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        table.run(until=400.0)
        sends = table.quiescence.sends_to(0, layer="dining")
        per_sender: dict = {}
        for record in sends:
            key = (record.src, record.message_type)
            per_sender[key] = per_sender.get(key, 0) + 1
        for (src, kind), count in per_sender.items():
            assert count <= 1, f"{src} sent {count} {kind} to crashed 0"


class TestSpace:
    def test_diner_state_matches_accounting(self):
        graph = topologies.random_graph(14, 0.4, seed=6)
        table = DiningTable(graph, seed=6).run(until=30.0)
        colors = color_count(table.coloring)
        for pid, diner in table.diners.items():
            assert len(diner.links) == graph.degree(pid)
            assert len(dataclasses.fields(NeighborLinks)) == 6
            bits = local_state_bits(graph.degree(pid), colors)
            # log2 δ + 6δ + c with c small and fixed.
            assert bits <= 6 * graph.degree(pid) + 16

    def test_bits_grow_with_degree_not_n(self):
        ring_small = local_state_bits(2, 3)
        ring_large = local_state_bits(2, 3)
        assert ring_small == ring_large  # δ fixed ⇒ bits fixed, any n
