"""Unit tests for actors and the reliable FIFO network."""

import pytest

from repro.errors import ConfigurationError, CrashedProcessError
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.network import Network


class Echo(Actor):
    """Records deliveries; replies when the message asks for it."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []
        self.reevaluations = 0

    def on_message(self, src, message):
        self.received.append((src, message, self.now))
        if message == "ping?":
            self.send(src, "pong")

    def reevaluate(self):
        self.reevaluations += 1


def wire(n=2, latency=None, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency or FixedLatency(1.0))
    actors = [Echo(i) for i in range(n)]
    for actor in actors:
        network.register(actor)
    return sim, network, actors


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "hello"))
        sim.run_until_quiescent()
        assert b.received == [(0, "hello", 1.0)]

    def test_round_trip(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "ping?"))
        sim.run_until_quiescent()
        assert a.received == [(1, "pong", 2.0)]

    def test_counts(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "x"))
        sim.schedule_at(0.0, lambda: a.send(1, "y"))
        sim.run_until_quiescent()
        assert network.sent_count == 2
        assert network.delivered_count == 2
        assert network.dropped_count == 0

    def test_unknown_destination_raises(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(99, "x"))
        with pytest.raises(ConfigurationError):
            sim.run_until_quiescent()

    def test_duplicate_registration_raises(self):
        sim, network, actors = wire()
        with pytest.raises(ConfigurationError):
            network.register(Echo(0))

    def test_reevaluate_called_after_delivery(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "x"))
        sim.run_until_quiescent()
        assert b.reevaluations == 1


class TestFifo:
    def test_fifo_under_fixed_latency(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: [a.send(1, i) for i in range(10)])
        sim.run_until_quiescent()
        assert [msg for _, msg, _ in b.received] == list(range(10))

    def test_fifo_under_jittered_latency(self):
        # Later sends may sample shorter delays; FIFO clamping must still
        # deliver in send order.
        sim, network, (a, b) = wire(latency=UniformLatency(0.1, 5.0), seed=9)
        for k in range(20):
            sim.schedule_at(0.1 * k, lambda k=k: a.send(1, k))
        sim.run_until_quiescent()
        assert [msg for _, msg, _ in b.received] == list(range(20))

    def test_fifo_is_per_directed_channel(self):
        sim, network, (a, b) = wire(latency=UniformLatency(0.1, 5.0), seed=3)
        sim.schedule_at(0.0, lambda: a.send(1, "a1"))
        sim.schedule_at(0.0, lambda: b.send(0, "b1"))
        sim.schedule_at(0.1, lambda: a.send(1, "a2"))
        sim.run_until_quiescent()
        assert [m for _, m, _ in b.received] == ["a1", "a2"]


class TestCrashSemantics:
    def test_crashed_destination_drops(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "x"))
        network.crash_at(1, 0.5)
        sim.run_until_quiescent()
        assert b.received == []
        assert network.dropped_count == 1

    def test_crash_at_delivery_instant_drops(self):
        # CONTROL (crash) outranks DELIVERY at the same instant.
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "x"))
        network.crash_at(1, 1.0)
        sim.run_until_quiescent()
        assert b.received == []

    def test_crashed_sender_raises(self):
        sim, network, (a, b) = wire()
        network.crash_at(0, 0.5)
        sim.schedule_at(1.0, lambda: a.send(1, "x"))
        with pytest.raises(CrashedProcessError):
            sim.run_until_quiescent()

    def test_in_flight_message_survives_sender_crash(self):
        # The channel holds messages independently of the sender's fate.
        sim, network, (a, b) = wire()
        sim.schedule_at(0.0, lambda: a.send(1, "x"))
        network.crash_at(0, 0.5)
        sim.run_until_quiescent()
        assert b.received == [(0, "x", 1.0)]

    def test_crash_records_time(self):
        sim, network, (a, b) = wire()
        network.crash_at(1, 2.5)
        sim.run_until_quiescent()
        assert b.crashed
        assert b.crash_time == 2.5

    def test_crash_is_idempotent(self):
        sim, network, (a, b) = wire()
        network.crash_at(1, 1.0)
        network.crash_at(1, 2.0)
        sim.run_until_quiescent()
        assert b.crash_time == 1.0


class TestTimers:
    def test_timer_fires_and_reevaluates(self):
        sim, network, (a, b) = wire()
        fired = []
        sim.schedule_at(0.0, lambda: a.set_timer(3.0, lambda: fired.append(a.now)))
        sim.run_until_quiescent()
        assert fired == [3.0]
        assert a.reevaluations == 1

    def test_timer_suppressed_after_crash(self):
        sim, network, (a, b) = wire()
        fired = []
        sim.schedule_at(0.0, lambda: a.set_timer(3.0, lambda: fired.append(1)))
        network.crash_at(0, 1.0)
        sim.run_until_quiescent()
        assert fired == []

    def test_cancelled_timer_does_not_fire(self):
        sim, network, (a, b) = wire()
        fired = []
        holder = {}
        sim.schedule_at(0.0, lambda: holder.update(t=a.set_timer(3.0, lambda: fired.append(1))))
        sim.schedule_at(1.0, lambda: holder["t"].cancel())
        sim.run_until_quiescent()
        assert fired == []


class TestReevaluationCoalescing:
    def test_multiple_requests_coalesce(self):
        sim, network, (a, b) = wire()

        def burst():
            a.request_reevaluation()
            a.request_reevaluation()
            a.request_reevaluation()

        sim.schedule_at(1.0, burst)
        sim.run_until_quiescent()
        assert a.reevaluations == 1

    def test_request_after_fire_schedules_again(self):
        sim, network, (a, b) = wire()
        sim.schedule_at(1.0, a.request_reevaluation)
        sim.schedule_at(2.0, a.request_reevaluation)
        sim.run_until_quiescent()
        assert a.reevaluations == 2

    def test_request_on_crashed_actor_is_noop(self):
        sim, network, (a, b) = wire()
        network.crash_at(0, 0.5)
        sim.schedule_at(1.0, a.request_reevaluation)
        sim.run_until_quiescent()
        assert a.reevaluations == 0


class TestStart:
    def test_start_invokes_on_start_in_pid_order(self):
        sim = Simulator()
        network = Network(sim)
        order = []

        class Starter(Actor):
            def on_start(self):
                order.append(self.pid)

            def on_message(self, src, message):
                pass

        for pid in (2, 0, 1):
            network.register(Starter(pid))
        network.start()
        assert order == [0, 1, 2]
