"""Unit tests for the adversarial (property-violating) detectors."""

import pytest

from repro.detectors import InaccurateDetector, IncompleteDetector
from repro.errors import ConfigurationError
from repro.graphs import path, ring
from repro.sim.crash import CrashPlan
from repro.sim.kernel import Simulator


class TestIncompleteDetector:
    def test_blind_pair_never_suspects(self):
        sim = Simulator()
        graph = ring(5)
        plan = CrashPlan.scripted({2: 10.0})
        detector = IncompleteDetector(sim, graph, plan, blind_pairs=[(1, 2)])
        detector.install()
        sim.run(until=500.0)
        assert not detector.module_for(1).suspects(2)  # the violation
        assert detector.module_for(3).suspects(2)  # others are ideal

    def test_no_false_positives(self):
        sim = Simulator()
        graph = ring(5)
        detector = IncompleteDetector(sim, graph, CrashPlan.none(), blind_pairs=[(0, 1)])
        detector.install()
        sim.run(until=100.0)
        for pid in graph.nodes:
            assert detector.module_for(pid).suspected_neighbors() == frozenset()

    def test_out_of_scope_pair_rejected(self):
        sim = Simulator()
        graph = ring(5)
        with pytest.raises(ConfigurationError):
            IncompleteDetector(sim, graph, CrashPlan.none(), blind_pairs=[(0, 2)])

    def test_double_install_rejected(self):
        sim = Simulator()
        detector = IncompleteDetector(sim, path(2), CrashPlan.none(), blind_pairs=[(0, 1)])
        detector.install()
        with pytest.raises(ConfigurationError):
            detector.install()


class TestInaccurateDetector:
    def build(self, *, pairs, period=10.0, episode=4.0, crash_plan=None):
        sim = Simulator()
        graph = ring(5)
        detector = InaccurateDetector(
            sim,
            graph,
            crash_plan or CrashPlan.none(),
            recurring_pairs=pairs,
            period=period,
            episode=episode,
        )
        detector.install()
        return sim, detector

    def test_episodes_recur_forever(self):
        sim, detector = self.build(pairs=[(0, 1)])
        module = detector.module_for(0)
        observed = []
        for t in (11.0, 15.0, 21.0, 25.0, 91.0, 95.0):
            sim.run(until=t)
            observed.append(module.suspects(1))
        # Inside episodes [10,14), [20,24), [90,94): suspected; between: not.
        assert observed == [True, False, True, False, True, False]

    def test_every_pair_recurs_independently(self):
        # Regression for the late-binding closure bug: with two pairs, the
        # SECOND and LATER episodes must fire for both.
        sim, detector = self.build(pairs=[(0, 1), (1, 0)])
        sim.run(until=31.0)
        assert detector.module_for(0).suspects(1)
        assert detector.module_for(1).suspects(0)

    def test_crash_turns_mistake_into_truth(self):
        sim, detector = self.build(
            pairs=[(0, 1)], crash_plan=CrashPlan.scripted({1: 12.0})
        )
        sim.run(until=200.0)
        # 1 crashed during an episode: the suspicion is permanent now.
        assert detector.module_for(0).suspects(1)

    def test_completeness_still_ideal(self):
        sim, detector = self.build(
            pairs=[(0, 1)], crash_plan=CrashPlan.scripted({3: 5.0})
        )
        sim.run(until=20.0)
        assert detector.module_for(2).suspects(3)
        assert detector.module_for(4).suspects(3)

    def test_episode_must_be_shorter_than_period(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            InaccurateDetector(
                sim, ring(5), CrashPlan.none(), recurring_pairs=[(0, 1)], period=5.0, episode=5.0
            )

    def test_out_of_scope_pair_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            InaccurateDetector(sim, ring(5), CrashPlan.none(), recurring_pairs=[(0, 2)])


class TestNecessityProbes:
    """The E9 headline behaviours, asserted at test scale."""

    def test_incompleteness_starves_exactly_the_blind(self):
        from repro.core import AlwaysHungry, DiningTable
        from repro.core.table import incomplete_detector
        from repro.graphs import topologies

        table = DiningTable(
            topologies.ring(6),
            seed=9,
            detector=incomplete_detector(blind_pairs=[(1, 2), (3, 2)]),
            crash_plan=CrashPlan.scripted({2: 20.0}),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=400.0)
        starving = table.starving_correct(patience=150.0)
        assert 1 in starving and 3 in starving

    def test_inaccuracy_violates_wx_forever_but_stays_wait_free(self):
        from repro.core import DiningTable, ScriptedWorkload
        from repro.core.table import inaccurate_detector
        from repro.graphs import topologies

        table = DiningTable(
            topologies.ring(6),
            seed=9,
            detector=inaccurate_detector(
                recurring_pairs=[(4, 5), (5, 4)], period=12.0, episode=6.0
            ),
            workload=ScriptedWorkload({4: [0.01] * 400, 5: [0.01] * 400}, default_eat=2.0),
        )
        table.run(until=400.0)
        assert table.violations_after(200.0) != []  # no clean suffix
        assert table.starving_correct(patience=150.0) == []  # still wait-free
