"""Tests for hypercube/torus topologies and the Jain fairness index."""

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.errors import ConfigurationError
from repro.graphs import by_name, greedy_coloring, hypercube, torus, validate_coloring
from repro.sim.crash import CrashPlan
from repro.trace import jain_fairness_index


class TestHypercube:
    def test_structure(self):
        graph = hypercube(3)
        assert len(graph) == 8
        assert len(graph.edges) == 12
        assert all(graph.degree(pid) == 3 for pid in graph)

    def test_neighbors_differ_in_one_bit(self):
        graph = hypercube(4)
        for a, b in graph.edges:
            assert bin(a ^ b).count("1") == 1

    def test_dimension_bounds(self):
        with pytest.raises(ConfigurationError):
            hypercube(0)
        with pytest.raises(ConfigurationError):
            hypercube(11)

    def test_by_name_requires_power_of_two(self):
        assert len(by_name("hypercube", 16)) == 16
        with pytest.raises(ConfigurationError):
            by_name("hypercube", 12)

    def test_colorable(self):
        graph = hypercube(4)
        validate_coloring(graph, greedy_coloring(graph))

    def test_dining_guarantees_hold(self):
        graph = hypercube(3)
        table = DiningTable(
            graph,
            seed=6,
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({5: 25.0}),
            workload=AlwaysHungry(eat_time=0.8, think_time=0.02),
        )
        table.run(until=250.0)
        assert table.starving_correct(patience=100.0) == []
        assert table.violations_after(27.0) == []


class TestTorus:
    def test_structure_is_4_regular(self):
        graph = torus(3, 4)
        assert len(graph) == 12
        assert all(graph.degree(pid) == 4 for pid in graph)
        assert len(graph.edges) == 24

    def test_minimum_side_enforced(self):
        with pytest.raises(ConfigurationError):
            torus(2, 5)

    def test_by_name_factors(self):
        graph = by_name("torus", 12)
        assert len(graph) == 12
        with pytest.raises(ConfigurationError):
            by_name("torus", 7)  # prime: no sides >= 3

    def test_dining_guarantees_hold(self):
        graph = torus(3, 3)
        table = DiningTable(
            graph,
            seed=6,
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            workload=AlwaysHungry(eat_time=0.8, think_time=0.02),
        )
        table.run(until=250.0)
        assert table.starving_correct(patience=100.0) == []
        assert table.max_overtaking(after=60.0) <= 2


class TestJainFairnessIndex:
    def test_perfect_equality(self):
        assert jain_fairness_index({0: 7, 1: 7, 2: 7}) == pytest.approx(1.0)

    def test_total_inequality(self):
        assert jain_fairness_index([9, 0, 0]) == pytest.approx(1 / 3)

    def test_intermediate(self):
        assert jain_fairness_index([4, 2]) == pytest.approx(36 / (2 * 20))

    def test_empty_and_zero_are_vacuously_fair(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0, 0]) == 1.0

    def test_dining_on_symmetric_ring_is_near_perfectly_fair(self):
        from repro.graphs import ring

        table = DiningTable(
            ring(8),
            seed=3,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=300.0)
        assert jain_fairness_index(table.eat_counts()) > 0.99

    def test_fork_priority_squeeze_is_measurably_unfair(self):
        from repro.baselines import fork_priority_table
        from repro.graphs import path
        from repro.sim.latency import UniformLatency

        table = fork_priority_table(
            path(3),
            seed=5,
            coloring={0: 1, 1: 0, 2: 2},
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        )
        table.run(until=500.0)
        unfair = jain_fairness_index(table.eat_counts())

        fair_table = DiningTable(
            path(3),
            seed=5,
            coloring={0: 1, 1: 0, 2: 2},
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        )
        fair_table.run(until=500.0)
        fair = jain_fairness_index(fair_table.eat_counts())
        assert fair > unfair
