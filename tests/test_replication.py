"""Tests for the multi-seed replication tooling."""

import pytest

from repro.experiments.replication import columns_for, replicate


def fake_experiment(*, seed: int, factor: int = 1):
    return [
        {"group": "a", "value": seed * factor, "label": "text-ignored"},
        {"group": "b", "value": 100 + seed, "flag": True},
    ]


class TestReplicate:
    def test_aggregates_mean_min_max(self):
        rows = replicate(
            fake_experiment, seeds=[1, 2, 3], group_by=("group",)
        )
        by_group = {row["group"]: row for row in rows}
        assert by_group["a"]["value_mean"] == 2.0
        assert by_group["a"]["value_min"] == 1.0
        assert by_group["a"]["value_max"] == 3.0
        assert by_group["a"]["replicates"] == 3

    def test_kwargs_forwarded(self):
        rows = replicate(
            fake_experiment, seeds=[2], kwargs={"factor": 10}, group_by=("group",)
        )
        by_group = {row["group"]: row for row in rows}
        assert by_group["a"]["value_mean"] == 20.0

    def test_non_numeric_and_bool_columns_skipped(self):
        rows = replicate(fake_experiment, seeds=[1], group_by=("group",))
        by_group = {row["group"]: row for row in rows}
        assert "label_mean" not in by_group["a"]
        assert "flag_mean" not in by_group["b"]

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate(fake_experiment, seeds=[], group_by=("group",))

    def test_misspelled_group_column_rejected(self):
        with pytest.raises(ValueError, match="grp"):
            replicate(fake_experiment, seeds=[1], group_by=("grp",))

    def test_parallel_jobs_match_serial(self):
        serial = replicate(fake_experiment, seeds=[1, 2, 3], group_by=("group",))
        parallel = replicate(
            fake_experiment, seeds=[1, 2, 3], group_by=("group",), jobs=2
        )
        assert serial == parallel

    def test_columns_for(self):
        cols = columns_for(("g",), ("v",), stats=("mean", "max"))
        assert cols == ("g", "replicates", "v_mean", "v_max")


class TestReplicatedSafety:
    def test_e1_claim_holds_across_seeds(self):
        from repro.experiments.e1_safety import run_safety

        rows = replicate(
            run_safety,
            seeds=range(4),
            kwargs=dict(
                topology_names=("ring",),
                n=8,
                convergence_times=(20.0,),
                horizon=200.0,
            ),
            group_by=("topology", "T_c"),
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["replicates"] == 4
        # The hard claim holds in EVERY replicate, not just on average.
        assert row["violations_after_cutoff_max"] == 0.0
        # Pre-convergence violations vary with the seed but exist somewhere.
        assert row["violations_max"] >= row["violations_min"]


class TestReplicatedFairness:
    def test_theorem3_bound_across_seeds(self):
        from repro.experiments.e3_fairness import run_ring_fairness

        def run_one(*, seed: int):
            return [run_ring_fairness(n=6, horizon=250.0, seed=seed)]

        rows = replicate(run_one, seeds=range(5), group_by=("scenario",))
        assert rows[0]["max_overtaking_max"] <= 2.0


class TestCsvExport:
    def test_round_trip_readable(self, tmp_path):
        import csv

        from repro.experiments.common import write_csv

        rows = [
            {"a": 1, "b": 2.5, "c": "text"},
            {"a": 2, "b": None, "c": "more"},
        ]
        path = str(tmp_path / "out.csv")
        count = write_csv(rows, ["a", "b", "c"], path)
        assert count == 2
        with open(path) as stream:
            loaded = list(csv.reader(stream))
        assert loaded[0] == ["a", "b", "c"]
        assert loaded[1] == ["1", "2.5", "text"]
        assert loaded[2] == ["2", "", "more"]

    def test_experiment_rows_export(self, tmp_path):
        from repro.experiments.common import write_csv
        from repro.experiments.e6_space import COLUMNS, run_space

        rows = run_space(topology_names=("ring",), sizes=(8,))
        path = str(tmp_path / "e6.csv")
        assert write_csv(rows, COLUMNS, path) == len(rows)
