"""Unit tests for the trace recorder and analysis functions.

Analysis tests build traces by hand so every quantity has a known answer.
"""


from repro.graphs import path, ring
from repro.trace import (
    EATING,
    HUNGRY,
    THINKING,
    Crash,
    PhaseChange,
    TraceRecorder,
    eat_counts,
    eat_starts,
    eating_intervals,
    exclusion_violations,
    hungry_sessions,
    last_violation_end,
    max_overtaking,
    overtake_counts,
    response_times,
    starving_processes,
    throughput,
    violations_after,
)


def make_trace(events):
    """events: list of (time, pid, old, new) phase changes or ('crash', time, pid)."""
    trace = TraceRecorder()
    for event in events:
        if event[0] == "crash":
            trace.crash(event[1], event[2])
        else:
            time, pid, old, new = event
            trace.phase_change(time, pid, old, new)
    return trace


def full_cycle(pid, hungry_at, eat_at, think_at):
    return [
        (hungry_at, pid, THINKING, HUNGRY),
        (eat_at, pid, HUNGRY, EATING),
        (think_at, pid, EATING, THINKING),
    ]


class TestRecorder:
    def test_records_in_order(self):
        trace = make_trace(full_cycle(0, 1.0, 2.0, 3.0))
        assert len(trace) == 3
        assert [c.time for c in trace.phase_changes(0)] == [1.0, 2.0, 3.0]

    def test_of_type_filters(self):
        trace = TraceRecorder()
        trace.phase_change(1.0, 0, THINKING, HUNGRY)
        trace.crash(2.0, 1)
        assert len(trace.of_type(PhaseChange)) == 1
        assert len(trace.of_type(Crash)) == 1

    def test_pid_filters(self):
        trace = make_trace(full_cycle(0, 1.0, 2.0, 3.0) + full_cycle(1, 1.5, 2.5, 3.5))
        assert len(trace.phase_changes(0)) == 3
        assert len(trace.phase_changes()) == 6

    def test_protocol_steps_accessor(self):
        trace = TraceRecorder()
        trace.protocol_step(1.0, 3, "recolor", "0->2")
        steps = trace.protocol_steps(3)
        assert steps[0].action == "recolor"
        assert trace.protocol_steps(4) == []

    def test_listeners_observe_every_record(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(seen.append)
        trace.phase_change(1.0, 0, THINKING, HUNGRY)
        trace.crash(2.0, 1)
        assert [type(r).__name__ for r in seen] == ["PhaseChange", "Crash"]

    def test_typed_listeners_receive_only_their_kinds(self):
        from repro.trace.events import Crash, PhaseChange

        trace = TraceRecorder()
        phases, crashes, everything = [], [], []
        trace.add_listener(phases.append, types=(PhaseChange,))
        trace.add_listener(crashes.append, types=(Crash,))
        trace.add_listener(everything.append)
        trace.phase_change(1.0, 0, THINKING, HUNGRY)
        trace.doorway_change(1.5, 0, True)
        trace.crash(2.0, 1)
        assert [r.time for r in phases] == [1.0]
        assert [r.time for r in crashes] == [2.0]
        assert len(everything) == 3


class TestStreamingRecorder:
    def _fill(self, trace, count=25):
        for i in range(count):
            trace.phase_change(float(i), i % 3, THINKING, HUNGRY)

    def test_round_trip_matches_memory_recorder(self, tmp_path):
        from repro.trace.recorder import StreamingTraceRecorder

        streaming = StreamingTraceRecorder(tmp_path / "t.jsonl", flush_every=4)
        memory = TraceRecorder()
        self._fill(streaming)
        self._fill(memory)
        assert len(streaming) == len(memory)
        assert list(streaming) == list(memory)
        assert streaming.of_type(PhaseChange) == memory.of_type(PhaseChange)
        assert streaming.phase_changes(0) == memory.phase_changes(0)

    def test_tail_is_bounded(self, tmp_path):
        from repro.trace.recorder import StreamingTraceRecorder

        trace = StreamingTraceRecorder(tmp_path / "t.jsonl", keep_last=10)
        self._fill(trace, count=50)
        tail = trace.tail()
        assert len(tail) == 10
        assert tail[-1].time == 49.0

    def test_iteration_flushes_pending_buffer(self, tmp_path):
        from repro.trace.recorder import StreamingTraceRecorder

        trace = StreamingTraceRecorder(tmp_path / "t.jsonl", flush_every=1000)
        self._fill(trace, count=5)  # all still buffered
        assert len(list(trace)) == 5

    def test_spill_file_is_serialize_compatible(self, tmp_path):
        from repro.trace.recorder import StreamingTraceRecorder
        from repro.trace.serialize import load_path

        trace = StreamingTraceRecorder(tmp_path / "t.jsonl")
        self._fill(trace)
        trace.close()
        assert list(load_path(trace.path)) == list(trace)

    def test_listeners_fire_while_streaming(self, tmp_path):
        from repro.trace.recorder import StreamingTraceRecorder

        trace = StreamingTraceRecorder(tmp_path / "t.jsonl")
        seen = []
        trace.add_listener(seen.append)
        self._fill(trace, count=7)
        assert len(seen) == 7


class TestIntervals:
    def test_eating_interval_closed_by_thinking(self):
        trace = make_trace(full_cycle(0, 1.0, 2.0, 5.0))
        meals = eating_intervals(trace, 0)
        assert len(meals) == 1
        assert (meals[0].start, meals[0].end) == (2.0, 5.0)

    def test_open_interval_extends_to_horizon(self):
        trace = make_trace([(1.0, 0, THINKING, HUNGRY), (2.0, 0, HUNGRY, EATING)])
        meals = eating_intervals(trace, 0, horizon=10.0)
        assert (meals[0].start, meals[0].end) == (2.0, 10.0)
        assert not meals[0].served

    def test_interval_truncated_at_crash(self):
        trace = make_trace(
            [(1.0, 0, THINKING, HUNGRY), (2.0, 0, HUNGRY, EATING), ("crash", 4.0, 0)]
        )
        meals = eating_intervals(trace, 0, horizon=100.0)
        assert (meals[0].start, meals[0].end) == (2.0, 4.0)

    def test_hungry_session_served_flag(self):
        trace = make_trace(full_cycle(0, 1.0, 3.0, 5.0) + [(6.0, 0, THINKING, HUNGRY)])
        sessions = hungry_sessions(trace, 0, horizon=20.0)
        assert len(sessions) == 2
        assert sessions[0].served and (sessions[0].start, sessions[0].end) == (1.0, 3.0)
        assert not sessions[1].served and sessions[1].end == 20.0

    def test_multiple_cycles(self):
        events = full_cycle(0, 1.0, 2.0, 3.0) + full_cycle(0, 4.0, 5.0, 6.0)
        trace = make_trace(events)
        assert len(eating_intervals(trace, 0)) == 2
        assert eat_starts(trace, 0) == [2.0, 5.0]
        assert eat_counts(trace) == {0: 2}


class TestExclusionViolations:
    def test_overlapping_neighbor_meals_detected(self):
        graph = path(2)
        trace = make_trace(full_cycle(0, 0.0, 1.0, 5.0) + full_cycle(1, 0.0, 3.0, 7.0))
        violations = exclusion_violations(trace, graph)
        assert len(violations) == 1
        v = violations[0]
        assert (v.a, v.b, v.start, v.end) == (0, 1, 3.0, 5.0)

    def test_touching_meals_do_not_overlap(self):
        graph = path(2)
        trace = make_trace(full_cycle(0, 0.0, 1.0, 3.0) + full_cycle(1, 0.0, 3.0, 5.0))
        assert exclusion_violations(trace, graph) == []

    def test_non_neighbors_may_eat_together(self):
        graph = path(3)  # 0-1-2: 0 and 2 are not neighbors
        trace = make_trace(full_cycle(0, 0.0, 1.0, 5.0) + full_cycle(2, 0.0, 1.0, 5.0))
        assert exclusion_violations(trace, graph) == []

    def test_crash_truncation_ends_violation(self):
        # 1 crashes at 4.0 while both eat from 3.0; overlap is [3, 4).
        graph = path(2)
        trace = make_trace(
            full_cycle(0, 0.0, 1.0, 9.0)
            + [(0.0, 1, THINKING, HUNGRY), (3.0, 1, HUNGRY, EATING), ("crash", 4.0, 1)]
        )
        violations = exclusion_violations(trace, graph, horizon=20.0)
        assert len(violations) == 1
        assert violations[0].end == 4.0

    def test_last_violation_end_and_after(self):
        graph = path(2)
        trace = make_trace(full_cycle(0, 0.0, 1.0, 5.0) + full_cycle(1, 0.0, 3.0, 7.0))
        assert last_violation_end(trace, graph) == 5.0
        assert violations_after(trace, graph, 5.0) == []
        assert len(violations_after(trace, graph, 4.0)) == 1

    def test_clean_trace_has_none(self):
        graph = ring(3)
        trace = make_trace(full_cycle(0, 0.0, 1.0, 2.0) + full_cycle(1, 2.0, 3.0, 4.0))
        assert last_violation_end(trace, graph) is None


class TestStarvation:
    def test_unserved_old_session_flags(self):
        trace = make_trace([(1.0, 0, THINKING, HUNGRY)])
        assert starving_processes(trace, [0], horizon=100.0, patience=50.0) == [0]

    def test_recent_session_is_patient(self):
        trace = make_trace([(80.0, 0, THINKING, HUNGRY)])
        assert starving_processes(trace, [0], horizon=100.0, patience=50.0) == []

    def test_served_processes_not_flagged(self):
        trace = make_trace(full_cycle(0, 1.0, 2.0, 3.0))
        assert starving_processes(trace, [0], horizon=100.0, patience=10.0) == []

    def test_never_hungry_not_flagged(self):
        trace = TraceRecorder()
        assert starving_processes(trace, [0, 1], horizon=100.0, patience=10.0) == []

    def test_only_listed_pids_considered(self):
        trace = make_trace([(1.0, 0, THINKING, HUNGRY), (1.0, 1, THINKING, HUNGRY)])
        assert starving_processes(trace, [1], horizon=100.0, patience=10.0) == [1]


class TestOvertaking:
    def test_counts_eats_within_session(self):
        graph = path(2)
        # 1 hungry [0, 100) unserved; 0 eats three times inside that window.
        events = [(0.0, 1, THINKING, HUNGRY)]
        for k in range(3):
            events += full_cycle(0, 10.0 * k + 1, 10.0 * k + 2, 10.0 * k + 3)
        trace = make_trace(events)
        counts = overtake_counts(trace, graph, horizon=100.0)
        assert counts[(0, 1)] == 3
        assert max_overtaking(trace, graph, horizon=100.0) == 3

    def test_eats_outside_session_not_counted(self):
        graph = path(2)
        events = full_cycle(0, 1.0, 2.0, 3.0)  # 0 eats at 2.0
        events += [(5.0, 1, THINKING, HUNGRY)]  # 1 hungry later
        trace = make_trace(events)
        assert max_overtaking(trace, graph, horizon=100.0) == 0

    def test_after_cutoff_filters_sessions(self):
        graph = path(2)
        events = [(0.0, 1, THINKING, HUNGRY), (50.0, 1, HUNGRY, EATING), (51.0, 1, EATING, THINKING)]
        for k in range(3):
            events += full_cycle(0, 10.0 * k + 1, 10.0 * k + 2, 10.0 * k + 3)
        trace = make_trace(events)
        assert max_overtaking(trace, graph, after=0.0, horizon=100.0) == 3
        # Sessions starting after t=10 exclude the only (early) session.
        assert max_overtaking(trace, graph, after=10.0, horizon=100.0) == 0

    def test_eat_at_session_end_instant_not_counted(self):
        graph = path(2)
        events = [(0.0, 1, THINKING, HUNGRY), (5.0, 1, HUNGRY, EATING), (6.0, 1, EATING, THINKING)]
        events += [(4.0, 0, THINKING, HUNGRY), (5.0, 0, HUNGRY, EATING), (6.0, 0, EATING, THINKING)]
        trace = make_trace(events)
        # 0 starts eating exactly when 1's session ends: not an overtake.
        assert overtake_counts(trace, graph, horizon=10.0).get((0, 1), 0) == 0


class TestPerformance:
    def test_response_times(self):
        trace = make_trace(full_cycle(0, 1.0, 4.0, 5.0) + full_cycle(0, 6.0, 7.0, 8.0))
        assert response_times(trace, 0) == [3.0, 1.0]

    def test_throughput(self):
        trace = make_trace(full_cycle(0, 1.0, 2.0, 3.0) + full_cycle(1, 1.0, 4.0, 5.0))
        assert throughput(trace, horizon=10.0) == 0.2

    def test_throughput_zero_horizon(self):
        assert throughput(TraceRecorder(), horizon=0.0) == 0.0
