"""Integration tests: probes on live tables, the runner, and reports.

The load-bearing claim is *agreement*: the online in-transit gauge must
see exactly what the always-on :class:`ChannelOccupancyMonitor` sees —
including on the Section 7 adversarial schedule that provably puts four
dining messages on one edge — so the report's "channel bound OK" line
carries the same evidentiary weight as the raising
:class:`ChannelBoundChecker`.
"""

import pytest

from repro.core import DiningTable, DistributedDaemon, scripted_detector
from repro.graphs import ring
from repro.obs import (
    MetricsRegistry,
    active_registry,
    build_report,
    collecting,
    counter_total,
    gauge_max,
    render_report_text,
    summarize_snapshot,
)
from repro.scenarios import Runner
from repro.sim.crash import CrashPlan
from repro.stabilization import GreedyRecoloring
from tests.test_channel_extreme import build_extreme_table

SMALL_OVERRIDES = {"topology_names": ("ring",), "sizes": (8,)}


def run_adversarial_table(registry=None):
    """Ring with a crash and a lying detector — plenty of traffic."""
    table = DiningTable(
        ring(8),
        seed=3,
        detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
        crash_plan=CrashPlan.scripted({2: 15.0}),
        metrics=registry,
    )
    table.run(until=120.0)
    return table


class TestAmbientCollection:
    def test_table_joins_the_active_registry(self):
        with collecting() as registry:
            table = run_adversarial_table()
        assert table.metrics is registry
        assert table.instrumentation is not None
        assert counter_total(registry.snapshot(), "dining.meals_total") > 0

    def test_no_registry_no_instrumentation(self):
        assert active_registry() is None
        table = DiningTable(ring(4), seed=1)
        assert table.metrics is None
        assert table.instrumentation is None

    def test_explicit_registry_beats_ambient(self):
        explicit = MetricsRegistry()
        with collecting():
            table = DiningTable(ring(4), seed=1, metrics=explicit)
        assert table.metrics is explicit


class TestChannelGaugeAgreement:
    def test_matches_occupancy_monitor_on_adversarial_run(self):
        with collecting() as registry:
            table = run_adversarial_table()
        probe = table.instrumentation.network
        assert probe.max_in_transit() == table.occupancy.max_occupancy
        peaks = {edge: peak for edge, peak in table.occupancy.peak.items() if peak}
        assert probe.edge_peaks() == peaks
        snapshot = registry.snapshot()
        assert gauge_max(snapshot, "net.in_transit", layer="dining") == (
            table.occupancy.max_occupancy
        )

    def test_reaches_four_on_the_section7_extreme(self):
        # The scripted schedule from test_channel_extreme saturates the
        # bound; the gauge must witness the same 4 the checker allowed.
        with collecting() as registry:
            table = build_extreme_table()
            table.run(until=120.0)
        assert table.occupancy.peak[(0, 1)] == 4
        probe = table.instrumentation.network
        assert probe.max_in_transit() == 4
        assert probe.edge_peaks()[(0, 1)] == 4
        snapshot = registry.snapshot()
        assert gauge_max(snapshot, "net.in_transit", layer="dining") == 4
        # At the bound, not over it: no excursion was counted.
        assert counter_total(snapshot, "net.channel_bound_exceeded_total") == 0

    def test_back_to_back_tables_do_not_blend_live_gauges(self):
        with collecting() as registry:
            first = run_adversarial_table()
            second = run_adversarial_table()
        # Same seed, same schedule — each table's probe saw its own peak.
        assert (
            first.instrumentation.network.max_in_transit()
            == second.instrumentation.network.max_in_transit()
            == first.occupancy.max_occupancy
        )
        assert registry is second.metrics


class TestDeltaSafety:
    def test_double_snapshot_does_not_double_count(self):
        with collecting() as registry:
            run_adversarial_table()
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second

    def test_mid_run_snapshot_then_final(self):
        with collecting() as registry:
            table = DiningTable(ring(6), seed=2, metrics=None)
            table.run(until=40.0)
            partial = counter_total(registry.snapshot(), "sim.events_total")
            table.run(until=120.0)
            total = counter_total(registry.snapshot(), "sim.events_total")
        assert 0 < partial < total
        assert total == table.sim.processed_events


class TestProfilerAndPhases:
    def test_hotspots_account_for_real_work(self):
        with collecting() as registry:
            table = run_adversarial_table()
        snapshot = registry.snapshot()
        events = counter_total(snapshot, "profile.events_total")
        assert events == table.sim.processed_events
        assert counter_total(snapshot, "profile.wall_seconds_total") > 0
        summary = summarize_snapshot(snapshot)
        assert summary["hotspots"], "expected at least one hotspot row"
        top = summary["hotspots"][0]
        assert top["events"] > 0 and top["seconds"] > 0

    def test_phase_seconds_cover_the_run(self):
        with collecting() as registry:
            run_adversarial_table()
        snapshot = registry.snapshot()
        by_phase = {
            (entry["labels"] or {}).get("phase"): entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "dining.phase_seconds_total"
        }
        # 8 diners over 120 time units; the crashed one stops at t=15.
        total = sum(by_phase.values())
        assert total == pytest.approx(7 * 120.0 + 15.0, rel=0.01)

    def test_daemon_layer_counters(self):
        with collecting() as registry:
            daemon = DistributedDaemon(
                ring(6), GreedyRecoloring(ring(6)), seed=5, step_time=0.5
            )
            daemon.run(until=60.0)
        snapshot = registry.snapshot()
        assert (
            counter_total(snapshot, "daemon.protocol_steps_total")
            == daemon.steps_executed
        )


class TestRunnerIntegration:
    def _runner(self, tmp_path, **kwargs):
        return Runner(use_cache=True, cache_dir=tmp_path, **kwargs)

    def test_cold_run_collects_and_caches_metrics(self, tmp_path):
        runner = self._runner(tmp_path, collect_metrics=True)
        result = runner.run("e6", seeds=[1], overrides=SMALL_OVERRIDES)
        (seed_result,) = result.seed_results
        assert not seed_result.cached
        assert seed_result.metrics is not None
        assert counter_total(seed_result.metrics, "dining.meals_total") > 0
        assert runner.cache_stats.stores == 1

    def test_warm_hit_replays_metrics(self, tmp_path):
        self._runner(tmp_path, collect_metrics=True).run(
            "e6", seeds=[1], overrides=SMALL_OVERRIDES
        )
        runner = self._runner(tmp_path, collect_metrics=True)
        result = runner.run("e6", seeds=[1], overrides=SMALL_OVERRIDES)
        (seed_result,) = result.seed_results
        assert seed_result.cached
        assert seed_result.metrics is not None
        assert runner.cache_stats.hits == 1
        assert runner.cache_stats.bytes_read > 0

    def test_rows_only_entry_is_recomputed_for_metrics(self, tmp_path):
        plain = self._runner(tmp_path)
        baseline = plain.run("e6", seeds=[1], overrides=SMALL_OVERRIDES)
        runner = self._runner(tmp_path, collect_metrics=True)
        result = runner.run("e6", seeds=[1], overrides=SMALL_OVERRIDES)
        (seed_result,) = result.seed_results
        assert not seed_result.cached  # the rows-only entry did not count
        assert seed_result.metrics is not None
        assert result.rows == baseline.rows  # instrumentation changed nothing

    def test_merged_metrics_spans_seeds(self, tmp_path):
        runner = self._runner(tmp_path, collect_metrics=True)
        result = runner.run("e6", seeds=[1, 2], overrides=SMALL_OVERRIDES)
        merged = result.merged_metrics()
        per_seed = sum(
            counter_total(r.metrics, "dining.meals_total") for r in result.seed_results
        )
        assert counter_total(merged, "dining.meals_total") == per_seed


class TestRunReport:
    def test_report_fields_and_rendering(self, tmp_path):
        runner = Runner(use_cache=True, cache_dir=tmp_path, collect_metrics=True)
        result = runner.run("e6", seeds=[1], overrides=SMALL_OVERRIDES)
        report = build_report(result, top=3)
        summary = report["summary"]
        assert summary["channel_bound_ok"] is True
        assert 0 < summary["channel_max_in_transit"] <= 4
        assert summary["events_processed"] > 0
        assert len(summary["hotspots"]) <= 3
        assert report["seeds_without_metrics"] == []
        text = render_report_text(report)
        assert "channel bound" in text
        assert "kernel hotspots" in text
        assert "max %d in transit per edge" % summary["channel_max_in_transit"] in text
