"""Tests for the wait-diagnosis utilities and the daemon early-stop API."""

import pytest

from repro.baselines import choy_singh_table, edge_reversal_table
from repro.core import (
    AlwaysHungry,
    DiningTable,
    DistributedDaemon,
    ScriptedWorkload,
    diagnose_diner,
    explain_starvation,
    scripted_detector,
)
from repro.errors import ConfigurationError
from repro.graphs import path, ring
from repro.sim.crash import CrashPlan
from repro.stabilization import GreedyRecoloring


class TestDiagnoseDiner:
    def test_thinking_diner_not_blocked(self):
        table = DiningTable(
            path(2), seed=1, detector=scripted_detector(),
            workload=ScriptedWorkload({}),  # nobody ever becomes hungry
        )
        table.run(until=1.0)
        report = diagnose_diner(table, 0)
        assert report.phase == "thinking"
        assert report.waiting_phase is None
        assert report.blocked_on == ()

    def test_phase1_block_identified(self):
        # Choy-Singh neighbor of a crashed diner waits at the doorway.
        table = choy_singh_table(
            ring(4),
            seed=1,
            crash_plan=CrashPlan.scripted({2: 5.0}),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=100.0)
        starving = table.starving_correct(patience=40.0)
        assert starving
        report = diagnose_diner(table, starving[0])
        assert report.waiting_phase == 1
        blockers = {s.neighbor: s for s in report.statuses if s.blocking}
        assert 2 in blockers
        assert blockers[2].crashed
        assert not blockers[2].suspected  # the null detector never learns

    def test_phase2_block_identified(self):
        # Pure Algorithm 1 mid-wait: in pair contention at t=4.5 the
        # lower-priority diner is inside, awaiting the fork that the
        # (unsuspected, eating) higher-priority diner is deferring.
        table = DiningTable(
            path(2),
            seed=1,
            coloring={0: 0, 1: 1},
            workload=ScriptedWorkload({0: [1.0], 1: [1.0]}, eat={1: [2.5]}),
            detector=scripted_detector(),
        )
        table.run(until=4.5)
        assert table.diners[1].is_eating
        report = diagnose_diner(table, 0)
        assert report.phase == "hungry" and report.inside
        assert report.waiting_phase == 2
        assert report.blocked_on == (1,)
        blocker = report.statuses[0]
        assert blocker.blocks_forks and not blocker.crashed and not blocker.suspected

    def test_ablation_victim_shows_algorithm1_semantics(self):
        # The no-fork-suspicion ablation starves while *suspecting* its
        # dead neighbor; under Algorithm 1's semantics that neighbor is
        # not a blocker (suspicion would substitute), so the diagnosis
        # correctly reports "not blocked" — the wedge is the ablation's.
        from repro.baselines import NoForkSuspicionDiner

        table = DiningTable(
            ring(4),
            seed=1,
            detector=scripted_detector(detection_delay=2.0),
            diner_factory=NoForkSuspicionDiner,
            crash_plan=CrashPlan.scripted({2: 5.0}),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=150.0)
        inside_victims = [
            pid
            for pid in table.starving_correct(patience=60.0)
            if table.diners[pid].inside
        ]
        assert inside_victims
        report = diagnose_diner(table, inside_victims[0])
        assert report.waiting_phase is None
        suspected = [s.neighbor for s in report.statuses if s.suspected]
        assert 2 in suspected

    def test_unknown_pid_rejected(self):
        table = DiningTable(path(2), seed=1, detector=scripted_detector())
        with pytest.raises(ConfigurationError):
            diagnose_diner(table, 99)

    def test_non_algorithm1_diner_rejected(self):
        table = edge_reversal_table(ring(4), seed=1)
        with pytest.raises(ConfigurationError):
            diagnose_diner(table, 0)


class TestExplainStarvation:
    def test_narrative_for_blocked_diner(self):
        table = choy_singh_table(
            ring(4),
            seed=1,
            crash_plan=CrashPlan.scripted({2: 5.0}),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=100.0)
        victim = table.starving_correct(patience=40.0)[0]
        text = explain_starvation(table, victim)
        assert f"diner {victim}" in text
        assert "CRASHED (undetected!)" in text
        assert "waiting for" in text

    def test_narrative_for_unblocked_diner(self):
        table = DiningTable(
            path(2), seed=1, detector=scripted_detector(),
            workload=ScriptedWorkload({}),  # nobody ever hungry
        )
        table.run(until=5.0)
        assert "not blocked" in explain_starvation(table, 0)


class TestRunUntilConverged:
    def test_stops_early_when_converged(self):
        graph = ring(6)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(graph, protocol, seed=2, detector=scripted_detector())
        converged_at = daemon.run_until_converged(max_time=500.0, settle=10.0)
        assert converged_at is not None
        assert daemon.table.sim.now < 500.0  # stopped well before the cap
        assert daemon.converged()

    def test_returns_none_when_never_converging(self):
        # Crash-oblivious daemon + targeted corruption never recovers.
        from repro.baselines import ChoySinghDiner
        from repro.core import null_detector

        graph = ring(6)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=2,
            detector=null_detector(),
            diner_factory=ChoySinghDiner,
            crash_plan=CrashPlan.scripted({2: 0.005}),
        )
        daemon.table.sim.schedule_at(
            30.0, lambda: daemon.corrupt_register(1, protocol.read(2))
        )
        result = daemon.run_until_converged(max_time=120.0, settle=10.0)
        assert result is None
        assert daemon.table.sim.now == 120.0

    def test_settle_guards_against_transient_legitimacy(self):
        # A protocol corrupted shortly after converging must not report
        # the pre-corruption instant.
        graph = ring(6)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(graph, protocol, seed=2, detector=scripted_detector())
        daemon.table.sim.schedule_at(
            12.0, lambda: daemon.corrupt_register(1, protocol.read(2))
        )
        converged_at = daemon.run_until_converged(max_time=400.0, settle=15.0)
        assert converged_at is not None
        assert converged_at >= 12.0  # the corruption reset the clock
