"""The diagnostics layer through the CLI: starving runs explain themselves.

``repro dine`` already *detected* starvation (exit code 1); these tests
pin the new behavior that it also prints :func:`explain_starvation` for
every starving diner — the paper's baseline failure (a null detector
facing a crash wedges phase 2 forever) must name the crashed neighbor
and say the crash went undetected.
"""

from repro.cli import main


class TestDineStarvationDiagnosis:
    def test_null_detector_crash_explains_the_wait(self, capsys):
        code = main([
            "dine", "--n", "5", "--crashes", "1", "--detector", "null",
            "--convergence", "0", "--horizon", "200",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "starving correct:      [" in out
        # Every starving diner gets a diagnosis block...
        assert "blocked in phase" in out
        assert "waiting for" in out
        # ...and the root cause is named: an unsuspected crashed neighbor.
        assert "CRASHED (undetected!)" in out

    def test_diagnosis_names_doorway_or_fork(self, capsys):
        main([
            "dine", "--n", "5", "--crashes", "1", "--detector", "null",
            "--convergence", "0", "--horizon", "200",
        ])
        out = capsys.readouterr().out
        assert ("shared fork" in out) or ("doorway ack" in out)

    def test_healthy_run_prints_no_diagnosis(self, capsys):
        code = main(["dine", "--n", "6", "--crashes", "1", "--horizon", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "blocked in phase" not in out
        assert "waiting for" not in out


class TestDineMetricsFlag:
    def test_metrics_snapshot_written(self, tmp_path, capsys):
        target = tmp_path / "dine.json"
        code = main([
            "dine", "--n", "6", "--crashes", "0", "--horizon", "80",
            "--metrics", str(target),
        ])
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        import json

        snapshot = json.loads(target.read_text())
        assert snapshot["counters"]
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "dining.meals_total" in names
        assert "net.messages_sent_total" in names

    def test_prometheus_extension_switches_format(self, tmp_path, capsys):
        target = tmp_path / "dine.prom"
        code = main([
            "dine", "--n", "5", "--crashes", "0", "--horizon", "60",
            "--metrics", str(target),
        ])
        assert code == 0
        text = target.read_text()
        assert text.startswith("# TYPE")
        assert "repro_dining_meals_total" in text


class TestReportCommand:
    def test_report_on_small_scenario(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        json_path = tmp_path / "report.json"
        code = main(["report", "e2", "--seeds", "1", "--json", str(json_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run report — e2" in out
        assert "channel bound:" in out
        assert "last violation:" in out
        assert "quiescence:" in out
        assert "kernel hotspots" in out
        import json

        report = json.loads(json_path.read_text())
        assert report["summary"]["channel_max_in_transit"] <= 4
        assert report["summary"]["channel_bound_ok"] is True

    def test_warm_cache_replay_matches(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(["report", "e2", "--seeds", "1"])
        cold = capsys.readouterr().out
        code = main(["report", "e2", "--seeds", "1", "--cache-stats"])
        warm = capsys.readouterr().out
        assert code == 0
        assert "1 hit(s)" in warm
        # The guarantee lines are identical cold and warm.
        def pick(text):
            return [
                line for line in text.splitlines()
                if line.strip().startswith(("channel bound", "last violation", "quiescence:"))
            ]
        assert pick(cold) == pick(warm)

    def test_unknown_scenario_exits_two(self, capsys):
        code = main(["report", "e99"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestExperimentsFlags:
    def test_cache_stats_line(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["experiments", "--only", "e2", "--seeds", "1", "--cache-stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 hit(s) / 1 miss(es)" in out

    def test_metrics_flag_writes_merged_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        target = tmp_path / "exp.json"
        code = main([
            "experiments", "--only", "e2", "--seeds", "1", "--metrics", str(target),
        ])
        assert code == 0
        import json

        snapshot = json.loads(target.read_text())
        assert {entry["name"] for entry in snapshot["counters"]} >= {
            "dining.meals_total", "sim.events_total",
        }
