"""The delta-debugging shrinker and its witness artifacts."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.faults import (
    CrashSpec,
    FaultPlan,
    FlapSpec,
    LatencySpec,
    shrink_plan,
    write_witness,
)

pytestmark = pytest.mark.fuzz

#: A deliberately over-dressed failing plan: the bug (greedy-eater) needs
#: none of the adversary, so everything should shrink away.
BAGGY = FaultPlan(
    n=5,
    seed=0,
    horizon=120.0,
    latency=LatencySpec.of("uniform", low=0.3, high=1.8),
    crashes=(CrashSpec(pid=4, at=30.0),),
    flaps=FlapSpec(convergence=10.0, mistakes_per_edge=1.0),
    mutant="greedy-eater",
)


def test_shrink_reaches_the_known_minimum():
    shrunk = shrink_plan(BAGGY)
    assert "wx-safety" in shrunk.result.failed
    # Known minimal witness for an unconditional-eat bug: the smallest
    # ring, no crashes, no flaps, fixed latency, floor horizon.
    assert shrunk.plan.n == 3
    assert shrunk.plan.crashes == ()
    assert shrunk.plan.flaps == FlapSpec(detection_delay=shrunk.plan.flaps.detection_delay)
    assert shrunk.plan.latency == LatencySpec.of("fixed", delay=1.0)
    assert shrunk.plan.horizon == 20.0
    assert shrunk.plan.mutant == "greedy-eater"
    assert shrunk.reduced and shrunk.runs <= 64


def test_shrink_preserves_the_failing_property():
    shrunk = shrink_plan(BAGGY)
    assert set(shrunk.target) & set(shrunk.result.failed)
    # Re-running the minimized plan from scratch reproduces the failure.
    from repro.faults import run_plan_kernel

    again = run_plan_kernel(shrunk.plan)
    assert set(shrunk.target) & set(again.failed)


def test_shrink_refuses_a_passing_plan():
    with pytest.raises(ConfigurationError):
        shrink_plan(FaultPlan(n=3, seed=1, horizon=40.0))


def test_witness_replays_as_fail_through_repro_check(tmp_path, capsys):
    shrunk = shrink_plan(BAGGY)
    directory = write_witness(shrunk.result, str(tmp_path / "wit"), shrink=shrunk)

    files = set(os.listdir(directory))
    assert {"plan.json", "trace.jsonl", "wire.jsonl", "verdict.json",
            "shrink.json", "README.md"} <= files

    # plan.json round-trips to the minimized plan.
    assert FaultPlan.load(os.path.join(directory, "plan.json")) == shrunk.plan

    # The README's own `repro check` command re-judges the run as FAIL.
    with open(os.path.join(directory, "README.md"), encoding="utf-8") as fh:
        command = next(line for line in fh if line.startswith("repro check"))
    argv = command.split()[1:]
    argv[1] = os.path.join(directory, argv[1])  # trace.jsonl
    argv[2] = os.path.join(directory, argv[2])  # wire.jsonl
    exit_code = cli_main(argv)
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "wx-safety" in out and "FAIL" in out


def test_witness_verdict_json_matches_run(tmp_path):
    shrunk = shrink_plan(BAGGY)
    directory = write_witness(shrunk.result, str(tmp_path / "wit"))
    with open(os.path.join(directory, "verdict.json"), encoding="utf-8") as fh:
        data = json.load(fh)
    assert data["verdict"]["ok"] is False
    assert "wx-safety" in data["verdict"]["properties"]
    assert data["plan"] == shrunk.plan.to_json()
