"""LockCore unit tests: the lease brain driven by hand, no sockets.

A fake diner pair and a fake trace recorder let every lifecycle edge be
stepped deterministically: the tests emit the exact ``PhaseChange`` /
``Crash`` records the real substrates would, and assert the core's
grant/deny/expiry bookkeeping — including the leak detector that guards
the invariant "every active lease is backed by an eating diner".
"""

import pytest

from repro.locks.messages import SESSION_BASE, LeaseDenied, LeaseGrant
from repro.locks.service import (
    DENY_BAD_SESSION,
    DENY_BAD_TTL,
    DENY_BUSY,
    DENY_CRASHED,
    DENY_SESSION_BUSY,
    DENY_SHUTDOWN,
    DENY_UNKNOWN,
    LeaseWorkload,
    LockCore,
    default_resources,
)
from repro.obs.metrics import MetricsRegistry, counter_total
from repro.trace.events import Crash, PhaseChange

S1 = SESSION_BASE + 1
S2 = SESSION_BASE + 2
S3 = SESSION_BASE + 3


class FakeDiner:
    """Just enough DinerActor surface for the core: phase + two verbs."""

    def __init__(self, pid, harness):
        self.pid = pid
        self.harness = harness
        self.phase = "thinking"
        self.crashed = False
        self.hungry_calls = 0
        self.early_exits = 0

    @property
    def is_thinking(self):
        return self.phase == "thinking"

    @property
    def is_eating(self):
        return self.phase == "eating"

    def become_hungry_now(self):
        if self.phase == "thinking":
            self.phase = "hungry"
            self.hungry_calls += 1

    def finish_eating_early(self):
        assert self.phase == "eating", "early release of a non-eating diner"
        self.early_exits += 1
        # The real DinerActor runs Action 10 synchronously, which re-enters
        # the core through the eating->thinking phase change.
        self.harness.exit_eating(self.pid)


class FakeTrace:
    """Recorder double: stores listeners, lets tests emit records."""

    def __init__(self):
        self._listeners = []

    def add_listener(self, fn, types=()):
        self._listeners.append((fn, tuple(types)))

    def emit(self, record):
        for fn, types in self._listeners:
            if not types or isinstance(record, types):
                fn(record)


class Harness:
    """A LockCore over fake diners with a hand-cranked deferral queue."""

    def __init__(self, n=2, registry=None, **kwargs):
        self.now = 0.0
        self.deferred = []
        self.diners = {pid: FakeDiner(pid, self) for pid in range(n)}
        self.trace = FakeTrace()
        self.core = LockCore(
            {f"r{pid}": pid for pid in range(n)},
            self.diners,
            clock=lambda: self.now,
            defer=self.deferred.append,
            registry=registry,
            **kwargs,
        )
        self.core.attach(self.trace)

    def run_deferred(self):
        while self.deferred:
            self.deferred.pop(0)()

    def enter_eating(self, pid):
        self.diners[pid].phase = "eating"
        self.trace.emit(PhaseChange(self.now, pid, "hungry", "eating"))

    def exit_eating(self, pid):
        self.diners[pid].phase = "thinking"
        self.trace.emit(PhaseChange(self.now, pid, "eating", "thinking"))

    def crash(self, pid):
        self.diners[pid].crashed = True
        self.trace.emit(Crash(self.now, pid))


def test_request_wakes_diner_and_grant_rides_eating():
    h = Harness()
    replies = []
    h.core.request(S1, "r0", 250, replies.append)
    # Queued, not answered; the thinking diner got one deferred nudge.
    assert replies == []
    assert len(h.deferred) == 1
    h.run_deferred()
    assert h.diners[0].hungry_calls == 1

    h.now = 0.5
    h.enter_eating(0)
    assert len(replies) == 1 and type(replies[0]) is LeaseGrant
    grant = replies[0]
    assert grant.sender == 0 and grant.ttl_ms == 250 and grant.lease_id > 0
    # The active lease's TTL is exactly what LeaseWorkload will eat for.
    assert h.core.active_ttl(0) == pytest.approx(0.25)

    assert h.core.release(S1, grant.lease_id) is True
    assert h.diners[0].early_exits == 1
    counters = h.core.counters
    assert counters["grants"] == 1 and counters["releases"] == 1
    assert counters["expiries"] == 0
    snap = h.core.snapshot()
    assert snap["active_leases"] == 0
    assert snap["waiting_sessions"] == 0
    assert snap["leaked_leases"] == 0


def test_ttl_lapse_reclaims_and_grants_the_contender():
    h = Harness()
    replies_a, replies_b = [], []
    h.core.request(S1, "r0", 100, replies_a.append)
    h.run_deferred()
    h.enter_eating(0)
    assert type(replies_a[0]) is LeaseGrant

    # A second session queues while the lease is held: no wake (the diner
    # is eating), no reply yet.
    h.core.request(S2, "r0", 100, replies_b.append)
    assert replies_b == [] and h.deferred == []

    # The TTL lapses (the meal ends) without a release: expiry, then the
    # contender's wake fires and its grant rides the next meal.
    h.now = 0.2
    h.exit_eating(0)
    assert h.core.counters["expiries"] == 1
    h.run_deferred()
    h.enter_eating(0)
    assert len(replies_b) == 1 and type(replies_b[0]) is LeaseGrant
    assert replies_b[0].lease_id != replies_a[0].lease_id


def test_wake_is_deduplicated_per_diner():
    h = Harness()
    h.core.request(S1, "r0", 100, lambda m: None)
    h.core.request(S2, "r0", 100, lambda m: None)
    assert len(h.deferred) == 1  # one pending nudge, not one per request


@pytest.mark.parametrize(
    "session,resource,ttl,reason",
    [
        (7, "r0", 100, DENY_BAD_SESSION),  # below the session-id floor
        (S1, "nope", 100, DENY_UNKNOWN),
        (S1, "r0", 0, DENY_BAD_TTL),
        (S1, "r0", 10**9, DENY_BAD_TTL),
    ],
)
def test_deny_reasons_for_bad_requests(session, resource, ttl, reason):
    h = Harness()
    replies = []
    h.core.request(session, resource, ttl, replies.append)
    assert len(replies) == 1 and type(replies[0]) is LeaseDenied
    assert replies[0].reason == reason
    assert h.core.denies == {reason: 1}


def test_deny_session_busy_crashed_full_and_shutdown():
    h = Harness(max_waiters=1)
    replies = []
    h.core.request(S1, "r0", 100, replies.append)  # queued
    h.core.request(S1, "r0", 100, replies.append)  # same session again
    assert replies[-1].reason == DENY_SESSION_BUSY
    h.core.request(S2, "r0", 100, replies.append)  # queue already full
    assert replies[-1].reason == DENY_BUSY

    h.crash(1)
    h.core.request(S2, "r1", 100, replies.append)
    assert replies[-1].reason == DENY_CRASHED

    h.core.shutdown()
    # The queued waiter was flushed with a shutdown denial...
    assert replies[-1].reason == DENY_SHUTDOWN
    # ...and new arrivals are refused outright.
    h.core.request(S3, "r0", 100, replies.append)
    assert replies[-1].reason == DENY_SHUTDOWN
    assert h.core.snapshot()["waiting_sessions"] == 0


def test_abandoned_waiter_is_skipped_at_grant_time():
    h = Harness()
    replies_a, replies_b = [], []
    h.core.request(S1, "r0", 100, replies_a.append)
    h.core.request(S2, "r0", 100, replies_b.append)
    h.core.abandon(S1)
    h.run_deferred()
    h.enter_eating(0)
    # The head waiter vanished; the grant goes to the survivor.
    assert replies_a == []
    assert len(replies_b) == 1 and type(replies_b[0]) is LeaseGrant
    assert h.core.counters["abandoned_waiting"] == 1


def test_abandoned_lease_is_left_to_its_ttl():
    h = Harness()
    replies = []
    h.core.request(S1, "r0", 100, replies.append)
    h.run_deferred()
    h.enter_eating(0)
    assert type(replies[0]) is LeaseGrant

    h.core.abandon(S1)  # connection lost mid-lease: no early reclaim
    assert h.core.counters["abandons"] == 1
    assert h.core.snapshot()["active_leases"] == 1
    h.now = 0.1
    h.exit_eating(0)  # the TTL (the eat timer) does the reclaiming
    assert h.core.counters["expiries"] == 1
    assert h.core.snapshot()["active_leases"] == 0
    assert h.core.leaked_leases() == []


def test_crash_reclaims_lease_and_flushes_queue():
    h = Harness()
    replies_a, replies_b = [], []
    h.core.request(S1, "r0", 100, replies_a.append)
    h.run_deferred()
    h.enter_eating(0)
    h.core.request(S2, "r0", 100, replies_b.append)

    h.crash(0)
    assert h.core.counters["crash_reclaims"] == 1
    assert len(replies_b) == 1 and replies_b[0].reason == DENY_CRASHED
    snap = h.core.snapshot()
    assert snap["active_leases"] == 0 and snap["waiting_sessions"] == 0
    assert h.core.leaked_leases() == []


def test_stale_release_is_refused():
    h = Harness()
    replies = []
    h.core.request(S1, "r0", 100, replies.append)
    h.run_deferred()
    h.enter_eating(0)
    grant = replies[0]
    assert h.core.release(S1, grant.lease_id + 99) is False
    assert h.core.release(S2, grant.lease_id) is False
    assert h.core.counters["stale_releases"] == 2
    assert h.core.counters["releases"] == 0


def test_leak_detector_flags_a_lease_without_an_eating_diner():
    h = Harness()
    replies = []
    h.core.request(S1, "r0", 100, replies.append)
    h.run_deferred()
    h.enter_eating(0)
    assert h.core.leaked_leases() == []  # backed: the diner is eating
    # Force the invariant breach: the diner leaves eating but the phase
    # change never reaches the core (what a wiring bug would look like).
    h.diners[0].phase = "thinking"
    leaked = h.core.leaked_leases()
    assert [lease.session for lease in leaked] == [S1]
    assert h.core.snapshot()["leaked_leases"] == 1


def test_resource_mapped_to_non_local_diner_is_rejected():
    with pytest.raises(ValueError):
        LockCore(
            {"r9": 9},
            {0: None},
            clock=lambda: 0.0,
            defer=lambda fn: None,
        )


def test_metrics_ride_the_registry():
    registry = MetricsRegistry(profile=False)
    h = Harness(registry=registry)
    replies = []
    h.core.request(S1, "r0", 100, replies.append)
    h.core.request(7, "r0", 100, replies.append)  # denied: bad session
    h.run_deferred()
    h.enter_eating(0)
    grant = replies[-1]
    assert type(grant) is LeaseGrant
    h.core.release(S1, grant.lease_id)

    snapshot = registry.snapshot()
    assert counter_total(snapshot, "locks.requests_total") == 2
    assert counter_total(snapshot, "locks.grants_total") == 1
    assert counter_total(snapshot, "locks.releases_total") == 1
    assert counter_total(snapshot, "locks.denies_total", reason=DENY_BAD_SESSION) == 1


def test_default_resources_honors_placement():
    from repro.graphs import ring

    graph = ring(4)
    assert default_resources(graph) == {"r0": 0, "r1": 1, "r2": 2, "r3": 3}
    placement = {0: 0, 1: 0, 2: 1, 3: 1}
    assert default_resources(graph, placement, 1) == {"r2": 2, "r3": 3}


def test_lease_workload_thinks_forever_and_eats_the_ttl():
    h = Harness()
    workload = LeaseWorkload(idle_eat_time=0.004)
    workload.bind(h.core)
    assert workload.think_duration(0, None) is None
    # No lease active: the idle fallback covers the all-abandoned race.
    assert workload.eat_duration(0, None) == pytest.approx(0.004)

    replies = []
    h.core.request(S1, "r0", 640, replies.append)
    h.run_deferred()
    h.enter_eating(0)
    assert workload.eat_duration(0, None) == pytest.approx(0.64)
    assert workload.eat_duration(1, None) == pytest.approx(0.004)

    with pytest.raises(ValueError):
        LeaseWorkload(idle_eat_time=0.0)
