"""Integration tests for Theorem 2: wait-free progress.

Every correct hungry process eventually eats, regardless of crashes —
including the hard cases the proofs wrestle with: crash while eating,
crash while holding forks inside the doorway, crash of every neighbor,
and n−1 crashes.
"""

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

PATIENCE = 150.0
HORIZON = 450.0


def run_ring(crash_plan, *, n=8, seed=1, convergence=30.0):
    table = DiningTable(
        topologies.ring(n),
        seed=seed,
        detector=scripted_detector(
            convergence_time=convergence, random_mistakes=convergence > 0
        ),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
    )
    table.run(until=HORIZON)
    return table


@pytest.mark.parametrize("f", [0, 1, 2, 4, 7])
def test_wait_free_at_every_crash_count(f):
    crash_plan = CrashPlan.random(range(8), f, (20.0, 80.0), RandomStreams(f + 10))
    table = run_ring(crash_plan)
    assert table.starving_correct(patience=PATIENCE) == []
    meals = table.eat_counts()
    for pid in table.correct_pids:
        assert meals.get(pid, 0) >= 2, f"correct {pid} barely ate with f={f}"


def test_crash_while_eating_releases_neighbors():
    # Pid 2 eats forever-ish and crashes mid-meal; neighbors 1 and 3 must
    # still make progress via suspicion.
    table = DiningTable(
        topologies.ring(6),
        seed=3,
        detector=scripted_detector(detection_delay=2.0),
        crash_plan=CrashPlan.scripted({2: 21.0}),
        workload=AlwaysHungry(eat_time=2.0, think_time=0.01),
    )
    table.run(until=300.0)
    assert table.starving_correct(patience=100.0) == []


def test_all_neighbors_of_one_process_crash():
    # Star: the hub loses every neighbor; leaves lose their only neighbor.
    graph = topologies.star(6)
    crash_plan = CrashPlan.scripted({0: 25.0})  # hub dies
    table = DiningTable(
        graph,
        seed=5,
        detector=scripted_detector(detection_delay=2.0),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )
    table.run(until=300.0)
    assert table.starving_correct(patience=100.0) == []
    meals = table.eat_counts()
    # Leaves conflict only with the dead hub: they feast freely.
    assert all(meals.get(pid, 0) > 50 for pid in range(1, 6))


def test_n_minus_1_crashes_leave_survivor_eating():
    crash_plan = CrashPlan.random(range(8), 7, (10.0, 60.0), RandomStreams(99))
    table = run_ring(crash_plan)
    survivor = table.correct_pids[0]
    assert table.eat_counts().get(survivor, 0) > 10


def test_cascading_crashes_during_convergence_window():
    # Crashes interleave with detector mistakes: the worst regime.
    crash_plan = CrashPlan.scripted({1: 15.0, 3: 25.0, 5: 35.0})
    table = run_ring(crash_plan, seed=8, convergence=50.0)
    assert table.starving_correct(patience=PATIENCE) == []


def test_progress_on_clique_with_majority_crashed():
    graph = topologies.clique(7)
    crash_plan = CrashPlan.random(range(7), 4, (10.0, 50.0), RandomStreams(21))
    table = DiningTable(
        graph,
        seed=2,
        detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
    )
    table.run(until=HORIZON)
    assert table.starving_correct(patience=PATIENCE) == []


def test_every_correct_process_eats_repeatedly_not_just_once():
    # Wait-freedom is "eventually eats" for every hungry session, i.e.
    # infinitely often under an always-hungry workload.
    crash_plan = CrashPlan.scripted({0: 20.0, 4: 40.0})
    table = run_ring(crash_plan, seed=6)
    meals = table.eat_counts()
    for pid in table.correct_pids:
        assert meals.get(pid, 0) >= 10
