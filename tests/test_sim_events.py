"""Unit tests for the deterministic event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import Event, EventPriority, EventQueue


def noop():
    pass


class TestOrdering:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, EventPriority.TIMER, noop, label="late")
        queue.push(1.0, EventPriority.TIMER, noop, label="early")
        assert queue.pop().label == "early"
        assert queue.pop().label == "late"

    def test_same_time_orders_by_priority(self):
        queue = EventQueue()
        queue.push(1.0, EventPriority.REEVALUATE, noop, label="reeval")
        queue.push(1.0, EventPriority.CONTROL, noop, label="control")
        queue.push(1.0, EventPriority.DELIVERY, noop, label="delivery")
        queue.push(1.0, EventPriority.TIMER, noop, label="timer")
        order = [queue.pop().label for _ in range(4)]
        assert order == ["control", "delivery", "timer", "reeval"]

    def test_same_time_same_priority_is_fifo(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(2.0, EventPriority.TIMER, noop, label=str(i))
        assert [queue.pop().label for _ in range(10)] == [str(i) for i in range(10)]

    def test_crash_precedes_delivery_at_same_instant(self):
        # The CONTROL < DELIVERY ordering is what makes "a crashed process
        # receives nothing from its crash time on" exact.
        assert EventPriority.CONTROL < EventPriority.DELIVERY

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(7.0, EventPriority.TIMER, noop)
        queue.push(3.0, EventPriority.TIMER, noop)
        assert queue.peek_time() == 3.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        first = queue.push(1.0, EventPriority.TIMER, noop, label="dead")
        queue.push(2.0, EventPriority.TIMER, noop, label="alive")
        first.cancel()
        assert len(queue) == 1
        assert queue.pop().label == "alive"

    def test_cancel_all_leaves_queue_empty(self):
        queue = EventQueue()
        events = [queue.push(float(i), EventPriority.TIMER, noop) for i in range(5)]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        assert not queue

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, EventPriority.TIMER, noop)
        queue.push(2.0, EventPriority.TIMER, noop)
        popped = queue.pop()
        assert popped is event
        popped.cancel()  # cancelling a fired event must not double-count
        assert len(queue) == 1

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, EventPriority.TIMER, noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancelled_clears_action(self):
        queue = EventQueue()
        event = queue.push(1.0, EventPriority.TIMER, noop)
        event.cancel()
        assert event.action is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, EventPriority.TIMER, noop)
        queue.push(4.0, EventPriority.TIMER, noop)
        first.cancel()
        assert queue.peek_time() == 4.0


class TestQueueBasics:
    def test_empty_pop_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        queue = EventQueue()
        queue.push(1.0, EventPriority.TIMER, noop)
        queue.push(2.0, EventPriority.TIMER, noop)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, EventPriority.TIMER, noop)
        assert queue

    def test_event_sort_key_components(self):
        event = Event(3.0, EventPriority.DELIVERY, 9, noop)
        assert event.sort_key() == (3.0, 1, 9)
