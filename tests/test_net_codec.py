"""Wire codec: round-trip identity, golden byte layouts, size accounting."""

import json
import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.messages import (
    BakeryNumber,
    BakeryOk,
    BakeryQuery,
    BakeryRequest,
    LrBusy,
    LrRequest,
    RaReply,
    RaRequest,
)
from repro.core.messages import Ack, Fork, ForkRequest, Ping, message_size_bits
from repro.detectors.heartbeat import Heartbeat
from repro.locks.messages import LeaseDenied, LeaseGrant, LeaseRelease, LeaseRequest
from repro.net.codec import (
    MAX_STRING_BYTES,
    FrameDecoder,
    WireCodecError,
    decode_frame,
    decode_frame_ex,
    decode_message,
    decode_message_ex,
    encode_frame,
    encode_message,
    frame_size_bits,
    frame_wire_bytes,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "fixtures", "wire_golden.json")

pids = st.integers(min_value=0, max_value=2**63 - 1)
seqs = st.integers(min_value=0, max_value=2**63 - 1)
colors = st.integers(min_value=0, max_value=2**63 - 1)
timestamps = st.floats(allow_nan=False, allow_infinity=False)
contexts = st.tuples(
    st.integers(min_value=0, max_value=2**63 - 1),  # trace id
    st.integers(min_value=0, max_value=2**63 - 1),  # span id
    st.integers(min_value=0, max_value=2**63 - 1),  # lamport
)


ttls = st.integers(min_value=0, max_value=2**31 - 1)
lease_ids = st.integers(min_value=0, max_value=2**63 - 1)
# Unicode strings whose UTF-8 encoding fits the in-frame cap.
short_strings = st.text(min_size=0, max_size=MAX_STRING_BYTES // 4)


@st.composite
def envelopes(draw):
    """(src, dst, seq, message) with adversarial ids, colors, timestamps."""
    src = draw(pids)
    dst = draw(pids)
    seq = draw(seqs)
    kind = draw(st.sampled_from((
        "ping", "ack", "fork_request", "fork", "heartbeat",
        "lease_request", "lease_grant", "lease_release", "lease_denied",
        "bakery_query", "bakery_number", "bakery_request", "bakery_ok",
        "ra_request", "ra_reply", "lr_request", "lr_busy",
    )))
    if kind == "ping":
        message = Ping(src)
    elif kind == "ack":
        message = Ack(src)
    elif kind == "fork_request":
        message = ForkRequest(src, draw(colors))
    elif kind == "fork":
        message = Fork(src)
    elif kind == "heartbeat":
        message = Heartbeat(sent_at=draw(timestamps))
    elif kind == "lease_request":
        message = LeaseRequest(src, draw(short_strings), draw(ttls))
    elif kind == "lease_grant":
        message = LeaseGrant(src, draw(lease_ids), draw(ttls))
    elif kind == "lease_release":
        message = LeaseRelease(src, draw(lease_ids))
    elif kind == "lease_denied":
        message = LeaseDenied(src, draw(short_strings))
    elif kind == "bakery_query":
        message = BakeryQuery(src)
    elif kind == "bakery_number":
        message = BakeryNumber(src, draw(seqs))
    elif kind == "bakery_request":
        message = BakeryRequest(src, draw(seqs))
    elif kind == "bakery_ok":
        message = BakeryOk(src)
    elif kind == "ra_request":
        message = RaRequest(src, draw(seqs))
    elif kind == "ra_reply":
        message = RaReply(src)
    elif kind == "lr_request":
        message = LrRequest(src, draw(st.booleans()))
    else:
        message = LrBusy(src)
    return src, dst, seq, message


# ----------------------------------------------------------------------
# Round trip (property-based)
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(envelopes())
def test_round_trip_identity(envelope):
    src, dst, seq, message = envelope
    payload = encode_message(src, dst, seq, message)
    assert decode_message(payload) == (src, dst, seq, message)


@settings(max_examples=100, deadline=None)
@given(envelopes())
def test_frame_round_trip(envelope):
    src, dst, seq, message = envelope
    assert decode_frame(encode_frame(src, dst, seq, message)) == envelope


@settings(max_examples=50, deadline=None)
@given(st.lists(envelopes(), min_size=1, max_size=20), st.integers(1, 7))
def test_stream_reassembly_in_arbitrary_chunks(batch, chunk):
    """A FrameDecoder fed arbitrary byte chunks yields every frame in order."""
    stream = b"".join(encode_frame(*e) for e in batch)
    decoder = FrameDecoder()
    decoded = []
    for offset in range(0, len(stream), chunk):
        decoded.extend(decoder.feed(stream[offset:offset + chunk]))
    assert decoded == batch
    assert decoder.pending_bytes == 0


@settings(max_examples=200, deadline=None)
@given(envelopes(), contexts)
def test_traced_round_trip_surfaces_context(envelope, context):
    """A tagged payload round-trips the trace context exactly — and the
    plain decoder still accepts it, silently dropping the tag."""
    src, dst, seq, message = envelope
    payload = encode_message(src, dst, seq, message, context)
    assert decode_message_ex(payload) == (src, dst, seq, message, context)
    assert decode_message(payload) == (src, dst, seq, message)


@settings(max_examples=100, deadline=None)
@given(envelopes())
def test_untagged_payload_decodes_with_none_context(envelope):
    src, dst, seq, message = envelope
    payload = encode_message(src, dst, seq, message)
    assert decode_message_ex(payload) == (src, dst, seq, message, None)


@settings(max_examples=100, deadline=None)
@given(envelopes(), contexts)
def test_context_is_pure_suffix(envelope, context):
    """Tagging costs exactly the flag bit plus the three context varints:
    strip them and the bytes are the historical untagged encoding."""
    plain = encode_message(*envelope)
    traced = encode_message(*envelope, context)
    assert len(traced) > len(plain)
    stripped = bytes((traced[0] & 0x7F,)) + traced[1:len(plain)]
    assert stripped == plain


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(envelopes(), st.none() | contexts), min_size=1, max_size=12),
       st.integers(1, 7))
def test_capture_context_stream_mixes_tagged_and_untagged(batch, chunk):
    """FrameDecoder(capture_context=True) yields 5-tuples for a stream
    freely mixing traced and untraced frames."""
    stream = b"".join(
        encode_frame(*envelope, context) for envelope, context in batch
    )
    decoder = FrameDecoder(capture_context=True)
    decoded = []
    for offset in range(0, len(stream), chunk):
        decoded.extend(decoder.feed(stream[offset:offset + chunk]))
    assert decoded == [(*envelope, context) for envelope, context in batch]
    assert decoder.pending_bytes == 0


def test_decode_frame_ex_matches_decode_frame_plus_context():
    context = (0x300000007, 2, 41)
    frame = encode_frame(3, 5, 1, Ping(3), context)
    assert decode_frame_ex(frame) == (3, 5, 1, Ping(3), context)
    assert decode_frame(frame) == (3, 5, 1, Ping(3))
    plain = encode_frame(3, 5, 1, Ping(3))
    assert decode_frame_ex(plain) == (3, 5, 1, Ping(3), None)


def test_decode_rejects_truncated_context():
    payload = encode_message(1, 2, 3, Ping(1), (7, 1, 9))
    with pytest.raises(WireCodecError):
        decode_message_ex(payload[:-1])


def test_heartbeat_nan_is_preserved():
    # NaN compares unequal to itself, so check the bit pattern explicitly.
    src, dst, seq, message = decode_message(
        encode_message(1, 2, 3, Heartbeat(sent_at=math.nan))
    )
    assert (src, dst, seq) == (1, 2, 3)
    assert math.isnan(message.sent_at)


# ----------------------------------------------------------------------
# Golden byte layouts
# ----------------------------------------------------------------------
def _golden_cases():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as stream:
        return json.load(stream)


@pytest.mark.parametrize("case", _golden_cases(), ids=lambda c: c["name"])
def test_golden_encoding(case):
    """The wire format is pinned: changing it must change this fixture."""
    message = {
        "Ping": lambda: Ping(case["src"]),
        "Ack": lambda: Ack(case["src"]),
        "ForkRequest": lambda: ForkRequest(case["src"], case["color"]),
        "Fork": lambda: Fork(case["src"]),
        "Heartbeat": lambda: Heartbeat(sent_at=case["sent_at"]),
        "LeaseRequest": lambda: LeaseRequest(
            case["src"], case["resource"], case["ttl_ms"]
        ),
        "LeaseGrant": lambda: LeaseGrant(
            case["src"], case["lease_id"], case["ttl_ms"]
        ),
        "LeaseRelease": lambda: LeaseRelease(case["src"], case["lease_id"]),
        "LeaseDenied": lambda: LeaseDenied(case["src"], case["reason"]),
        "BakeryQuery": lambda: BakeryQuery(case["src"]),
        "BakeryNumber": lambda: BakeryNumber(case["src"], case["number"]),
        "BakeryRequest": lambda: BakeryRequest(case["src"], case["number"]),
        "BakeryOk": lambda: BakeryOk(case["src"]),
        "RaRequest": lambda: RaRequest(case["src"], case["clock"]),
        "RaReply": lambda: RaReply(case["src"]),
        "LrRequest": lambda: LrRequest(case["src"], case["blocking"]),
        "LrBusy": lambda: LrBusy(case["src"]),
    }[case["type"]]()
    context = tuple(case["context"]) if "context" in case else None
    frame = encode_frame(case["src"], case["dst"], case["seq"], message, context)
    assert frame.hex() == case["frame_hex"]
    assert decode_frame(bytes.fromhex(case["frame_hex"])) == (
        case["src"], case["dst"], case["seq"], message,
    )
    assert decode_frame_ex(bytes.fromhex(case["frame_hex"])) == (
        case["src"], case["dst"], case["seq"], message, context,
    )


# ----------------------------------------------------------------------
# Size accounting (Section 7: O(log n) bits per message)
# ----------------------------------------------------------------------
def test_frame_size_grows_logarithmically_like_the_model():
    """Doubling n adds O(1) bytes per frame: same growth rate as the
    abstract accounting in core.messages.message_size_bits."""
    sizes = {}
    for exponent in range(1, 9):
        n = 2**exponent
        src, dst = n - 1, n - 2
        sizes[n] = frame_size_bits(src, dst, 1, Ping(src))
        assert message_size_bits(Ping(src), n_processes=n, n_colors=3) <= sizes[n]
    increments = [
        sizes[2 ** (e + 1)] - sizes[2**e] for e in range(1, 8)
    ]
    # Each doubling costs at most two extra varint bytes (one per pid).
    assert all(0 <= delta <= 16 for delta in increments)


def test_dining_frames_are_compact():
    # Small-system frames: a handful of bytes, exactly as Section 7 intends.
    assert len(encode_frame(3, 5, 1, Ping(3))) == 5
    assert len(encode_frame(3, 5, 1, ForkRequest(3, 1))) == 6


@settings(max_examples=200, deadline=None)
@given(envelopes(), st.none() | contexts)
def test_frame_wire_bytes_matches_encoded_length(envelope, context):
    """The allocation-free size calculator agrees with the real encoder
    byte-for-byte (the loopback fast path accounts sizes through it)."""
    src, dst, seq, message = envelope
    frame = encode_frame(src, dst, seq, message, context)
    assert frame_wire_bytes(src, dst, seq, message, context) == len(frame)


# ----------------------------------------------------------------------
# Malformed input
# ----------------------------------------------------------------------
def test_encode_rejects_mismatched_sender():
    with pytest.raises(WireCodecError):
        encode_message(1, 2, 3, Ping(9))


def test_encode_rejects_unknown_type():
    with pytest.raises(WireCodecError):
        encode_message(1, 2, 3, object())


def test_decode_rejects_unknown_tag():
    with pytest.raises(WireCodecError):
        decode_message(bytes([0x7F, 1, 2, 3]))


def test_decode_rejects_truncated_payload():
    payload = encode_message(1, 2, 3, Heartbeat(sent_at=0.25))
    with pytest.raises(WireCodecError):
        decode_message(payload[:-1])


def test_decode_rejects_trailing_bytes():
    payload = encode_message(1, 2, 3, Ping(1))
    with pytest.raises(WireCodecError):
        decode_message(payload + b"\x00")


def test_decoder_rejects_oversized_length_prefix():
    decoder = FrameDecoder()
    with pytest.raises(WireCodecError):
        decoder.feed(encode_frame(0, 0, 0, Ping(0)) + b"\xff\xff\x7f")


def test_encode_rejects_oversized_resource_name():
    with pytest.raises(WireCodecError):
        encode_message(1, 0, 1, LeaseRequest(1, "r" * (MAX_STRING_BYTES + 1), 100))


def test_decode_rejects_truncated_lease_string():
    payload = encode_message(1, 0, 1, LeaseRequest(1, "orders", 100))
    # Chop inside the resource's UTF-8 bytes: the string length prefix now
    # promises more bytes than the payload carries.
    with pytest.raises(WireCodecError):
        decode_message(payload[:6])


def test_lease_round_trip_unicode_resource():
    message = LeaseRequest(1048576, "café/α", 500)
    frame = encode_frame(1048576, 0, 1, message)
    assert decode_frame(frame) == (1048576, 0, 1, message)
