"""Unit tests for the distributed daemon layered on dining."""


from repro.core import DistributedDaemon, scripted_detector
from repro.graphs import grid, ring
from repro.sim.crash import CrashPlan
from repro.stabilization import DijkstraTokenRing, GreedyRecoloring
from repro.trace.events import ProtocolStep, TransientFault


def ring_daemon(n=5, *, initial=None, seed=1, **kwargs):
    protocol = DijkstraTokenRing(n, initial=initial)
    kwargs.setdefault("detector", scripted_detector())
    return DistributedDaemon(protocol.graph, protocol, seed=seed, **kwargs), protocol


class TestScheduling:
    def test_steps_execute_inside_eating(self):
        daemon, protocol = ring_daemon(initial=[2, 0, 0, 0, 0])
        daemon.run(until=60.0)
        assert daemon.steps_executed > 0
        steps = daemon.table.trace.of_type(ProtocolStep)
        assert steps
        eaters = {pid for pid in range(5)}
        assert {s.pid for s in steps} <= eaters

    def test_every_process_scheduled_repeatedly(self):
        daemon, _ = ring_daemon()
        daemon.run(until=100.0)
        meals = daemon.table.eat_counts()
        assert all(meals.get(pid, 0) >= 3 for pid in range(5))

    def test_noop_steps_not_counted(self):
        # From the legitimate initial state, only the token holder acts.
        daemon, protocol = ring_daemon(initial=[0, 0, 0, 0, 0])
        daemon.run(until=30.0)
        assert daemon.steps_executed == len(daemon.table.trace.of_type(ProtocolStep))


class TestConvergence:
    def test_token_ring_converges_from_corruption(self):
        daemon, protocol = ring_daemon(initial=[3, 1, 4, 1, 5])
        daemon.run(until=200.0)
        assert daemon.converged()
        assert len(protocol.token_holders()) == 1
        assert daemon.convergence_time() is not None

    def test_convergence_time_none_while_illegitimate(self):
        daemon, protocol = ring_daemon(initial=[3, 1, 4, 1, 5])
        # Before running, multiple tokens exist.
        assert not daemon.converged() or daemon.convergence_time() is not None
        if not daemon.converged():
            assert daemon.convergence_time() is None

    def test_injected_fault_then_reconverges(self):
        daemon, protocol = ring_daemon(initial=[0, 0, 0, 0, 0])
        daemon.run(until=50.0)
        daemon.table.sim.schedule_at(50.5, lambda: daemon.inject_fault(2))
        daemon.run(until=200.0)
        assert daemon.converged()
        faults = daemon.table.trace.of_type(TransientFault)
        assert len(faults) == 1
        assert faults[0].pid == 2

    def test_corrupt_register_targets_value(self):
        graph = grid(2, 3)
        protocol = GreedyRecoloring(graph, initial={pid: pid % 2 for pid in graph.nodes})
        daemon = DistributedDaemon(graph, protocol, seed=2, detector=scripted_detector())
        daemon.run(until=20.0)
        neighbor = graph.neighbors(0)[0]
        daemon.table.sim.schedule_at(
            21.0, lambda: daemon.corrupt_register(0, protocol.read(neighbor))
        )
        daemon.run(until=22.0)
        recorded = daemon.table.trace.of_type(TransientFault)
        assert any("targeted" in fault.detail for fault in recorded)
        daemon.run(until=120.0)
        assert daemon.converged()


class TestViolationModel:
    def test_sharing_violation_counts_and_corrupts(self):
        # Force overlap: both diners of an edge suspect each other during
        # the mistake window, so they eat together and the later one's
        # step becomes a transient fault.
        from repro.detectors.scripted import MistakeInterval

        graph = ring(5)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=3,
            detector=scripted_detector(
                convergence_time=30.0,
                mistakes=[
                    MistakeInterval(0, 1, 1.0, 25.0),
                    MistakeInterval(1, 0, 1.0, 25.0),
                ],
            ),
            step_time=5.0,  # long critical sections maximize overlap
        )
        daemon.run(until=30.0)
        assert daemon.sharing_violations > 0
        assert daemon.table.trace.of_type(TransientFault)

    def test_fault_on_violation_disabled(self):
        from repro.detectors.scripted import MistakeInterval

        graph = ring(5)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=3,
            detector=scripted_detector(
                convergence_time=30.0,
                mistakes=[
                    MistakeInterval(0, 1, 1.0, 25.0),
                    MistakeInterval(1, 0, 1.0, 25.0),
                ],
            ),
            step_time=5.0,
            fault_on_violation=False,
        )
        daemon.run(until=30.0)
        assert daemon.sharing_violations == 0
        assert not daemon.table.trace.of_type(TransientFault)

    def test_violations_stop_after_convergence(self):
        daemon, _ = ring_daemon(
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True)
        )
        daemon.run(until=200.0)
        early = daemon.sharing_violations
        daemon.run(until=400.0)
        assert daemon.sharing_violations == early


class TestLivePids:
    def test_live_pids_shrink_with_crashes(self):
        protocol = GreedyRecoloring(ring(5))
        daemon = DistributedDaemon(
            ring(5),
            protocol,
            seed=1,
            detector=scripted_detector(),
            crash_plan=CrashPlan.scripted({2: 10.0}),
        )
        assert sorted(daemon.live_pids()) == [0, 1, 2, 3, 4]
        daemon.run(until=20.0)
        assert sorted(daemon.live_pids()) == [0, 1, 3, 4]
