"""Action-level unit tests for Algorithm 1.

Each test builds a tiny dining instance with a scripted workload and fixed
unit latency, runs to a precise virtual time, and asserts the local
variables and message flows the pseudocode prescribes.  Timeline notation
in comments: one hop = 1.0 time units.
"""

import pytest

from repro.core import DiningTable, ScriptedWorkload, scripted_detector
from repro.core.messages import Ping
from repro.detectors.scripted import MistakeInterval
from repro.graphs import path, topologies
from repro.sim.crash import CrashPlan

# path(2) with 1 as the higher color: fork starts at 1, token at 0.
PAIR_COLORING = {0: 0, 1: 1}


def pair_table(*, think=None, eat=None, detector=None, crash_plan=None, seed=1):
    workload = ScriptedWorkload(think or {}, eat=eat)
    return DiningTable(
        path(2),
        seed=seed,
        coloring=PAIR_COLORING,
        workload=workload,
        detector=detector or scripted_detector(),
        crash_plan=crash_plan,
    )


class TestInitialPlacement:
    def test_fork_at_higher_color_token_at_lower(self):
        table = pair_table()
        assert table.diners[1].holds_fork(0)
        assert not table.diners[1].holds_token(0)
        assert table.diners[0].holds_token(1)
        assert not table.diners[0].holds_fork(1)

    def test_all_ping_ack_vars_start_false(self):
        table = pair_table()
        for diner in table.diners.values():
            for _, link in diner._links_in_order():
                assert not (link.pinged or link.ack or link.deferred or link.replied)

    def test_everyone_starts_thinking_outside(self):
        table = pair_table()
        for diner in table.diners.values():
            assert diner.is_thinking
            assert not diner.inside


class TestSoloHungrySession:
    """Only diner 0 gets hungry; diner 1 thinks throughout."""

    def test_full_message_sequence(self):
        # t=1: 0 hungry, pings.  t=2: 1 acks (thinking).  t=3: 0 enters,
        # requests fork.  t=4: 1 grants.  t=5: 0 eats.  t=6: 0 exits.
        table = pair_table(think={0: [1.0]})
        table.run(until=10.0)
        assert table.message_stats.by_type == {
            "Ping": 1,
            "Ack": 1,
            "ForkRequest": 1,
            "Fork": 1,
        }
        assert table.eat_counts() == {0: 1}

    def test_action2_sets_pinged(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=1.5)
        assert table.diners[0].links[1].pinged
        assert table.diners[0].is_hungry

    def test_action3_thinking_neighbor_acks_without_replied(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=2.5)
        # 1 acked while thinking, so its replied flag stays false.
        assert not table.diners[1].links[0].replied
        assert not table.diners[1].links[0].deferred

    def test_action5_enters_and_resets(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=3.5)
        diner = table.diners[0]
        assert diner.inside
        assert not diner.links[1].ack  # reset on entry
        assert not diner.links[1].replied

    def test_action6_spends_token(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=3.5)
        assert not table.diners[0].holds_token(1)

    def test_action7_outside_grants_immediately(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=4.5)
        assert not table.diners[1].holds_fork(0)  # granted
        assert table.diners[1].holds_token(0)  # token received with request

    def test_action9_eats_with_all_forks(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=5.5)
        assert table.diners[0].is_eating
        assert table.diners[0].holds_fork(1)

    def test_action10_exits_to_thinking_outside(self):
        table = pair_table(think={0: [1.0]})
        table.run(until=7.0)
        diner = table.diners[0]
        assert diner.is_thinking
        assert not diner.inside
        # Fork stays with the last eater (no deferred request to honor).
        assert diner.holds_fork(1)


class TestContention:
    """Both diners hungry at t=1: priority resolves, doorway shares."""

    def test_higher_color_eats_first_then_lower(self):
        table = pair_table(think={0: [1.0], 1: [1.0]})
        table.run(until=20.0)
        starts_1 = [c.time for c in table.trace.phase_changes(1) if c.new_phase == "eating"]
        starts_0 = [c.time for c in table.trace.phase_changes(0) if c.new_phase == "eating"]
        assert len(starts_1) == 1 and len(starts_0) == 1
        assert starts_1[0] < starts_0[0]

    def test_no_exclusion_violation(self):
        table = pair_table(think={0: [1.0], 1: [1.0]})
        table.run(until=20.0)
        assert table.violations() == []

    def test_both_enter_doorway_simultaneously(self):
        # Simultaneous doorway entry is explicitly legal (Section 3).
        table = pair_table(think={0: [1.0], 1: [1.0]})
        table.run(until=3.5)
        assert table.diners[0].inside
        assert table.diners[1].inside

    def test_replied_set_when_hungry_acks(self):
        table = pair_table(think={0: [1.0], 1: [1.0]})
        table.run(until=2.5)
        # Each acked the other while hungry and outside.
        assert table.diners[0].links[1].replied
        assert table.diners[1].links[0].replied

    def test_eating_defers_fork_request(self):
        # Give 1 a long meal (t=3..5.5) so 0's request (arrives t=4) is
        # observably deferred as token∧fork.
        table = pair_table(think={0: [1.0], 1: [1.0]}, eat={1: [2.5]})
        table.run(until=4.5)
        diner1 = table.diners[1]
        assert diner1.is_eating
        assert diner1.holds_token(0)
        assert diner1.holds_fork(0)

    def test_exit_releases_deferred_fork(self):
        table = pair_table(think={0: [1.0], 1: [1.0]}, eat={1: [2.5]})
        table.run(until=7.0)
        # 1 exits at t=5.5 sending the deferred fork; 0 eats at t=6.5.
        assert not table.diners[1].holds_fork(0)
        assert table.diners[0].is_eating


class TestPingDeferral:
    def test_ping_deferred_while_inside_and_granted_on_exit(self):
        # 1 becomes hungry late, while 0 is inside/eating; 0 defers the
        # ack until its exit (Action 3 then Action 10).
        table = pair_table(think={0: [1.0], 1: [3.5]}, eat={0: [4.0]})
        table.run(until=6.0)
        # 0 eats t=5..9; 1's ping lands ~5.5 while 0 is inside.
        diner0 = table.diners[0]
        assert diner0.is_eating
        assert diner0.links[1].deferred
        table.run(until=12.0)
        assert not diner0.links[1].deferred  # granted at exit
        assert table.eat_counts().get(1) == 1  # 1 eventually ate


class TestSuspicionSubstitution:
    def test_crashed_fork_holder_does_not_block(self):
        # 1 (fork holder) crashes before anything; 0 must eat via suspicion.
        table = pair_table(
            think={0: [1.0]},
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({1: 0.5}),
        )
        table.run(until=10.0)
        assert table.eat_counts().get(0) == 1
        # It never held the fork: the meal was authorized by suspicion.
        assert not table.diners[0].holds_fork(1)

    def test_quiescence_after_crash(self):
        table = pair_table(
            think={0: [1.0, 0.5, 0.5, 0.5]},
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({1: 0.5}),
        )
        table.run(until=60.0)
        # Exactly one ping and one fork request can chase the dead
        # neighbor; both flags then pin and nothing further is sent.
        sends = table.quiescence.sends_to(1, layer="dining")
        assert len(sends) == 2
        kinds = sorted(s.message_type for s in sends)
        assert kinds == ["ForkRequest", "Ping"]

    def test_suspicion_cascades_straight_to_eating(self):
        # With its only neighbor suspected, a hungry diner passes Action 5
        # and Action 9 in the same instant — suspicion substitutes for
        # both the ack and the fork.
        table = pair_table(
            think={0: [1.0]},
            detector=scripted_detector(
                convergence_time=5.0,
                mistakes=[MistakeInterval(0, 1, 1.5, 4.0)],
            ),
        )
        table.run(until=1.6)
        assert table.diners[0].is_eating
        assert not table.diners[0].holds_fork(1)

    def test_ack_received_while_inside_is_discarded(self):
        # Action 4's guard: an ack only registers while hungry AND outside.
        # Drive the handler directly with the diner inside the doorway.
        table = pair_table(think={0: [1.0]})
        table.run(until=1.5)  # 0 is hungry, outside, ping pending
        diner0 = table.diners[0]
        assert diner0.links[1].pinged
        diner0.inside = True  # as if entered via suspicion
        diner0._on_ack(1)
        assert not diner0.links[1].ack
        assert not diner0.links[1].pinged  # the pending-ping flag clears

    def test_ack_received_while_thinking_is_discarded(self):
        table = pair_table()
        table.run(until=0.5)
        diner0 = table.diners[0]
        assert diner0.is_thinking
        diner0._on_ack(1)
        assert not diner0.links[1].ack

    def test_mutual_suspicion_allows_simultaneous_eating(self):
        # Both suspect each other pre-convergence: both eat at once — the
        # finitely-many-mistakes regime Theorem 1 tolerates.
        table = pair_table(
            think={0: [1.0], 1: [1.0]},
            eat={0: [5.0], 1: [5.0]},
            detector=scripted_detector(
                convergence_time=10.0,
                mistakes=[
                    MistakeInterval(0, 1, 1.2, 8.0),
                    MistakeInterval(1, 0, 1.2, 8.0),
                ],
            ),
        )
        table.run(until=4.0)
        assert table.diners[0].is_eating
        assert table.diners[1].is_eating
        table.run(until=40.0)
        violations = table.violations()
        assert len(violations) == 1
        assert not table.violations_after(10.0)


class TestMessageValidation:
    def test_message_from_non_neighbor_rejected(self):
        table = DiningTable(topologies.path(3), seed=1, detector=scripted_detector())
        with pytest.raises(Exception):
            table.diners[0].on_message(2, Ping(2))  # 0-2 not neighbors

    def test_unknown_message_type_rejected(self):
        table = pair_table()
        with pytest.raises(Exception):
            table.diners[0].on_message(1, "garbage")


class TestIsolatedDiner:
    """A diner with no conflicts may always eat (degree-0 vertex)."""

    def test_isolated_node_eats_without_messages(self):
        from repro.graphs import ConflictGraph
        from repro.core import AlwaysHungry, DiningTable

        graph = ConflictGraph([0, 1, 2], [(0, 1)])  # 2 is isolated
        table = DiningTable(
            graph,
            seed=1,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        )
        table.run(until=60.0)
        meals = table.eat_counts()
        # The isolated diner eats back-to-back, unconstrained.
        assert meals[2] > meals[0]
        assert meals[2] > 50
        assert table.violations() == []


class TestCrashMidPhases:
    def test_crash_while_inside_doorway_blocks_nobody(self):
        # 0 enters the doorway then crashes before eating; 1 must still
        # dine via suspicion (phase-1 AND phase-2 release).
        table = pair_table(
            think={0: [1.0], 1: [4.0, 0.5, 0.5]},
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({0: 3.2}),  # just after entering
        )
        table.run(until=60.0)
        assert table.diners[0].crashed
        assert table.eat_counts().get(1, 0) >= 3
        assert table.starving_correct(patience=20.0) == []

    def test_simultaneous_crash_of_both_endpoints(self):
        table = pair_table(
            think={0: [1.0], 1: [1.0]},
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({0: 2.0, 1: 2.0}),
        )
        table.run(until=30.0)  # nothing explodes; trace records both
        assert table.diners[0].crashed and table.diners[1].crashed
        assert table.correct_pids == ()

    def test_exit_timer_suppressed_by_crash(self):
        # Crash mid-meal: the diner must stay frozen in 'eating' (no exit
        # transition is recorded after the crash).
        table = pair_table(
            think={0: [1.0]},
            eat={0: [10.0]},
            crash_plan=CrashPlan.scripted({0: 7.0}),
        )
        table.run(until=40.0)
        changes = table.trace.phase_changes(0)
        assert changes[-1].new_phase == "eating"
        assert table.diners[0].crashed
