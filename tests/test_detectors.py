"""Unit tests for failure-detector modules and oracles."""

import pytest

from repro.detectors import (
    DetectorModule,
    MistakeInterval,
    NullDetector,
    PerfectDetector,
    ScriptedDetector,
)
from repro.errors import ConfigurationError
from repro.graphs import path, ring
from repro.sim.crash import CrashPlan
from repro.sim.kernel import Simulator


class TestDetectorModule:
    def test_initially_suspects_nobody(self):
        module = DetectorModule(0, [1, 2])
        assert not module.suspects(1)
        assert module.suspected_neighbors() == frozenset()

    def test_set_and_clear_suspicion(self):
        module = DetectorModule(0, [1])
        module.set_suspicion(1, True)
        assert module.suspects(1)
        module.set_suspicion(1, False)
        assert not module.suspects(1)

    def test_scope_enforced_on_query(self):
        module = DetectorModule(0, [1])
        with pytest.raises(ConfigurationError):
            module.suspects(5)

    def test_scope_enforced_on_mutation(self):
        module = DetectorModule(0, [1])
        with pytest.raises(ConfigurationError):
            module.set_suspicion(5, True)

    def test_listeners_notified_on_change_only(self):
        module = DetectorModule(0, [1])
        events = []
        module.subscribe(lambda pid, s: events.append((pid, s)))
        module.set_suspicion(1, True)
        module.set_suspicion(1, True)  # no-op
        module.set_suspicion(1, False)
        assert events == [(1, True), (1, False)]

    def test_snapshot_is_frozen(self):
        module = DetectorModule(0, [1, 2])
        module.set_suspicion(1, True)
        snap = module.suspected_neighbors()
        module.set_suspicion(2, True)
        assert snap == frozenset({1})


class TestNullDetector:
    def test_never_suspects(self):
        detector = NullDetector(ring(4))
        for pid in range(4):
            assert detector.module_for(pid).suspected_neighbors() == frozenset()

    def test_no_agent(self):
        assert NullDetector(ring(4)).agent_for(0) is None

    def test_unknown_module_raises(self):
        with pytest.raises(ConfigurationError):
            NullDetector(ring(4)).module_for(99)


class TestScriptedCompleteness:
    def test_crash_eventually_suspected_by_all_neighbors(self):
        sim = Simulator()
        graph = ring(5)
        plan = CrashPlan.scripted({2: 10.0})
        detector = ScriptedDetector(sim, graph, plan, detection_delay=2.0)
        detector.install()
        sim.run(until=50.0)
        assert detector.module_for(1).suspects(2)
        assert detector.module_for(3).suspects(2)

    def test_suspicion_starts_at_detection_time(self):
        sim = Simulator()
        graph = ring(5)
        plan = CrashPlan.scripted({2: 10.0})
        detector = ScriptedDetector(sim, graph, plan, detection_delay=2.0)
        detector.install()
        sim.run(until=11.0)
        assert not detector.module_for(1).suspects(2)
        sim.run(until=12.0)
        assert detector.module_for(1).suspects(2)

    def test_suspicion_is_permanent(self):
        sim = Simulator()
        graph = ring(5)
        plan = CrashPlan.scripted({2: 10.0})
        detector = ScriptedDetector(sim, graph, plan, detection_delay=1.0)
        detector.install()
        sim.run(until=1000.0)
        assert detector.module_for(1).suspects(2)

    def test_non_neighbors_never_told(self):
        sim = Simulator()
        graph = ring(5)  # 0 and 2 are not neighbors
        plan = CrashPlan.scripted({2: 10.0})
        detector = ScriptedDetector(sim, graph, plan, detection_delay=1.0)
        detector.install()
        sim.run(until=100.0)
        with pytest.raises(ConfigurationError):
            detector.module_for(0).suspects(2)


class TestScriptedAccuracy:
    def test_mistake_interval_applies_and_retracts(self):
        sim = Simulator()
        graph = path(2)
        detector = ScriptedDetector(
            sim,
            graph,
            CrashPlan.none(),
            convergence_time=20.0,
            mistakes=[MistakeInterval(0, 1, 5.0, 10.0)],
        )
        detector.install()
        sim.run(until=6.0)
        assert detector.module_for(0).suspects(1)
        sim.run(until=11.0)
        assert not detector.module_for(0).suspects(1)

    def test_mistake_must_end_by_convergence(self):
        sim = Simulator()
        graph = path(2)
        with pytest.raises(ConfigurationError):
            ScriptedDetector(
                sim,
                graph,
                CrashPlan.none(),
                convergence_time=8.0,
                mistakes=[MistakeInterval(0, 1, 5.0, 10.0)],
            )

    def test_mistake_out_of_scope_rejected(self):
        sim = Simulator()
        graph = ring(5)
        with pytest.raises(ConfigurationError):
            ScriptedDetector(
                sim,
                graph,
                CrashPlan.none(),
                convergence_time=20.0,
                mistakes=[MistakeInterval(0, 2, 1.0, 2.0)],  # not neighbors
            )

    def test_empty_or_inverted_interval_rejected(self):
        sim = Simulator()
        graph = path(2)
        with pytest.raises(ConfigurationError):
            ScriptedDetector(
                sim,
                graph,
                CrashPlan.none(),
                convergence_time=20.0,
                mistakes=[MistakeInterval(0, 1, 5.0, 5.0)],
            )

    def test_mistake_after_suspect_crash_rejected(self):
        sim = Simulator()
        graph = path(2)
        with pytest.raises(ConfigurationError):
            ScriptedDetector(
                sim,
                graph,
                CrashPlan.scripted({1: 3.0}),
                convergence_time=20.0,
                mistakes=[MistakeInterval(0, 1, 5.0, 8.0)],
            )

    def test_mistake_becomes_truth_if_suspect_crashes_mid_interval(self):
        # Observer wrongly suspects at 2.0; suspect actually crashes at 4.0;
        # the scheduled retraction at 8.0 must NOT clear the suspicion.
        sim = Simulator()
        graph = path(2)
        detector = ScriptedDetector(
            sim,
            graph,
            CrashPlan.scripted({1: 4.0}),
            convergence_time=20.0,
            detection_delay=100.0,  # completeness alone would be late
            mistakes=[MistakeInterval(0, 1, 2.0, 8.0)],
        )
        detector.install()
        sim.run(until=9.0)
        assert detector.module_for(0).suspects(1)

    def test_double_install_rejected(self):
        sim = Simulator()
        detector = ScriptedDetector(sim, path(2), CrashPlan.none())
        detector.install()
        with pytest.raises(ConfigurationError):
            detector.install()

    def test_accuracy_holds_after(self):
        sim = Simulator()
        detector = ScriptedDetector(
            sim,
            path(2),
            CrashPlan.none(),
            convergence_time=30.0,
            mistakes=[MistakeInterval(0, 1, 5.0, 12.0), MistakeInterval(1, 0, 3.0, 7.0)],
        )
        assert detector.accuracy_holds_after() == 12.0


class TestRandomMistakes:
    def test_all_mistakes_end_by_convergence(self):
        sim = Simulator(seed=8)
        detector = ScriptedDetector.with_random_mistakes(
            sim, ring(8), CrashPlan.none(), convergence_time=50.0, mistakes_per_edge=3.0
        )
        assert all(m.end <= 50.0 for m in detector.mistakes)
        assert detector.mistakes  # with 8 edges and rate 3, some exist

    def test_no_mistakes_when_convergence_zero(self):
        sim = Simulator(seed=8)
        detector = ScriptedDetector.with_random_mistakes(
            sim, ring(8), CrashPlan.none(), convergence_time=0.0
        )
        assert detector.mistakes == ()

    def test_deterministic_for_seed(self):
        a = ScriptedDetector.with_random_mistakes(
            Simulator(seed=4), ring(6), CrashPlan.none(), convergence_time=30.0
        )
        b = ScriptedDetector.with_random_mistakes(
            Simulator(seed=4), ring(6), CrashPlan.none(), convergence_time=30.0
        )
        assert a.mistakes == b.mistakes


class TestPerfectDetector:
    def test_no_mistakes_ever(self):
        sim = Simulator()
        detector = PerfectDetector(sim, ring(5), CrashPlan.scripted({1: 5.0}))
        assert detector.mistakes == ()
        assert detector.convergence_time == 0.0

    def test_detects_crashes(self):
        sim = Simulator()
        detector = PerfectDetector(sim, ring(5), CrashPlan.scripted({1: 5.0}), detection_delay=1.0)
        detector.install()
        sim.run(until=10.0)
        assert detector.module_for(0).suspects(1)
        assert detector.module_for(2).suspects(1)
        assert not detector.module_for(0).suspects(4)
