"""Reproducibility regressions: runs replay bit-for-bit from the seed.

Fingerprints digest event counts, traffic, meals, and violations; any
accidental nondeterminism (hash-order iteration, wall-clock use, shared
RNG state) breaks them immediately.
"""

import pytest

from repro.baselines import choy_singh_table, edge_reversal_table, fork_priority_table
from repro.core import AlwaysHungry, DiningTable, PoissonWorkload, heartbeat_detector, scripted_detector
from repro.drinking import RandomThirst, drinking_table
from repro.graphs import clique, grid, ring
from repro.sim.crash import CrashPlan
from repro.sim.latency import LogNormalLatency, PartialSynchronyLatency
from repro.sim.rng import RandomStreams


def fingerprint_of(build):
    table = build()
    table.run(until=150.0)
    return table.fingerprint()


class TestFingerprintStability:
    def test_dining_with_everything_on(self):
        def build():
            return DiningTable(
                ring(8),
                seed=42,
                detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
                crash_plan=CrashPlan.random(range(8), 2, (10.0, 60.0), RandomStreams(7)),
                workload=PoissonWorkload(),
                latency=LogNormalLatency(),
            )

        assert fingerprint_of(build) == fingerprint_of(build)

    def test_heartbeat_stack(self):
        def build():
            return DiningTable(
                ring(6),
                seed=9,
                detector=heartbeat_detector(initial_timeout=2.0),
                latency=PartialSynchronyLatency(gst=40.0),
                crash_plan=CrashPlan.scripted({2: 25.0}),
            )

        assert fingerprint_of(build) == fingerprint_of(build)

    def test_drinking(self):
        def build():
            return drinking_table(
                clique(6),
                seed=5,
                workload=RandomThirst(demand=0.4),
                detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            )

        assert fingerprint_of(build) == fingerprint_of(build)

    @pytest.mark.parametrize(
        "factory", [choy_singh_table, fork_priority_table, edge_reversal_table]
    )
    def test_baselines(self, factory):
        def build():
            return factory(
                ring(6),
                seed=3,
                workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
                crash_plan=CrashPlan.scripted({1: 30.0}),
            )

        assert fingerprint_of(build) == fingerprint_of(build)

    def test_different_seed_changes_fingerprint(self):
        def build(seed):
            return DiningTable(
                grid(3, 3),
                seed=seed,
                detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
                workload=PoissonWorkload(),
            )

        first = build(1)
        first.run(until=150.0)
        second = build(2)
        second.run(until=150.0)
        assert first.fingerprint() != second.fingerprint()

    def test_fingerprint_tracks_progress(self):
        table = DiningTable(ring(6), seed=1, detector=scripted_detector())
        table.run(until=50.0)
        early = table.fingerprint()
        table.run(until=100.0)
        assert table.fingerprint() != early


class TestReportGenerator:
    def test_markdown_table_shapes(self):
        from repro.experiments.report import _markdown_table

        rows = [{"a": 1, "b": 2.345}, {"a": None, "b": "x"}]
        text = _markdown_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.35 |" in text
        assert "| - | x |" in text
