"""Witness quality: an injected safety bug must be caught and localized.

A deliberately broken diner (Action 9 fires without holding the forks)
runs in an otherwise-correct ring.  The shared checks subsystem must
fail exactly the right property (◇WX safety), name the culprit edge,
and carry a usable first-violation witness — both online in the kernel
run and offline when the recorded trace is replayed through
``repro check``.
"""

import pytest

from repro.checks import WX_SAFETY, CheckConfig, load_events_path, replay
from repro.cli import main
from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.core.diner import DinerActor
from repro.core.state import DinerState
from repro.graphs import ring


class GreedyDiner(DinerActor):
    """Broken on purpose: eats the moment it is inside the doorway,
    without checking a single fork (the guard of Action 9 is gone)."""

    def _try_eat(self) -> bool:
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self._exit_timer = self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)
        return True


def _make_diner(pid, *args, **kwargs):
    cls = GreedyDiner if pid == 0 else DinerActor
    return cls(pid, *args, **kwargs)


@pytest.fixture(scope="module")
def broken_run(tmp_path_factory):
    """One buggy run: the finalized online verdict plus its trace file."""
    from repro.trace.serialize import dump_path

    table = DiningTable(
        ring(3),
        seed=11,
        detector=scripted_detector(),
        diner_factory=_make_diner,
        workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        strict_checks=False,  # record violations instead of raising
    )
    table.run(until=60.0)
    trace_path = str(tmp_path_factory.mktemp("witness") / "trace.jsonl")
    dump_path(table.trace, trace_path)
    return table.verdict(settle=0.0), trace_path


class TestOnlineWitness:
    def test_wx_safety_is_the_property_that_fails(self, broken_run):
        verdict, _ = broken_run
        assert not verdict.ok
        assert verdict.failed == [WX_SAFETY]

    def test_witness_names_the_culprit_edge(self, broken_run):
        verdict, _ = broken_run
        witness = verdict.property(WX_SAFETY).first_violation
        assert witness is not None
        # The greedy diner is 0; the overlap is on one of its ring edges.
        assert 0 in witness.subject
        assert witness.subject in ((0, 1), (0, 2))

    def test_witness_carries_the_event_index(self, broken_run):
        verdict, _ = broken_run
        witness = verdict.property(WX_SAFETY).first_violation
        assert witness.event_index is not None
        assert witness.event_index >= 0
        assert witness.time > 0.0

    def test_correct_diner_properties_still_pass(self, broken_run):
        verdict, _ = broken_run
        statuses = verdict.statuses()
        assert statuses["fork-uniqueness"] == "pass"
        assert statuses["diner-local"] == "pass"
        assert statuses["channel-bound"] == "pass"


class TestReplayWitness:
    def test_replay_reaches_the_same_judgement(self, broken_run):
        verdict, trace_path = broken_run
        replayed = replay(
            sorted(ring(3).edges),
            load_events_path(trace_path),
            CheckConfig(settle=0.0),
        )
        assert not replayed.ok
        assert replayed.failed == [WX_SAFETY]
        online = verdict.property(WX_SAFETY).first_violation
        offline = replayed.property(WX_SAFETY).first_violation
        # Same overlap: same edge, same instant (indexes differ because
        # the online stream also carried sends, delivers, and probes).
        assert offline.subject == online.subject
        assert offline.time == pytest.approx(online.time)
        assert offline.event_index is not None

    def test_repro_check_cli_flags_the_trace(self, broken_run, capsys):
        _, trace_path = broken_run
        code = main([
            "check", trace_path, "--topology", "ring", "--n", "3", "--settle", "0",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "checks: FAIL" in out
        assert "wx-safety" in out
        assert "first violation" in out

    def test_repro_check_cli_passes_without_settle(self, broken_run, capsys):
        # No --settle: overlaps are counted but never judged (the paper's
        # guarantee is eventual), so the same artifact exits clean.
        _, trace_path = broken_run
        code = main(["check", trace_path, "--topology", "ring", "--n", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overlap_windows_total" in out
