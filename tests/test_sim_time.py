"""Unit tests for virtual-time helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.time import (
    END_OF_TIME,
    START_OF_TIME,
    validate_duration,
    validate_instant,
)


class TestValidateInstant:
    def test_accepts_zero(self):
        assert validate_instant(0.0) == 0.0

    def test_accepts_positive(self):
        assert validate_instant(12.5) == 12.5

    def test_accepts_infinity_as_never(self):
        assert validate_instant(END_OF_TIME) == math.inf

    def test_coerces_int_to_float(self):
        value = validate_instant(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_instant(-0.001)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            validate_instant(float("nan"))

    def test_error_message_uses_name(self):
        with pytest.raises(ConfigurationError, match="deadline"):
            validate_instant(-1, name="deadline")


class TestValidateDuration:
    def test_accepts_zero_by_default(self):
        assert validate_duration(0.0) == 0.0

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(ConfigurationError):
            validate_duration(0.0, allow_zero=False)

    def test_accepts_positive_when_zero_disallowed(self):
        assert validate_duration(0.5, allow_zero=False) == 0.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_duration(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            validate_duration(float("nan"))


def test_start_of_time_is_zero():
    assert START_OF_TIME == 0.0


def test_end_of_time_sorts_after_everything():
    assert END_OF_TIME > 1e18
