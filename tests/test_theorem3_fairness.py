"""Integration tests for Theorem 3: eventual 2-bounded waiting.

After detector convergence (plus the service of the pre-convergence
backlog), no live process enters eating more than twice while any live
neighbor remains continuously hungry.
"""

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.latency import UniformLatency
from repro.sim.rng import RandomStreams

SQUEEZE = {0: 1, 1: 0, 2: 2}


def squeeze_table(seed=5, convergence=40.0, **kwargs):
    kwargs.setdefault("workload", AlwaysHungry(eat_time=1.0, think_time=0.01))
    kwargs.setdefault("latency", UniformLatency(0.2, 0.6))
    return DiningTable(
        topologies.path(3),
        seed=seed,
        coloring=SQUEEZE,
        detector=scripted_detector(
            convergence_time=convergence, random_mistakes=convergence > 0
        ),
        **kwargs,
    )


class TestTwoBoundHolds:
    @pytest.mark.parametrize("seed", [1, 2, 5, 9])
    def test_squeeze_victim_overtaken_at_most_twice(self, seed):
        table = squeeze_table(seed=seed).run(until=800.0)
        assert table.max_overtaking(after=60.0) <= 2

    @pytest.mark.parametrize("topology", ["ring", "clique", "grid"])
    def test_bound_across_topologies(self, topology):
        graph = topologies.by_name(topology, 9)
        table = DiningTable(
            graph,
            seed=3,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        )
        table.run(until=600.0)
        assert table.max_overtaking(after=80.0) <= 2

    def test_bound_holds_with_crashes(self):
        graph = topologies.ring(8)
        crash_plan = CrashPlan.random(range(8), 2, (20.0, 60.0), RandomStreams(4))
        table = DiningTable(
            graph,
            seed=4,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            latency=UniformLatency(0.2, 0.6),
        )
        table.run(until=600.0)
        cutoff = max(80.0, crash_plan.last_crash_time + 10.0)
        assert table.max_overtaking(after=cutoff) <= 2


class TestBoundIsTight:
    def test_two_overtakes_actually_occur(self):
        # k=2 (not 1): the in-transit ack from the previous session admits
        # a second doorway entry.  Observed in long contended runs.
        table = squeeze_table(seed=5).run(until=800.0)
        assert table.max_overtaking(after=60.0) == 2


class TestVictimStillProgresses:
    def test_victim_meal_share_is_bounded_fraction(self):
        table = squeeze_table(seed=5).run(until=800.0)
        meals = table.eat_counts()
        # With 2-bounded waiting, each rival eats at most ~2 meals per
        # victim meal (plus slack for session boundaries).
        assert meals[0] <= 2 * meals[1] + 6
        assert meals[2] <= 2 * meals[1] + 6


class TestPreConvergenceIsUnconstrained:
    def test_overtaking_may_exceed_two_before_convergence(self):
        # Not asserted as must-exceed (schedule dependent), but the
        # measurement from t=0 must dominate the post-convergence one.
        table = squeeze_table(seed=5, convergence=120.0).run(until=800.0)
        assert table.max_overtaking(after=0.0) >= table.max_overtaking(after=160.0)


class TestAckThrottleIsTheMechanism:
    """The long-meal adversary isolates the paper's modification."""

    def test_throttle_pins_overtaking_ablation_does_not(self):
        from repro.experiments.e3_fairness import run_throttle_ablation

        rows = {r["algorithm"]: r for r in run_throttle_ablation(horizon=400.0)}
        assert rows["algorithm-1"]["max_overtaking"] == 2
        assert rows["no-ack-throttle"]["max_overtaking"] > 10
        # Both remain wait-free: the victim is eventually served.
        assert rows["algorithm-1"]["victim_meals"] >= 1
        assert rows["no-ack-throttle"]["victim_meals"] >= 1

    def test_ablation_overtaking_scales_with_the_long_meal(self):
        from repro.experiments.e3_fairness import run_throttle_ablation

        short = {r["algorithm"]: r for r in run_throttle_ablation(horizon=300.0, long_meal=100.0)}
        long = {r["algorithm"]: r for r in run_throttle_ablation(horizon=500.0, long_meal=300.0)}
        assert long["no-ack-throttle"]["max_overtaking"] > short["no-ack-throttle"]["max_overtaking"]
        # Algorithm 1 is indifferent to the adversary's meal length.
        assert long["algorithm-1"]["max_overtaking"] == 2
        assert short["algorithm-1"]["max_overtaking"] == 2
