"""Unit tests for the hosted self-stabilizing protocols."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.graphs import path, random_graph, ring
from repro.stabilization import (
    BACK_OFF,
    DijkstraTokenRing,
    GreedyRecoloring,
    MARRY,
    MaximalMatching,
    PROPOSE,
    TransientFaultPlan,
    WIDOW,
)


def run_to_quiescence(protocol, pids, max_rounds=10_000, order=None):
    """Central-daemon execution: fire enabled actions until none remain."""
    rng = random.Random(0)
    pids = list(pids)
    for _ in range(max_rounds):
        enabled = [pid for pid in pids if protocol.enabled_actions(pid)]
        if not enabled:
            return True
        protocol.execute(rng.choice(enabled))
    return False


class TestTokenRing:
    def test_legitimate_initial_state_has_one_token(self):
        protocol = DijkstraTokenRing(5)
        assert protocol.token_holders() == [0]
        assert protocol.legitimate(range(5))

    def test_token_circulates(self):
        protocol = DijkstraTokenRing(4)
        holders = []
        for _ in range(8):
            holder = protocol.token_holders()[0]
            holders.append(holder)
            protocol.execute(holder)
        # The token visits every process cyclically.
        assert holders[:5] == [0, 1, 2, 3, 0]

    def test_converges_from_arbitrary_state(self):
        protocol = DijkstraTokenRing(6, initial=[5, 2, 2, 6, 1, 0])
        assert run_to_quiescence(protocol, range(6)) is False  # never quiesces
        # "Quiescence" is the wrong notion here (the token moves forever);
        # check legitimacy instead after fair executions.
        protocol = DijkstraTokenRing(6, initial=[5, 2, 2, 6, 1, 0])
        rng = random.Random(1)
        for _ in range(500):
            enabled = protocol.token_holders()
            protocol.execute(rng.choice(enabled))
        assert protocol.legitimate(range(6))

    def test_at_least_one_token_always(self):
        # Dijkstra's invariant: the ring can never be token-free.
        protocol = DijkstraTokenRing(5, initial=[3, 3, 3, 3, 3])
        rng = random.Random(2)
        for _ in range(200):
            holders = protocol.token_holders()
            assert holders, "token ring lost all tokens"
            protocol.execute(rng.choice(holders))

    def test_execute_disabled_returns_none(self):
        protocol = DijkstraTokenRing(4)
        assert protocol.execute(2) is None  # only 0 is enabled initially

    def test_corrupt_changes_counter(self):
        protocol = DijkstraTokenRing(4)
        detail = protocol.corrupt(1, random.Random(3))
        assert "counter[1]" in detail

    def test_k_must_exceed_n(self):
        with pytest.raises(ConfigurationError):
            DijkstraTokenRing(5, k=5)

    def test_initial_length_checked(self):
        with pytest.raises(ConfigurationError):
            DijkstraTokenRing(5, initial=[0, 0])


class TestGreedyRecoloring:
    def test_all_zero_state_fully_conflicted(self):
        graph = ring(5)
        protocol = GreedyRecoloring(graph)
        assert len(protocol.conflict_edges(graph.nodes)) == 5
        assert not protocol.legitimate(graph.nodes)

    def test_converges_under_central_daemon(self):
        graph = random_graph(12, 0.4, seed=3)
        protocol = GreedyRecoloring(graph)
        assert run_to_quiescence(protocol, graph.nodes)
        assert protocol.legitimate(graph.nodes)

    def test_each_step_clears_local_conflicts(self):
        graph = path(3)
        protocol = GreedyRecoloring(graph)
        protocol.execute(1)
        own = protocol.read(1)
        assert all(protocol.read(nbr) != own for nbr in graph.neighbors(1))

    def test_respects_frozen_crashed_colors(self):
        graph = path(3)
        protocol = GreedyRecoloring(graph)  # all zeros
        # Pretend 0 crashed (frozen at color 0); only 1 and 2 may act.
        assert run_to_quiescence(protocol, [1, 2])
        assert protocol.legitimate([1, 2])
        assert protocol.read(0) == 0  # untouched

    def test_crashed_only_edges_ignored_by_legitimacy(self):
        graph = path(3)
        protocol = GreedyRecoloring(graph)
        # Edge (0,1) both crashed: conflict there is not counted.
        assert protocol.conflict_edges([2]) == [(1, 2)]

    def test_palette_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedyRecoloring(ring(5), palette_size=1)

    def test_corrupt_stays_in_palette(self):
        graph = ring(5)
        protocol = GreedyRecoloring(graph)
        rng = random.Random(4)
        for _ in range(50):
            protocol.corrupt(2, rng)
            assert 0 <= protocol.read(2) < protocol.palette_size


class TestMaximalMatching:
    def test_converges_to_maximal_matching(self):
        graph = random_graph(10, 0.4, seed=5)
        protocol = MaximalMatching(graph)
        assert run_to_quiescence(protocol, graph.nodes)
        pairs = protocol.matched_pairs()
        matched = {pid for pair in pairs for pid in pair}
        # Maximality: no edge joins two unmatched nodes.
        for a, b in graph.edges:
            assert a in matched or b in matched

    def test_marry_prefers_smallest_suitor(self):
        graph = path(3)
        protocol = MaximalMatching(graph, initial={0: 1, 2: 1})
        assert protocol.enabled_actions(1) == [MARRY]
        protocol.execute(1)
        assert protocol.read(1) == 0

    def test_propose_targets_unengaged(self):
        graph = path(2)
        protocol = MaximalMatching(graph)
        assert protocol.enabled_actions(0) == [PROPOSE]
        protocol.execute(0)
        assert protocol.read(0) == 1

    def test_back_off_when_partner_elsewhere(self):
        graph = ring(3)
        protocol = MaximalMatching(graph, initial={0: 1, 1: 2, 2: 1})
        # 0 points at 1, but 1 points at 2: back off.
        assert BACK_OFF in protocol.enabled_actions(0)
        protocol.execute(0)
        assert protocol.read(0) is None

    def test_corrupt_initial_pointer_outside_neighbors_clamped(self):
        graph = path(3)
        protocol = MaximalMatching(graph, initial={0: 2})  # 2 not a neighbor of 0
        assert protocol.read(0) is None

    def test_mutual_pair_is_stable(self):
        graph = path(2)
        protocol = MaximalMatching(graph, initial={0: 1, 1: 0})
        assert protocol.enabled_actions(0) == []
        assert protocol.enabled_actions(1) == []
        assert protocol.legitimate(graph.nodes)


class TestMatchingWidowRule:
    def test_widow_enabled_when_partner_suspected(self):
        graph = path(2)
        suspected = {0: frozenset({1}), 1: frozenset()}
        protocol = MaximalMatching(graph, initial={0: 1}, suspector=lambda p: suspected[p])
        assert WIDOW in protocol.enabled_actions(0)
        protocol.execute(0)
        assert protocol.read(0) is None

    def test_suspected_neighbors_not_courted(self):
        graph = path(3)
        suspected = {1: frozenset({0}), 0: frozenset(), 2: frozenset()}
        protocol = MaximalMatching(graph, suspector=lambda p: suspected.get(p, frozenset()))
        protocol.execute(1)  # proposes, must skip suspected 0
        assert protocol.read(1) == 2

    def test_live_subgraph_reaches_maximality_with_frozen_crash(self):
        graph = ring(5)
        crashed = 2
        def suspected(p):
            return frozenset({crashed}) if crashed in graph.neighbors(p) else frozenset()
        protocol = MaximalMatching(graph, initial={1: crashed}, suspector=suspected)
        live = [pid for pid in graph.nodes if pid != crashed]
        assert run_to_quiescence(protocol, live)
        assert protocol.legitimate(live)
        assert protocol.read(1) != crashed  # widowed away from the dead partner


class TestTransientFaultPlan:
    def test_scripted_bursts_sorted(self):
        plan = TransientFaultPlan.scripted([(5.0, [1]), (2.0, [0, 3])])
        assert [burst.time for burst in plan.bursts] == [2.0, 5.0]
        assert plan.last_burst_time == 5.0

    def test_empty_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientFaultPlan.scripted([(1.0, [])])

    def test_empty_plan(self):
        plan = TransientFaultPlan([])
        assert plan.last_burst_time == 0.0
