"""Deterministic construction of the Section 7 channel-capacity extreme.

The paper bounds in-transit dining messages per edge at 4: the unique
fork, the unique token (riding a fork request), and one outstanding
ping-or-ack per direction.  Randomized sweeps rarely exceed 3; this test
builds a schedule that provably puts exactly four messages in flight on
one edge at once — and, because the online :class:`ChannelBoundChecker`
is armed at 4 throughout, simultaneously shows the bound is *tight*: the
run with four in transit passes, and nothing ever reaches five.

The construction (colors {0:0, 1:1}, so the fork starts at 1):

1. diner 1 eats first (it has the fork) while diner 0's ping arrives —
   deferred (1 is inside);
2. diner 0 enters the doorway via a scripted false suspicion, spends its
   token on a fork request, and starts a long suspicion-authorized meal;
   the request reaches 1 mid-meal — deferred as token∧fork;
3. at 1's exit the deferred **Fork** and deferred **Ack** depart on slow
   channels; 1 immediately re-hungers and sends a fresh **Ping**;
4. a second scripted suspicion lets 1 re-enter the doorway and spend the
   (returned) token on a **ForkRequest** — four dining messages now share
   the 1→0 channel.
"""

from repro.core import DiningTable, ScriptedWorkload, scripted_detector
from repro.detectors.scripted import MistakeInterval
from repro.graphs import path
from repro.sim.latency import ScriptedLatency

SLOW = 33.0


def build_extreme_table() -> DiningTable:
    workload = ScriptedWorkload(
        think={0: [2.1], 1: [0.05, 0.05]},
        eat={0: [30.0], 1: [5.0, 1.0]},
    )
    latency = ScriptedLatency(
        {
            # 1→0 sends, in order: initial Ping, then the four-in-flight
            # volley: deferred Fork, deferred Ack, fresh Ping, ForkRequest.
            (1, 0): [1.0, SLOW, SLOW, SLOW, SLOW],
        }
    )
    detector = scripted_detector(
        convergence_time=40.0,
        mistakes=(
            MistakeInterval(0, 1, 3.15, 39.0),
            MistakeInterval(1, 0, 7.2, 39.0),
        ),
    )
    return DiningTable(
        path(2),
        seed=1,
        coloring={0: 0, 1: 1},
        workload=workload,
        latency=latency,
        detector=detector,
        channel_bound=4,  # the online checker proves we never hit 5
    )


class TestChannelCapacityExtreme:
    def test_four_messages_in_transit_simultaneously(self):
        table = build_extreme_table()
        table.run(until=10.0)
        # Inside the volley window: Fork + Ack + Ping + ForkRequest.
        assert table.occupancy.current[(0, 1)] == 4
        assert table.occupancy.peak[(0, 1)] == 4

    def test_bound_never_exceeded_and_run_completes_cleanly(self):
        table = build_extreme_table()
        table.run(until=120.0)  # checker would raise on a 5th
        assert table.occupancy.peak[(0, 1)] == 4
        # Deliveries drained; Lemma 1.1 held when the late request landed.
        assert table.occupancy.current[(0, 1)] == 0
        # Both diners ate (0 once via suspicion, 1 twice).
        assert table.eat_counts() == {1: 2, 0: 1}

    def test_violations_confined_to_mistake_window(self):
        table = build_extreme_table()
        table.run(until=120.0)
        violations = table.violations()
        assert violations, "the mutual-suspicion window should overlap meals"
        assert table.violations_after(39.0 + 30.0) == []  # mistakes + eat margin
