"""Tests for the drinking-philosophers extension."""

import pytest

from repro.core import AlwaysHungry, scripted_detector
from repro.drinking import (
    AlwaysAllBottles,
    RandomThirst,
    ScriptedThirst,
    ThirstDeclared,
    adjacent_simultaneous_drinks,
    concurrency_profile,
    demand_at,
    drinking_table,
    drinking_violations,
    drinking_violations_after,
)
from repro.errors import ConfigurationError
from repro.graphs import clique, path, ring
from repro.sim.crash import CrashPlan


class TestWorkloads:
    def test_random_thirst_demand_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomThirst(demand=1.5)
        with pytest.raises(ConfigurationError):
            RandomThirst(demand=-0.1)

    def test_demand_one_is_all_bottles(self):
        from repro.sim.rng import RandomStreams

        graph = ring(5)
        workload = RandomThirst(demand=1.0)
        assert workload.bottles(0, graph, RandomStreams(1)) == frozenset(graph.neighbors(0))

    def test_demand_zero_is_no_bottles(self):
        from repro.sim.rng import RandomStreams

        graph = ring(5)
        workload = RandomThirst(demand=0.0)
        assert workload.bottles(0, graph, RandomStreams(1)) == frozenset()

    def test_always_all_bottles(self):
        from repro.sim.rng import RandomStreams

        graph = clique(4)
        workload = AlwaysAllBottles()
        assert workload.bottles(2, graph, RandomStreams(1)) == frozenset({0, 1, 3})

    def test_scripted_thirst_sequences_and_recycling(self):
        from repro.sim.rng import RandomStreams

        graph = path(3)
        workload = ScriptedThirst({1: [{0}, {2}]})
        streams = RandomStreams(1)
        assert workload.bottles(1, graph, streams) == frozenset({0})
        assert workload.bottles(1, graph, streams) == frozenset({2})
        assert workload.bottles(1, graph, streams) == frozenset({2})  # recycled

    def test_scripted_thirst_rejects_non_neighbor(self):
        from repro.sim.rng import RandomStreams

        graph = path(3)
        workload = ScriptedThirst({0: [{2}]})  # 2 is not a neighbor of 0
        with pytest.raises(ConfigurationError):
            workload.bottles(0, graph, RandomStreams(1))

    def test_unscripted_process_thinks_forever(self):
        from repro.sim.rng import RandomStreams

        workload = ScriptedThirst({0: [{1}]})
        assert workload.think_duration(5, RandomStreams(1)) is None


class TestDrinkingDiner:
    def test_requires_thirst_workload(self):
        with pytest.raises(ConfigurationError):
            drinking_table(ring(5), workload=AlwaysHungry())  # type: ignore[arg-type]

    def test_disjoint_demands_drink_simultaneously(self):
        # 0 and 1 are neighbors; 1 demands only its other bottle, so both
        # may drink at once — legally.
        graph = path(3)
        workload = ScriptedThirst(
            {0: [{1}], 1: [{2}]}, drink_time=5.0, sessions_per_process=1
        )
        table = drinking_table(
            graph, seed=1, workload=workload, detector=scripted_detector()
        )
        table.run(until=40.0)
        # Both processes drank, overlapping (same think time, long drinks).
        assert adjacent_simultaneous_drinks(table.trace, graph, horizon=40.0) >= 1
        assert drinking_violations(table.trace, graph, horizon=40.0) == []

    def test_contested_bottle_still_excludes(self):
        graph = path(2)
        workload = ScriptedThirst(
            {0: [{1}] * 20, 1: [{0}] * 20}, drink_time=1.0
        )
        table = drinking_table(
            graph, seed=1, workload=workload, detector=scripted_detector()
        )
        table.run(until=100.0)
        assert drinking_violations(table.trace, graph, horizon=100.0) == []
        meals = table.eat_counts()
        assert meals[0] > 5 and meals[1] > 5

    def test_empty_demand_drinks_immediately_after_doorway(self):
        graph = path(2)
        workload = ScriptedThirst({0: [set()]}, sessions_per_process=1)
        table = drinking_table(
            graph, seed=1, workload=workload, detector=scripted_detector()
        )
        table.run(until=20.0)
        assert table.eat_counts().get(0) == 1
        # No fork traffic was needed at all.
        assert "ForkRequest" not in table.message_stats.by_type

    def test_thirst_declared_recorded_per_session(self):
        graph = ring(4)
        table = drinking_table(
            graph,
            seed=2,
            workload=RandomThirst(demand=0.5),
            detector=scripted_detector(),
        )
        table.run(until=30.0)
        declared = table.trace.of_type(ThirstDeclared)
        hungry_starts = sum(
            1 for c in table.trace.phase_changes() if c.new_phase == "hungry"
        )
        assert len(declared) == hungry_starts

    def test_demand_at_returns_active_session(self):
        graph = path(3)
        workload = ScriptedThirst({1: [{0}, {2}]}, drink_time=1.0, sessions_per_process=2)
        table = drinking_table(
            graph, seed=1, workload=workload, detector=scripted_detector()
        )
        table.run(until=50.0)
        declared = table.trace.of_type(ThirstDeclared)
        assert len(declared) == 2
        assert demand_at(table.trace, 1, declared[0].time) == frozenset({0})
        assert demand_at(table.trace, 1, declared[1].time + 0.1) == frozenset({2})


class TestGuaranteesCarryOver:
    def test_wait_free_under_crash(self):
        graph = clique(7)
        table = drinking_table(
            graph,
            seed=5,
            workload=RandomThirst(demand=0.4),
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({2: 25.0, 5: 40.0}),
        )
        table.run(until=400.0)
        assert table.starving_correct(patience=150.0) == []

    def test_scoped_exclusion_eventually_clean(self):
        graph = clique(7)
        table = drinking_table(
            graph,
            seed=5,
            workload=RandomThirst(demand=0.5),
            detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
        )
        table.run(until=400.0)
        assert drinking_violations_after(table.trace, graph, 32.0, horizon=400.0) == []

    def test_channel_bound_still_holds(self):
        # check_invariants is on by default: a 5th message would raise.
        graph = clique(6)
        table = drinking_table(
            graph, seed=3, workload=RandomThirst(demand=0.6), detector=scripted_detector()
        )
        table.run(until=200.0)
        assert table.occupancy.max_occupancy <= 4

    def test_full_demand_matches_dining_behaviour(self):
        graph = ring(6)
        drink = drinking_table(
            graph,
            seed=7,
            workload=AlwaysAllBottles(drink_time=1.0),
            detector=scripted_detector(),
        ).run(until=150.0)
        from repro.core import DiningTable

        dine = DiningTable(
            graph,
            seed=7,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
            detector=scripted_detector(),
        ).run(until=150.0)
        assert drink.eat_counts() == dine.eat_counts()

    def test_concurrency_grows_as_demand_thins(self):
        graph = clique(8)
        means = []
        for demand in (1.0, 0.3):
            table = drinking_table(
                graph,
                seed=4,
                workload=RandomThirst(demand=demand, drink_time=1.0),
                detector=scripted_detector(),
            ).run(until=200.0)
            means.append(concurrency_profile(table.trace, graph, horizon=200.0)["mean"])
        assert means[1] > means[0] * 1.5


class TestDrinkingOverRealDetector:
    def test_full_stack_with_heartbeat_and_crash(self):
        from repro.core import heartbeat_detector
        from repro.sim.latency import PartialSynchronyLatency

        graph = clique(6)
        table = drinking_table(
            graph,
            seed=12,
            workload=RandomThirst(demand=0.4, drink_time=1.0),
            latency=PartialSynchronyLatency(
                gst=40.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=1.0
            ),
            detector=heartbeat_detector(interval=1.0, initial_timeout=2.0),
            crash_plan=CrashPlan.scripted({3: 25.0}),
        )
        table.run(until=500.0)
        assert table.starving_correct(patience=200.0) == []
        assert drinking_violations_after(table.trace, graph, 250.0, horizon=500.0) == []
        assert table.occupancy.max_occupancy <= 4
