"""End-to-end integration: Algorithm 1 over the heartbeat ◇P₁ under GST.

No oracle scripting anywhere — the detector earns its properties from the
partial-synchrony network, and the dining guarantees follow.
"""

import pytest

from repro.core import AlwaysHungry, DiningTable, heartbeat_detector
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency
from repro.sim.rng import RandomStreams


def gst_table(graph, *, seed, gst=50.0, crash_plan=None, **kwargs):
    kwargs.setdefault("workload", AlwaysHungry(eat_time=1.0, think_time=0.05))
    return DiningTable(
        graph,
        seed=seed,
        latency=PartialSynchronyLatency(
            gst=gst, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
        ),
        detector=heartbeat_detector(interval=1.0, initial_timeout=2.0, timeout_increment=1.0),
        crash_plan=crash_plan,
        **kwargs,
    )


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_full_stack_guarantees_on_ring(seed):
    graph = topologies.ring(8)
    crash_plan = CrashPlan.random(range(8), 2, (20.0, 70.0), RandomStreams(seed))
    table = gst_table(graph, seed=seed, crash_plan=crash_plan)
    table.run(until=700.0)

    # Wait-freedom.
    assert table.starving_correct(patience=250.0) == []
    # Eventual weak exclusion: clean long suffix.
    assert table.violations_after(300.0) == []
    # Eventual 2-bounded waiting in the suffix.
    assert table.max_overtaking(after=350.0) <= 2
    # Channel bound held throughout (checker would have raised).
    assert table.occupancy.max_occupancy <= 4


def test_hostile_pre_gst_period_causes_real_mistakes():
    graph = topologies.ring(8)
    table = gst_table(graph, seed=13, gst=80.0)
    table.run(until=400.0)
    assert table.detector.total_false_retractions() > 0


def test_pre_gst_violations_possible_but_finite():
    # With an aggressive initial timeout, mutual suspicion pre-GST can
    # produce violations; all of them must end once timeouts adapt.
    graph = topologies.ring(6)
    table = DiningTable(
        graph,
        seed=21,
        latency=PartialSynchronyLatency(gst=60.0, min_delay=0.1, pre_gst_max=12.0, post_gst_max=0.8),
        detector=heartbeat_detector(interval=1.0, initial_timeout=1.2, timeout_increment=1.0),
        workload=AlwaysHungry(eat_time=2.0, think_time=0.05),
    )
    table.run(until=800.0)
    assert table.violations_after(400.0) == []


def test_quiescence_holds_with_real_detector():
    # Dining traffic to the crashed process stops even though heartbeats
    # (detector layer) keep flowing.
    graph = topologies.ring(6)
    crash_plan = CrashPlan.scripted({3: 40.0})
    table = gst_table(graph, seed=17, crash_plan=crash_plan)
    table.run(until=300.0)
    dining_count = len(table.quiescence.sends_to(3, layer="dining"))
    detector_count = len(table.quiescence.sends_to(3, layer="detector"))
    table.run(until=900.0)
    assert len(table.quiescence.sends_to(3, layer="dining")) == dining_count
    # ◇P requires perpetual probing: detector traffic continues.
    assert len(table.quiescence.sends_to(3, layer="detector")) > detector_count


def test_daemon_over_heartbeat_detector():
    # The full paper stack: heartbeat ◇P₁ → wait-free daemon → hosted
    # stabilizing protocol, with a crash.
    from repro.core import DistributedDaemon
    from repro.stabilization import GreedyRecoloring

    graph = topologies.grid(3, 3)
    protocol = GreedyRecoloring(graph)
    daemon = DistributedDaemon(
        graph,
        protocol,
        seed=19,
        latency=PartialSynchronyLatency(gst=40.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=1.0),
        detector=heartbeat_detector(interval=1.0, initial_timeout=2.0),
        crash_plan=CrashPlan.scripted({4: 30.0}),
    )
    daemon.run(until=600.0)
    assert daemon.converged()
