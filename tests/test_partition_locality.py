"""Section 8's locality claim: ◇P₁ scales because it is local.

"Our algorithm uses a local refinement of the eventually perfect failure
detector ◇P₁, which can be implemented in sparse networks which are
partitionable by crash faults."  Operationally: when crashes *partition*
the conflict graph, each surviving component keeps dining with full
guarantees — nothing any process does ever references a non-neighbor, so
a component never needs connectivity to the rest of the system.
"""

import pytest

from repro.core import AlwaysHungry, DiningTable, heartbeat_detector, scripted_detector
from repro.graphs import ConflictGraph
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency


def barbell(cluster_size: int = 4):
    """Two cliques joined through a single bridge node.

    Crashing the bridge partitions the conflict graph into the two
    cliques.
    """
    left = list(range(cluster_size))
    bridge = cluster_size
    right = list(range(cluster_size + 1, 2 * cluster_size + 1))
    edges = []
    for cluster in (left, right):
        edges += [(a, b) for i, a in enumerate(cluster) for b in cluster[i + 1:]]
    edges += [(left[-1], bridge), (bridge, right[0])]
    return ConflictGraph(left + [bridge] + right, edges), left, bridge, right


class TestPartitionByCrash:
    def test_both_components_keep_dining_scripted_oracle(self):
        graph, left, bridge, right = barbell(4)
        table = DiningTable(
            graph,
            seed=9,
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({bridge: 20.0}),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        table.run(until=300.0)
        assert table.starving_correct(patience=120.0) == []
        meals = table.eat_counts()
        # Both sides of the partition keep making progress after t=20
        # (each side is a 4-clique: global exclusion inside, ~4 t.u. per
        # session round including the message hops).
        for pid in left + right:
            assert meals.get(pid, 0) > 15
        assert table.violations() == []

    def test_both_components_keep_dining_real_detector(self):
        # The stronger reading: the heartbeat ◇P₁ consults only neighbors,
        # so partition-by-crash costs nothing — no global membership, no
        # cross-partition traffic.
        graph, left, bridge, right = barbell(3)
        table = DiningTable(
            graph,
            seed=9,
            latency=PartialSynchronyLatency(
                gst=40.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=1.0
            ),
            detector=heartbeat_detector(interval=1.0, initial_timeout=2.0),
            crash_plan=CrashPlan.scripted({bridge: 30.0}),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
        )
        table.run(until=500.0)
        assert table.starving_correct(patience=200.0) == []
        assert table.violations_after(250.0) == []
        assert table.max_overtaking(after=300.0) <= 2

    def test_no_cross_component_traffic_exists_at_all(self):
        # Locality is structural: messages only ever traverse conflict
        # edges, so nothing can cross between components that share no
        # edge.  Verified against the recorded traffic.
        from repro.sim.network import NetworkMonitor

        class EdgeAudit(NetworkMonitor):
            def __init__(self, graph):
                self.graph = graph
                self.off_edge = []

            def on_send(self, src, dst, message, time):
                if not self.graph.are_neighbors(src, dst):
                    self.off_edge.append((src, dst, type(message).__name__))

        graph, left, bridge, right = barbell(3)
        table = DiningTable(
            graph,
            seed=9,
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({bridge: 15.0}),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        audit = EdgeAudit(graph)
        table.network.add_monitor(audit)
        table.run(until=200.0)
        assert audit.off_edge == []

    def test_detector_scope_never_mentions_non_neighbors(self):
        graph, left, bridge, right = barbell(3)
        table = DiningTable(
            graph,
            seed=9,
            detector=scripted_detector(detection_delay=2.0),
            crash_plan=CrashPlan.scripted({bridge: 15.0}),
        )
        table.run(until=100.0)
        far_left, far_right = left[0], right[-1]
        with pytest.raises(Exception):
            # ◇P₁'s scope restriction: modules cannot even be asked about
            # processes outside the neighborhood.
            table.detector.module_for(far_left).suspects(far_right)
