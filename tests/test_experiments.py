"""Smoke tests for the experiment harnesses: shapes and headline claims.

These run scaled-down configurations so the full suite stays fast; the
benchmarks run the paper-scale versions.
"""

from repro.experiments import (
    e1_safety,
    e2_progress,
    e3_fairness,
    e4_channels,
    e5_quiescence,
    e6_space,
    e7_daemon,
    e8_heartbeat,
)
from repro.experiments.common import format_table, summarize


class TestCommon:
    def test_format_table_renders_all_columns(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows, ["a", "b"], title="demo")
        assert "demo" in text and "2.50" in text and "-" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], ["a"])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["max"] == 4.0
        assert summarize([]) == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


class TestE1Safety:
    def test_zero_violations_after_cutoff(self):
        rows = e1_safety.run_safety(
            topology_names=("ring",), n=8, convergence_times=(0.0, 20.0), horizon=200.0
        )
        assert len(rows) == 2
        assert all(row["violations_after_cutoff"] == 0 for row in rows)

    def test_zero_convergence_means_zero_violations(self):
        rows = e1_safety.run_safety(
            topology_names=("ring",), n=8, convergence_times=(0.0,), horizon=200.0
        )
        assert rows[0]["violations"] == 0


class TestE2Progress:
    def test_algorithm1_wait_free_baseline_not(self):
        rows = e2_progress.run_progress(
            n=6,
            crash_counts=(0, 1),
            algorithms=("algorithm-1", "choy-singh"),
            horizon=300.0,
            patience=120.0,
        )
        by_key = {(r["algorithm"], r["crashes"]): r for r in rows}
        assert by_key[("algorithm-1", 0)]["starving_correct"] == 0
        assert by_key[("algorithm-1", 1)]["starving_correct"] == 0
        assert by_key[("choy-singh", 0)]["starving_correct"] == 0
        assert by_key[("choy-singh", 1)]["starving_correct"] > 0


class TestE3Fairness:
    def test_algorithm1_bounded_fork_priority_grows(self):
        rows = e3_fairness.run_fairness(horizons=(200.0, 600.0))
        alg1 = [r for r in rows if r["algorithm"] == "algorithm-1"]
        forks = [r for r in rows if r["algorithm"] == "fork-priority"]
        assert all(r["max_overtaking"] <= 2 for r in alg1)
        assert forks[-1]["max_overtaking"] > 2
        assert forks[-1]["max_overtaking"] > forks[0]["max_overtaking"]

    def test_ring_companion_row(self):
        row = e3_fairness.run_ring_fairness(n=6, horizon=250.0)
        assert row["max_overtaking"] <= 2


class TestE4Channels:
    def test_bound_respected_everywhere(self):
        rows = e4_channels.run_channels(topology_names=("ring", "clique"), n=8, horizon=200.0)
        assert all(row["bound_respected"] == "yes" for row in rows)
        assert all(row["max_in_transit"] <= 4 for row in rows)


class TestE5Quiescence:
    def test_no_messages_in_extension(self):
        rows = e5_quiescence.run_quiescence(
            topology_names=("ring",), n=8, crash_count=2, horizon=200.0
        )
        assert len(rows) == 2
        assert all(row["msgs_in_extension"] == 0 for row in rows)
        assert all(row["post_crash_msgs"] <= 4 * row["degree"] for row in rows)


class TestE6Space:
    def test_bits_track_degree(self):
        rows = e6_space.run_space(topology_names=("ring", "clique"), sizes=(8, 16))
        ring_rows = [r for r in rows if r["topology"] == "ring"]
        clique_rows = [r for r in rows if r["topology"] == "clique"]
        # Ring: δ constant ⇒ bits constant across n.
        assert ring_rows[0]["bits_per_process"] == ring_rows[1]["bits_per_process"]
        # Clique: δ = n−1 ⇒ bits grow.
        assert clique_rows[1]["bits_per_process"] > clique_rows[0]["bits_per_process"]
        assert all(r["bools_per_neighbor"] == 6 for r in rows)


class TestE7Daemon:
    def test_wait_free_converges_baseline_does_not(self):
        wait_free = e7_daemon.run_coloring(daemon_kind="wait-free", horizon=300.0)
        baseline = e7_daemon.run_coloring(daemon_kind="crash-oblivious", horizon=300.0)
        assert wait_free["converged"] == "yes"
        assert baseline["converged"] == "NO"

    def test_token_ring_converges(self):
        row = e7_daemon.run_token_ring(n=5, horizon=300.0)
        assert row["converged"] == "yes"

    def test_matching_rows(self):
        plain = e7_daemon.run_matching(crash_count=0, crash_aware=False, horizon=300.0)
        widow = e7_daemon.run_matching(crash_count=2, crash_aware=True, horizon=300.0)
        assert plain["converged"] == "yes"
        assert widow["converged"] == "yes"


class TestE8Heartbeat:
    def test_guarantees_end_to_end(self):
        rows = e8_heartbeat.run_gst_sweep(n=6, gsts=(30.0,), horizon=400.0, crash_count=1)
        row = rows[0]
        assert row["starving"] == 0
        assert row["violations_late"] == 0
        assert row["max_overtaking_late"] <= 2
        assert row["false_suspicions"] > 0  # the pre-GST period was hostile

    def test_scale_sweep_throughput_grows(self):
        rows = e8_heartbeat.run_scale_sweep(sizes=(6, 12), gst=30.0, horizon=250.0)
        assert rows[1]["throughput"] > rows[0]["throughput"]


class TestE4bMessageEfficiency:
    def test_msgs_per_meal_tracks_degree(self):
        from repro.experiments.e4_channels import run_message_efficiency

        rows = run_message_efficiency(topology_names=("ring", "clique"), n=10, horizon=200.0)
        by_topology = {row["topology"]: row for row in rows}
        assert by_topology["clique"]["msgs_per_meal"] > by_topology["ring"]["msgs_per_meal"]
        assert all(row["meals"] > 0 for row in rows)


class TestE7bTokenRingScaling:
    def test_steps_grow_superlinearly(self):
        from repro.experiments.e7_daemon import run_token_ring_scaling

        rows = run_token_ring_scaling(sizes=(5, 9))
        assert all(row["steps_to_converge"] is not None for row in rows)
        assert rows[1]["steps_per_n"] > rows[0]["steps_per_n"]


class TestE9Necessity:
    def test_probe_matrix_diagonal(self):
        from repro.experiments.e9_necessity import run_necessity

        rows = run_necessity(horizons=(250.0,))
        by_oracle = {row["oracle"]: row for row in rows}
        assert by_oracle["control"]["wait_free"] == "yes"
        assert by_oracle["control"]["eventual_wx"] == "yes"
        assert by_oracle["incomplete"]["wait_free"] == "NO"
        assert by_oracle["incomplete"]["eventual_wx"] == "yes"
        assert by_oracle["inaccurate"]["wait_free"] == "yes"
        assert by_oracle["inaccurate"]["eventual_wx"] == "NO"


class TestE10Drinking:
    def test_concurrency_monotone_in_thinning_demand(self):
        from repro.experiments.e10_drinking import run_drinking

        rows = run_drinking(demands=(1.0, 0.3), n=6, horizon=200.0)
        assert rows[1]["drinks"] > rows[0]["drinks"]
        assert rows[1]["mean_concurrency"] > rows[0]["mean_concurrency"]
        assert all(row["starving"] == 0 for row in rows)
        assert all(row["late_violations"] == 0 for row in rows)
