"""Campaigns and the mutation-testing harness.

Marked ``fuzz``: the full-registry kill test runs dozens of simulated
plans.  The fast tier (``-m "not fuzz"``) skips this module; CI's fuzz
job and the default full run include it.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CampaignSpec,
    mutant_names,
    run_campaign,
    run_mutation_harness,
)

pytestmark = pytest.mark.fuzz


def test_clean_campaign_has_zero_violations():
    result = run_campaign(CampaignSpec(n=5, seed=0, runs=12))
    assert result.ok, result.describe()
    assert result.runs_executed == 12
    assert result.violation_count() == 0
    # Passing runs drop their artifacts (memory discipline).
    assert all(r.trace is None and not r.wire for r in result.results)


def test_campaign_is_deterministic():
    spec = CampaignSpec(n=5, seed=4, runs=6)
    a = run_campaign(spec)
    b = run_campaign(spec)
    assert [r.plan for r in a.results] == [r.plan for r in b.results]
    assert [r.verdict.statuses() for r in a.results] == [
        r.verdict.statuses() for r in b.results
    ]


def test_campaign_budget_truncates_without_reordering():
    # A zero budget still executes the first run, then stops.
    result = run_campaign(CampaignSpec(n=5, seed=0, runs=50, budget_seconds=0.0))
    assert result.budget_exhausted
    assert result.runs_executed == 1
    full = run_campaign(CampaignSpec(n=5, seed=0, runs=2))
    assert result.results[0].plan == full.results[0].plan


def test_campaign_stop_on_failure_short_circuits():
    spec = CampaignSpec(n=5, seed=0, runs=10, mutant="greedy-eater", stop_on_failure=True)
    result = run_campaign(spec)
    assert not result.ok
    assert result.runs_executed < 10
    # The failing run keeps its artifacts for the shrinker.
    assert result.first_failure.trace is not None


def test_mutation_harness_kills_the_whole_registry():
    report = run_mutation_harness(base=CampaignSpec(n=5, seed=0, runs=10))
    assert report.total == len(mutant_names())
    assert report.killed >= report.total - 1, report.describe()
    # Every kill is on an anticipated property (the registry documents
    # what each bug breaks).
    for outcome in report.outcomes:
        if outcome.killed:
            assert outcome.matched_expected, (
                f"{outcome.name} killed by unexpected "
                f"{outcome.failed_properties}, expected {outcome.expected}"
            )
            assert outcome.killing_result is not None


def test_mutation_harness_rejects_preset_mutant():
    with pytest.raises(ConfigurationError):
        run_mutation_harness(base=CampaignSpec(mutant="greedy-eater"))


def test_needs_crash_mutants_skip_crash_free_plans():
    report = run_mutation_harness(
        ["no-suspicion-substitution"], base=CampaignSpec(n=5, seed=0, runs=4)
    )
    (outcome,) = report.outcomes
    assert outcome.killed
    assert outcome.killing_result.plan.crashes
