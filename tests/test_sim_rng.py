"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent_generators(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is not streams.stream("b")


class TestDeterminism:
    def test_same_seed_same_name_replays(self):
        first = RandomStreams(42).stream("latency/0->1")
        second = RandomStreams(42).stream("latency/0->1")
        assert [first.random() for _ in range(20)] == [second.random() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_diverge(self):
        streams = RandomStreams(7)
        a = streams.stream("one")
        b = streams.stream("two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_adding_a_stream_does_not_perturb_existing(self):
        # Draw from "a", then create "b", then keep drawing from "a":
        # the sequence must match drawing from "a" alone.
        solo = RandomStreams(9).stream("a")
        expected = [solo.random() for _ in range(10)]

        streams = RandomStreams(9)
        a = streams.stream("a")
        got = [a.random() for _ in range(5)]
        streams.stream("b").random()
        got += [a.random() for _ in range(5)]
        assert got == expected


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RandomStreams(3).spawn("child").stream("s")
        b = RandomStreams(3).spawn("child").stream("s")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(3)
        child = parent.spawn("child")
        assert child.master_seed != parent.master_seed

    def test_spawn_names_are_independent(self):
        parent = RandomStreams(3)
        a = parent.spawn("left").stream("s")
        b = parent.spawn("right").stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_master_seed_exposed():
    assert RandomStreams(17).master_seed == 17
