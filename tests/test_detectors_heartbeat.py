"""Unit tests for the heartbeat ◇P₁ implementation.

A minimal host actor stands in for the diner: it starts the agent and
routes heartbeat messages to it, exactly as
:class:`repro.core.diner.DinerActor` does.
"""

import pytest

from repro.detectors.heartbeat import Heartbeat, HeartbeatDetector
from repro.errors import ConfigurationError
from repro.graphs import path, ring
from repro.sim.actor import Actor
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, PartialSynchronyLatency
from repro.sim.network import Network


class Host(Actor):
    """Bare actor hosting only a heartbeat agent."""

    def __init__(self, pid, detector):
        super().__init__(pid)
        self.agent = detector.agent_for(pid)

    def on_start(self):
        self.agent.start(self)

    def on_message(self, src, message):
        if self.agent.wants(message):
            self.agent.on_message(src, message)


def build(graph, latency, seed=0, **detector_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency)
    detector = HeartbeatDetector(graph, **detector_kwargs)
    hosts = {pid: Host(pid, detector) for pid in graph.nodes}
    for host in hosts.values():
        network.register(host)
    network.start()
    return sim, network, detector, hosts


class TestCompleteness:
    def test_crashed_neighbor_eventually_permanently_suspected(self):
        graph = ring(4)
        sim, network, detector, hosts = build(
            graph, FixedLatency(0.5), interval=1.0, initial_timeout=3.0
        )
        network.crash_at(2, 10.0)
        sim.run(until=100.0)
        assert detector.module_for(1).suspects(2)
        assert detector.module_for(3).suspects(2)
        # Permanence: still suspected much later.
        sim.run(until=300.0)
        assert detector.module_for(1).suspects(2)

    def test_correct_processes_not_suspected_under_synchrony(self):
        graph = ring(4)
        sim, network, detector, hosts = build(
            graph, FixedLatency(0.5), interval=1.0, initial_timeout=3.0
        )
        sim.run(until=200.0)
        for pid in graph.nodes:
            assert detector.module_for(pid).suspected_neighbors() == frozenset()


class TestEventualAccuracy:
    def test_false_suspicions_stop_after_gst(self):
        graph = ring(6)
        latency = PartialSynchronyLatency(
            gst=50.0, min_delay=0.1, pre_gst_max=10.0, post_gst_max=0.8
        )
        sim, network, detector, hosts = build(
            graph, latency, seed=13, interval=1.0, initial_timeout=1.5, timeout_increment=1.0
        )
        sim.run(until=60.0)
        early_mistakes = detector.total_false_retractions()
        assert early_mistakes > 0  # hostile pre-GST period really bites

        # Well after GST: record mistakes, run much longer, expect no new
        # mistakes and no standing suspicion of any (correct) process.
        sim.run(until=150.0)
        settled = detector.total_false_retractions()
        sim.run(until=600.0)
        assert detector.total_false_retractions() == settled
        for pid in graph.nodes:
            assert detector.module_for(pid).suspected_neighbors() == frozenset()

    def test_timeouts_adapt_upward(self):
        graph = path(2)
        latency = PartialSynchronyLatency(
            gst=30.0, min_delay=0.1, pre_gst_max=12.0, post_gst_max=0.5
        )
        sim, network, detector, hosts = build(
            graph, latency, seed=2, interval=1.0, initial_timeout=1.0, timeout_increment=2.0
        )
        sim.run(until=200.0)
        agent = detector.agent_for(0)
        if agent.false_suspicion_retractions:
            assert agent.timeout_of(1) > 1.0


class TestAgentMechanics:
    def test_wants_only_heartbeats(self):
        detector = HeartbeatDetector(path(2))
        agent = detector.agent_for(0)
        assert agent.wants(Heartbeat(sent_at=0.0))
        assert not agent.wants("other")

    def test_agent_identity_per_pid(self):
        detector = HeartbeatDetector(path(2))
        assert detector.agent_for(0) is detector.agent_for(0)
        assert detector.agent_for(0) is not detector.agent_for(1)

    def test_agent_rejects_wrong_actor(self):
        detector = HeartbeatDetector(path(2))
        agent = detector.agent_for(0)
        sim = Simulator()
        network = Network(sim)
        host = Host(1, detector)
        network.register(host)
        with pytest.raises(ConfigurationError):
            agent.start(host)

    def test_heartbeat_from_non_neighbor_ignored(self):
        graph = path(3)  # 0 and 2 are not neighbors
        sim, network, detector, hosts = build(graph, FixedLatency(0.5))
        agent = detector.agent_for(0)
        agent.on_message(2, Heartbeat(sent_at=0.0))  # must not raise

    def test_crashed_host_stops_heartbeating(self):
        graph = path(2)
        sim, network, detector, hosts = build(graph, FixedLatency(0.5), interval=1.0)
        network.crash_at(0, 5.0)
        sim.run(until=50.0)
        # The survivor suspects the crashed host and never unsuspects.
        assert detector.module_for(1).suspects(0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatDetector(path(2), interval=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatDetector(path(2), initial_timeout=0.0)
        with pytest.raises(ConfigurationError):
            HeartbeatDetector(path(2), timeout_increment=0.0)
