"""Property-based testing of Algorithm 1 itself.

Hypothesis generates whole dining configurations — topology, seed, crash
plan, detector convergence — and the paper's theorems are asserted on
each run.  The online invariant checkers (fork uniqueness, channel bound,
FIFO) are armed throughout, so any counterexample fails loudly at the
first bad state.

Horizons are kept modest; the dedicated integration tests cover long
runs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import topologies
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

CONFIG = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def dining_configs(draw):
    topology = draw(st.sampled_from(["ring", "clique", "grid", "star", "path", "tree"]))
    n = draw(st.sampled_from([4, 6, 8, 9]))
    if topology == "grid" and n in (4, 9):
        pass  # 2x2 and 3x3 are fine
    seed = draw(st.integers(min_value=0, max_value=10_000))
    crash_count = draw(st.integers(min_value=0, max_value=max(0, n - 1)))
    convergence = draw(st.sampled_from([0.0, 15.0, 40.0]))
    return topology, n, seed, crash_count, convergence


def build(topology, n, seed, crash_count, convergence):
    graph = topologies.by_name(topology, n, seed=seed)
    crash_plan = CrashPlan.random(
        graph.nodes, crash_count, (5.0, 60.0), RandomStreams(seed + 1)
    )
    table = DiningTable(
        graph,
        seed=seed,
        detector=scripted_detector(
            convergence_time=convergence,
            detection_delay=1.0,
            random_mistakes=convergence > 0,
        ),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=0.8, think_time=0.02),
        check_invariants=True,  # fork uniqueness + channel bound + FIFO, online
    )
    return table, crash_plan


@given(dining_configs())
@CONFIG
def test_theorems_hold_on_random_configurations(config):
    topology, n, seed, crash_count, convergence = config
    table, crash_plan = build(topology, n, seed, crash_count, convergence)
    horizon = 260.0
    table.run(until=horizon)  # invariant checkers armed throughout

    # Theorem 2 (wait-freedom): nobody correct starves.
    assert table.starving_correct(patience=120.0) == []

    # Theorem 1 (◇WX): clean suffix after convergence + crash detection,
    # plus one maximum eating duration of settling time (a meal begun
    # under a final pre-convergence mistake may still be in progress at
    # the convergence instant).
    cutoff = max(convergence, crash_plan.last_crash_time + 1.0) + 0.8
    assert table.violations_after(cutoff) == []

    # Theorem 3 (◇2-BW): bounded overtaking for post-backlog sessions.
    assert table.max_overtaking(after=cutoff + 40.0) <= 2

    # Section 7: channel capacity held (checker would have raised too).
    assert table.occupancy.max_occupancy <= 4


@given(dining_configs())
@CONFIG
def test_runs_replay_bit_for_bit(config):
    topology, n, seed, crash_count, convergence = config

    def fingerprint():
        table, _ = build(topology, n, seed, crash_count, convergence)
        table.run(until=90.0)
        return (
            tuple(sorted(table.eat_counts().items())),
            table.message_stats.total,
            table.sim.processed_events,
            len(table.violations()),
        )

    assert fingerprint() == fingerprint()


@st.composite
def drinking_configs(draw):
    topology = draw(st.sampled_from(["ring", "clique", "grid", "star"]))
    n = draw(st.sampled_from([4, 6, 9]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    demand = draw(st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    crash_count = draw(st.integers(min_value=0, max_value=2))
    return topology, n, seed, demand, crash_count


@given(drinking_configs())
@CONFIG
def test_drinking_guarantees_on_random_configurations(config):
    from repro.drinking import (
        RandomThirst,
        adjacent_simultaneous_drinks,
        drinking_table,
        drinking_violations,
        drinking_violations_after,
    )

    topology, n, seed, demand, crash_count = config
    graph = topologies.by_name(topology, n, seed=seed)
    crash_plan = CrashPlan.random(
        graph.nodes, crash_count, (5.0, 40.0), RandomStreams(seed + 2)
    )
    convergence = 20.0
    table = drinking_table(
        graph,
        seed=seed,
        workload=RandomThirst(demand=demand, drink_time=0.8),
        detector=scripted_detector(convergence_time=convergence, random_mistakes=True),
        crash_plan=crash_plan,
    )
    table.run(until=200.0)

    # Wait-freedom carries over.
    assert table.starving_correct(patience=90.0) == []
    # Bottle-scoped eventual exclusion (settling margin: one drink time).
    cutoff = max(convergence, crash_plan.last_crash_time + 1.0) + 0.8
    assert drinking_violations_after(table.trace, graph, cutoff, horizon=200.0) == []
    # Scoped violations can never exceed raw adjacent overlaps.
    scoped = len(drinking_violations(table.trace, graph, horizon=200.0))
    raw = adjacent_simultaneous_drinks(table.trace, graph, horizon=200.0)
    assert scoped <= raw
    # Channel bound still enforced (checker armed; assert the observation).
    assert table.occupancy.max_occupancy <= 4


@st.composite
def ser_configs(draw):
    topology = draw(st.sampled_from(["ring", "clique", "grid", "tree", "path"]))
    n = draw(st.sampled_from([4, 6, 9]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return topology, n, seed

@given(ser_configs())
@CONFIG
def test_edge_reversal_perfect_safety_and_fairness_crash_free(config):
    from repro.baselines import edge_reversal_table

    topology, n, seed = config
    graph = topologies.by_name(topology, n, seed=seed)
    table = edge_reversal_table(
        graph,
        seed=seed,
        workload=AlwaysHungry(eat_time=0.6, think_time=0.01),
    )
    table.run(until=200.0)
    # Perpetual weak exclusion: no violation ever, from t = 0.
    assert table.violations() == []
    # Every process becomes a sink infinitely often: all keep eating.
    meals = table.eat_counts()
    assert all(meals.get(pid, 0) >= 3 for pid in graph.nodes)
