"""Live runtime: loopback end-to-end runs, layering, and a real cluster.

The loopback tests exercise the whole live stack — LiveSubstrate wall-clock
timers, the binary codec on every hop, the heartbeat ◇P₁, and the online
checkers — inside one asyncio loop, so they are fast and deterministic
enough for tier-1.  One test spawns a real 3-process unix-socket cluster
through the same launcher ``repro cluster`` uses.
"""

import ast
import os

import pytest

from repro.graphs.topologies import ring
from repro.net.host import AsyncHost, HostConfig, run_host
from repro.net.cluster import ClusterSpec, launch

pytestmark = pytest.mark.live

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _fast_config(duration: float) -> HostConfig:
    return HostConfig(
        duration=duration,
        seed=7,
        eat_time=0.02,
        think_time=0.005,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
    )


# ----------------------------------------------------------------------
# Loopback end-to-end
# ----------------------------------------------------------------------
def test_loopback_five_ring_end_to_end():
    """A 5-diner ring over the live loopback transport: everyone eats,
    no fork-uniqueness or channel-bound violation, Section 7 respected."""
    host = AsyncHost(ring(5), config=_fast_config(1.0))
    result = run_host(host)

    assert result["violations"] == []
    meals = {int(pid): count for pid, count in result["meals"].items()}
    assert set(meals) == {0, 1, 2, 3, 4}
    assert all(count > 0 for count in meals.values())
    assert result["max_in_transit_local"] <= 4
    assert result["wire_events"] > 0


def test_loopback_crash_injection_keeps_neighbors_eating():
    """Crashing one diner mid-run must not stall its correct neighbors:
    the wall-clock ◇P₁ suspects the silent process and grants its forks."""
    host = AsyncHost(ring(5), config=_fast_config(1.5), crash_times={2: 0.3})
    result = run_host(host)

    assert result["violations"] == []
    assert result["crashed"] == [2]
    meals = {int(pid): count for pid, count in result["meals"].items()}
    # The crashed diner's neighbors keep making progress after the crash.
    assert meals[1] > 0 and meals[3] > 0


def test_loopback_rejects_remote_placement():
    with pytest.raises(Exception):
        AsyncHost(ring(3), local_pids=[0], placement={0: 0, 1: 1, 2: 1})


# ----------------------------------------------------------------------
# Layering: core stays transport-agnostic
# ----------------------------------------------------------------------
def _module_path(module: str):
    """Filesystem path of a repro module, or None if not ours."""
    if module != "repro" and not module.startswith("repro."):
        return None
    relative = module.replace(".", os.sep)
    for candidate in (
        os.path.join(SRC_ROOT, relative + ".py"),
        os.path.join(SRC_ROOT, relative, "__init__.py"),
    ):
        if os.path.exists(candidate):
            return candidate
    return None


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _load_time_imports(module: str):
    """Modules imported when ``module`` itself is imported.

    TYPE_CHECKING blocks never execute, and imports inside function bodies
    are deferred until the function runs (the lazy-loading idiom that keeps
    ``core`` free of any hard simulator dependency), so both are excluded.
    """
    path = _module_path(module)
    if path is None:
        return
    with open(path, "r", encoding="utf-8") as stream:
        tree = ast.parse(stream.read(), filename=path)
    package = module if path.endswith("__init__.py") else module.rsplit(".", 1)[0]

    def walk(nodes):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.If) and _is_type_checking_if(node):
                yield from walk(node.orelse)
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = package.split(".")
                    base = ".".join(parts[: len(parts) - node.level + 1])
                    yield f"{base}.{node.module}" if node.module else base
                elif node.module:
                    yield node.module
            for child in ast.iter_child_nodes(node):
                yield from walk([child])

    yield from walk(tree.body)


def _runtime_closure(root: str) -> set:
    closure, frontier = set(), [root]
    while frontier:
        module = frontier.pop()
        if module in closure or _module_path(module) is None:
            continue
        closure.add(module)
        frontier.extend(_load_time_imports(module))
    return closure


def _substrate_offenders(closure) -> list:
    return sorted(
        module
        for module in closure
        if module.split(".")[:2] in (["repro", "sim"], ["repro", "net"])
    )


def test_core_diner_is_transport_agnostic():
    """The transitive import closure of ``repro.core.diner`` must not
    reach the simulator kernel or the live runtime: DinerActor talks only
    to the Substrate protocol, so either side can host it unchanged."""
    offenders = _substrate_offenders(_runtime_closure("repro.core.diner"))
    assert not offenders, f"core.diner runtime closure leaks into {offenders}"


def test_checks_subsystem_is_substrate_agnostic():
    """``repro.checks`` judges streams from the kernel, the live host,
    the cluster merge, and offline replay — so its own import closure
    must reach neither ``repro.sim`` nor ``repro.net``; the adapters that
    know a substrate live with that substrate instead."""
    closure = _runtime_closure("repro.checks")
    # Every submodule of the package obeys the rule, not just __init__.
    for name in ("base", "context", "events", "properties", "stream", "suite", "verdict"):
        closure |= _runtime_closure(f"repro.checks.{name}")
    offenders = _substrate_offenders(closure)
    assert not offenders, f"repro.checks runtime closure leaks into {offenders}"


# ----------------------------------------------------------------------
# Differential: one checker implementation, two substrates
# ----------------------------------------------------------------------
def test_kernel_and_loopback_verdicts_agree():
    """The same seeded ring-5 scenario judged by the simulator kernel and
    by the live loopback host must produce Verdicts that agree on every
    property's status — the whole point of the shared checks subsystem."""
    from repro.core import AlwaysHungry, DiningTable, scripted_detector

    host = AsyncHost(ring(5), config=_fast_config(1.0))
    run_host(host)
    live = host.verdict()

    table = DiningTable(
        ring(5),
        seed=7,
        detector=scripted_detector(),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.1),
    )
    table.run(until=60.0)
    kernel = table.verdict()

    assert kernel.statuses() == live.statuses()
    # Pinned: both substrates observe and pass every standard property.
    assert kernel.statuses() == {
        "channel-bound": "pass",
        "diner-local": "pass",
        "fifo": "pass",
        "fork-uniqueness": "pass",
        "overtaking": "pass",
        "pending-ping": "pass",
        "progress": "pass",
        "quiescence": "pass",
        "wx-safety": "pass",
    }


# ----------------------------------------------------------------------
# Real sockets: 3 OS processes over unix sockets
# ----------------------------------------------------------------------
def test_three_process_unix_cluster(tmp_path):
    """One diner per OS process on a triangle, linked by unix sockets.
    The merged verdict must be clean and the Section 7 bound must hold
    on every (cross-host) edge of the merged wire log."""
    spec = ClusterSpec(
        topology="ring",
        n=3,
        processes=3,
        duration=1.0,
        seed=3,
        eat_time=0.02,
        think_time=0.005,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
        run_dir=str(tmp_path / "cluster"),
    )
    verdict = launch(spec, quiet=True)

    assert verdict.ok, verdict.describe()
    assert verdict.checker_violations == []
    assert verdict.total_meals > 0
    assert 0 < verdict.max_in_transit <= 4
    # Every triangle edge is cross-host here, so each must appear in the
    # merged staircase and in the cluster-level Prometheus exposition.
    assert set(verdict.edge_peaks) == {"0-1", "0-2", "1-2"}
    assert 'repro_net_in_transit{edge="0-1",layer="dining",run="cluster"}' in (
        verdict.prometheus
    )
