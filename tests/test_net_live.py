"""Live runtime: loopback end-to-end runs, layering, and a real cluster.

The loopback tests exercise the whole live stack — LiveSubstrate wall-clock
timers, the binary codec on every hop, the heartbeat ◇P₁, and the online
checkers — inside one asyncio loop, so they are fast and deterministic
enough for tier-1.  One test spawns a real 3-process unix-socket cluster
through the same launcher ``repro cluster`` uses.
"""

import ast
import os

import pytest

from repro.graphs.topologies import ring
from repro.net.host import AsyncHost, HostConfig, run_host
from repro.net.cluster import ClusterSpec, launch

pytestmark = pytest.mark.live

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _fast_config(duration: float) -> HostConfig:
    return HostConfig(
        duration=duration,
        seed=7,
        eat_time=0.02,
        think_time=0.005,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
    )


# ----------------------------------------------------------------------
# Loopback end-to-end
# ----------------------------------------------------------------------
def test_loopback_five_ring_end_to_end():
    """A 5-diner ring over the live loopback transport: everyone eats,
    no fork-uniqueness or channel-bound violation, Section 7 respected."""
    host = AsyncHost(ring(5), config=_fast_config(1.0))
    result = run_host(host)

    assert result["violations"] == []
    meals = {int(pid): count for pid, count in result["meals"].items()}
    assert set(meals) == {0, 1, 2, 3, 4}
    assert all(count > 0 for count in meals.values())
    assert result["max_in_transit_local"] <= 4
    assert result["wire_events"] > 0


def test_loopback_crash_injection_keeps_neighbors_eating():
    """Crashing one diner mid-run must not stall its correct neighbors:
    the wall-clock ◇P₁ suspects the silent process and grants its forks."""
    host = AsyncHost(ring(5), config=_fast_config(1.5), crash_times={2: 0.3})
    result = run_host(host)

    assert result["violations"] == []
    assert result["crashed"] == [2]
    meals = {int(pid): count for pid, count in result["meals"].items()}
    # The crashed diner's neighbors keep making progress after the crash.
    assert meals[1] > 0 and meals[3] > 0


def test_loopback_rejects_remote_placement():
    with pytest.raises(Exception):
        AsyncHost(ring(3), local_pids=[0], placement={0: 0, 1: 1, 2: 1})


# ----------------------------------------------------------------------
# Layering: core stays transport-agnostic
# ----------------------------------------------------------------------
def _module_path(module: str):
    """Filesystem path of a repro module, or None if not ours."""
    if module != "repro" and not module.startswith("repro."):
        return None
    relative = module.replace(".", os.sep)
    for candidate in (
        os.path.join(SRC_ROOT, relative + ".py"),
        os.path.join(SRC_ROOT, relative, "__init__.py"),
    ):
        if os.path.exists(candidate):
            return candidate
    return None


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _load_time_imports(module: str):
    """Modules imported when ``module`` itself is imported.

    TYPE_CHECKING blocks never execute, and imports inside function bodies
    are deferred until the function runs (the lazy-loading idiom that keeps
    ``core`` free of any hard simulator dependency), so both are excluded.
    """
    path = _module_path(module)
    if path is None:
        return
    with open(path, "r", encoding="utf-8") as stream:
        tree = ast.parse(stream.read(), filename=path)
    package = module if path.endswith("__init__.py") else module.rsplit(".", 1)[0]

    def walk(nodes):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.If) and _is_type_checking_if(node):
                yield from walk(node.orelse)
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = package.split(".")
                    base = ".".join(parts[: len(parts) - node.level + 1])
                    yield f"{base}.{node.module}" if node.module else base
                elif node.module:
                    yield node.module
            for child in ast.iter_child_nodes(node):
                yield from walk([child])

    yield from walk(tree.body)


def _runtime_closure(root: str) -> set:
    closure, frontier = set(), [root]
    while frontier:
        module = frontier.pop()
        if module in closure or _module_path(module) is None:
            continue
        closure.add(module)
        frontier.extend(_load_time_imports(module))
    return closure


def _substrate_offenders(closure) -> list:
    return sorted(
        module
        for module in closure
        if module.split(".")[:2] in (["repro", "sim"], ["repro", "net"])
    )


def test_core_diner_is_transport_agnostic():
    """The transitive import closure of ``repro.core.diner`` must not
    reach the simulator kernel or the live runtime: DinerActor talks only
    to the Substrate protocol, so either side can host it unchanged."""
    offenders = _substrate_offenders(_runtime_closure("repro.core.diner"))
    assert not offenders, f"core.diner runtime closure leaks into {offenders}"


def test_checks_subsystem_is_substrate_agnostic():
    """``repro.checks`` judges streams from the kernel, the live host,
    the cluster merge, and offline replay — so its own import closure
    must reach neither ``repro.sim`` nor ``repro.net``; the adapters that
    know a substrate live with that substrate instead."""
    closure = _runtime_closure("repro.checks")
    # Every submodule of the package obeys the rule, not just __init__.
    for name in ("base", "context", "events", "properties", "stream", "suite", "verdict"):
        closure |= _runtime_closure(f"repro.checks.{name}")
    offenders = _substrate_offenders(closure)
    assert not offenders, f"repro.checks runtime closure leaks into {offenders}"


# ----------------------------------------------------------------------
# Differential: one checker implementation, two substrates
# ----------------------------------------------------------------------
def test_kernel_and_loopback_verdicts_agree():
    """The same seeded ring-5 scenario judged by the simulator kernel and
    by the live loopback host must produce Verdicts that agree on every
    property's status — the whole point of the shared checks subsystem."""
    from repro.core import AlwaysHungry, DiningTable, scripted_detector

    host = AsyncHost(ring(5), config=_fast_config(1.0))
    run_host(host)
    live = host.verdict()

    table = DiningTable(
        ring(5),
        seed=7,
        detector=scripted_detector(),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.1),
    )
    table.run(until=60.0)
    kernel = table.verdict()

    assert kernel.statuses() == live.statuses()
    # Pinned: both substrates observe and pass every standard property.
    assert kernel.statuses() == {
        "channel-bound": "pass",
        "diner-local": "pass",
        "fifo": "pass",
        "fork-uniqueness": "pass",
        "overtaking": "pass",
        "pending-ping": "pass",
        "progress": "pass",
        "quiescence": "pass",
        "wx-safety": "pass",
    }


# ----------------------------------------------------------------------
# Real sockets: 3 OS processes over unix sockets
# ----------------------------------------------------------------------
def test_three_process_unix_cluster(tmp_path):
    """One diner per OS process on a triangle, linked by unix sockets.
    The merged verdict must be clean and the Section 7 bound must hold
    on every (cross-host) edge of the merged wire log."""
    spec = ClusterSpec(
        topology="ring",
        n=3,
        processes=3,
        duration=1.0,
        seed=3,
        eat_time=0.02,
        think_time=0.005,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
        run_dir=str(tmp_path / "cluster"),
    )
    verdict = launch(spec, quiet=True)

    assert verdict.ok, verdict.describe()
    assert verdict.checker_violations == []
    assert verdict.total_meals > 0
    assert 0 < verdict.max_in_transit <= 4
    # Every triangle edge is cross-host here, so each must appear in the
    # merged staircase and in the cluster-level Prometheus exposition.
    assert set(verdict.edge_peaks) == {"0-1", "0-2", "1-2"}
    assert 'repro_net_in_transit{edge="0-1",layer="dining",run="cluster"}' in (
        verdict.prometheus
    )


# ----------------------------------------------------------------------
# Tracing: spans on the live substrate, /metrics scrapes, flight dumps
# ----------------------------------------------------------------------
def test_loopback_traced_spans_account_every_meal():
    """Live tracing rides in-band wire contexts; the stitched span list
    must account for exactly the meals the diners report."""
    from .test_obs_tracing import _structure_ok

    host = AsyncHost(ring(5), config=_fast_config(1.0))
    result = run_host(host)
    meals = sum(int(count) for count in result["meals"].values())
    assert meals > 0
    assert result["span_meals"] == meals
    assert _structure_ok(host.spans)


def test_no_tracing_means_no_spans_and_untagged_frames():
    import dataclasses as dc

    config = _fast_config(0.5)
    config = dc.replace(config, tracing=False)
    host = AsyncHost(ring(3), config=config)
    result = run_host(host)
    assert result["spans"] == 0
    assert host.tracer is None


def test_kernel_and_loopback_span_trees_have_the_same_shape():
    """The differential the tracing layer owes: both substrates emit the
    same deterministic span vocabulary — one request per hunger with the
    same ordered phase children and ids derived the same way."""
    from repro.core import AlwaysHungry, DiningTable, scripted_detector
    from repro.obs.tracing import attach_tracer, request_spans, trace_pid

    from .test_obs_tracing import _structure_ok

    host = AsyncHost(ring(5), config=_fast_config(1.0))
    run_host(host)

    table = DiningTable(
        ring(5),
        seed=7,
        detector=scripted_detector(),
        workload=AlwaysHungry(eat_time=0.5, think_time=0.1),
    )
    tracer = attach_tracer(table)
    table.run(until=60.0)
    kernel_spans = tracer.finish()

    assert _structure_ok(host.spans)
    assert _structure_ok(kernel_spans)
    for spans in (host.spans, kernel_spans):
        requests = request_spans(spans)
        assert requests
        # Deterministic ids: trace_id encodes the requesting pid, span
        # ids are the same fixed constants on both substrates.
        assert all(trace_pid(s.trace_id) == s.pid for s in requests)
        assert {s.span_id for s in requests} == {1}
        assert {s.span_id for s in spans} <= {1, 2, 3, 4, 5}


def test_scrape_endpoint_serves_prometheus_mid_run():
    """An opt-in /metrics port answers a raw HTTP scrape while the host
    is still dining, with fresh (finalized) counters."""
    import asyncio
    import dataclasses as dc

    config = dc.replace(_fast_config(1.0), scrape_port=0)
    host = AsyncHost(ring(5), config=config)

    async def scenario():
        runner = asyncio.ensure_future(host.run())
        try:
            while host.scrape_address is None:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.3)  # let some dining happen first
            _, port = host.scrape_address
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            body = await reader.read()
            writer.close()
            return body
        finally:
            await runner

    response = asyncio.run(scenario())
    head, _, body = response.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    text = body.decode("utf-8")
    assert "repro_dining_meals_total" in text
    assert "repro_net_in_transit" in text
    assert host.result()["scrape_address"] is not None


def test_flight_recorder_dumps_on_fail_and_replays(tmp_path):
    """A violated run with a flight recorder leaves a witness directory
    whose artifacts replay to the same failing property."""
    import dataclasses as dc
    import json

    from repro.checks import CheckConfig, load_events_path, merge_events, replay

    flight_dir = str(tmp_path / "flight")
    config = dc.replace(
        _fast_config(0.6), channel_bound=0, flight_dir=flight_dir, flight_capacity=4096
    )
    host = AsyncHost(ring(3), config=config)
    result = run_host(host)

    assert result["violations"], "channel_bound=0 must trip the live checker"
    with open(os.path.join(flight_dir, "flight.json"), encoding="utf-8") as stream:
        meta = json.load(stream)
    assert meta["reason"] in ("verdict-fail", "violations")
    assert meta["context"]["host_index"] == host.host_index

    # The dump is a replayable witness: the offline judge reaches the
    # same channel-bound FAIL from the dumped artifacts alone.
    events = merge_events(
        load_events_path(os.path.join(flight_dir, "trace.jsonl")),
        load_events_path(os.path.join(flight_dir, "wire.jsonl")),
    )
    edges = sorted(ring(3).edges)
    verdict = replay(edges, events, CheckConfig(channel_bound=0))
    assert verdict.properties["channel-bound"].status == "fail"
