"""Property-based tests (hypothesis) for core data structures and invariants."""


from hypothesis import given, settings, strategies as st

from repro.graphs.coloring import dsatur_coloring, greedy_coloring, validate_coloring
from repro.graphs.conflict import ConflictGraph
from repro.sim.events import EventPriority, EventQueue
from repro.sim.rng import RandomStreams
from repro.trace.analysis import eating_intervals, exclusion_violations, hungry_sessions
from repro.trace.events import EATING, HUNGRY, THINKING
from repro.trace.recorder import TraceRecorder

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def graphs(max_nodes=12):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_nodes))
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
        return ConflictGraph(range(n), edges)

    return build()


@st.composite
def schedules(draw, max_events=40):
    """A list of (time, priority, label) scheduling requests."""
    count = draw(st.integers(min_value=0, max_value=max_events))
    items = []
    for i in range(count):
        time = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
        priority = draw(st.sampled_from(list(EventPriority)))
        items.append((time, priority, i))
    return items


@st.composite
def phase_histories(draw, max_cycles=8):
    """Per-process alternating thinking→hungry→eating→thinking histories."""
    n = draw(st.integers(min_value=1, max_value=4))
    trace = TraceRecorder()
    per_pid = {}
    for pid in range(n):
        cycles = draw(st.integers(min_value=0, max_value=max_cycles))
        t = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        events = []
        for _ in range(cycles):
            t += draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
            events.append((t, HUNGRY))
            t += draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
            events.append((t, EATING))
            t += draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
            events.append((t, THINKING))
        # Possibly truncate mid-cycle (end hungry or eating).
        cut = draw(st.integers(min_value=0, max_value=len(events)))
        per_pid[pid] = events[:cut]
    all_events = sorted(
        ((t, pid, phase) for pid, events in per_pid.items() for t, phase in events),
        key=lambda x: x[0],
    )
    previous = {pid: THINKING for pid in range(n)}
    for t, pid, phase in all_events:
        trace.phase_change(t, pid, previous[pid], phase)
        previous[pid] = phase
    return trace, n


# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------
@given(schedules())
@settings(max_examples=200)
def test_event_queue_pops_in_total_order(requests):
    queue = EventQueue()
    for time, priority, label in requests:
        queue.push(time, priority, lambda: None, label=str(label))
    popped = []
    while queue:
        popped.append(queue.pop())
    keys = [e.sort_key() for e in popped]
    assert keys == sorted(keys)
    assert len(popped) == len(requests)


@given(schedules(), st.data())
@settings(max_examples=100)
def test_event_queue_cancellation_preserves_order_of_survivors(requests, data):
    queue = EventQueue()
    events = [
        queue.push(time, priority, lambda: None, label=str(label))
        for time, priority, label in requests
    ]
    to_cancel = data.draw(
        st.lists(st.sampled_from(range(len(events))), unique=True, max_size=len(events))
        if events
        else st.just([])
    )
    for index in to_cancel:
        events[index].cancel()
    survivors = []
    while queue:
        survivors.append(queue.pop())
    expected = sorted(
        (e for i, e in enumerate(events) if i not in set(to_cancel)),
        key=lambda e: e.sort_key(),
    )
    assert [e.label for e in survivors] == [e.label for e in expected]


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=30))
@settings(max_examples=100)
def test_streams_replay_exactly(seed, name):
    a = RandomStreams(seed).stream(name)
    b = RandomStreams(seed).stream(name)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


@given(st.integers(min_value=0, max_value=2**31))
def test_distinct_names_are_decoupled(seed):
    streams = RandomStreams(seed)
    first = streams.stream("alpha").random()
    fresh = RandomStreams(seed)
    fresh.stream("beta").random()  # interleave another stream
    assert fresh.stream("alpha").random() == first


# ----------------------------------------------------------------------
# Colorings
# ----------------------------------------------------------------------
@given(graphs())
@settings(max_examples=150)
def test_greedy_coloring_always_proper_and_bounded(graph):
    coloring = greedy_coloring(graph)
    validate_coloring(graph, coloring)
    assert max(coloring.values(), default=0) <= graph.max_degree


@given(graphs())
@settings(max_examples=150)
def test_dsatur_coloring_always_proper_and_bounded(graph):
    coloring = dsatur_coloring(graph)
    validate_coloring(graph, coloring)
    assert max(coloring.values(), default=0) <= graph.max_degree


# ----------------------------------------------------------------------
# Trace analysis on arbitrary legal histories
# ----------------------------------------------------------------------
@given(phase_histories())
@settings(max_examples=150)
def test_intervals_are_disjoint_and_ordered(history):
    trace, n = history
    for pid in range(n):
        for extract in (eating_intervals, hungry_sessions):
            intervals = extract(trace, pid, horizon=1000.0)
            for a, b in zip(intervals, intervals[1:]):
                assert a.end <= b.start
            for interval in intervals:
                assert interval.start <= interval.end


@given(phase_histories())
@settings(max_examples=150)
def test_hungry_sessions_end_where_meals_begin(history):
    trace, n = history
    for pid in range(n):
        sessions = hungry_sessions(trace, pid, horizon=1000.0)
        meals = eating_intervals(trace, pid, horizon=1000.0)
        served = [s for s in sessions if s.served]
        assert len(served) <= len(meals)
        meal_starts = {m.start for m in meals}
        for session in served:
            assert session.end in meal_starts


@given(phase_histories())
@settings(max_examples=100)
def test_violations_symmetric_in_clique(history):
    trace, n = history
    if n < 2:
        return
    graph = ConflictGraph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])
    violations = exclusion_violations(trace, graph, horizon=1000.0)
    for violation in violations:
        assert violation.start < violation.end
        assert graph.are_neighbors(violation.a, violation.b)
        # The overlap really is covered by meals of both processes.
        meals_a = eating_intervals(trace, violation.a, horizon=1000.0)
        meals_b = eating_intervals(trace, violation.b, horizon=1000.0)
        assert any(m.start <= violation.start and m.end >= violation.end for m in meals_a)
        assert any(m.start <= violation.start and m.end >= violation.end for m in meals_b)
