"""Tests for failure-detector QoS metrics."""

import math

import pytest

from repro.core import AlwaysHungry, DiningTable, heartbeat_detector, scripted_detector
from repro.detectors import detector_qos, suspicion_episodes
from repro.detectors.scripted import MistakeInterval
from repro.graphs import ring
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency
from repro.trace.recorder import TraceRecorder


def hand_trace(events):
    """events: (time, observer, suspect, suspected) tuples."""
    trace = TraceRecorder()
    for time, observer, suspect, suspected in events:
        trace.suspicion_change(time, observer, suspect, suspected)
    return trace


class TestEpisodes:
    def test_closed_episode(self):
        trace = hand_trace([(1.0, 0, 1, True), (4.0, 0, 1, False)])
        episodes = suspicion_episodes(trace, horizon=10.0)
        assert len(episodes) == 1
        assert (episodes[0].start, episodes[0].end) == (1.0, 4.0)
        assert episodes[0].duration == 3.0

    def test_open_episode_closed_at_horizon(self):
        trace = hand_trace([(2.0, 0, 1, True)])
        episodes = suspicion_episodes(trace, horizon=10.0)
        assert episodes[0].end == 10.0

    def test_pairs_tracked_independently(self):
        trace = hand_trace(
            [(1.0, 0, 1, True), (2.0, 1, 0, True), (3.0, 0, 1, False)]
        )
        episodes = suspicion_episodes(trace, horizon=10.0)
        assert len(episodes) == 2
        by_pair = {(e.observer, e.subject): e for e in episodes}
        assert by_pair[(0, 1)].end == 3.0
        assert by_pair[(1, 0)].end == 10.0

    def test_duplicate_sets_do_not_restart_episode(self):
        trace = hand_trace(
            [(1.0, 0, 1, True), (2.0, 0, 1, True), (5.0, 0, 1, False)]
        )
        episodes = suspicion_episodes(trace, horizon=10.0)
        assert len(episodes) == 1
        assert episodes[0].start == 1.0


class TestQosFromScriptedOracle:
    """The scripted oracle has *known* QoS; the metrics must recover it."""

    def run_table(self, *, mistakes=(), crash_plan=None, detection_delay=2.0, horizon=100.0):
        graph = ring(5)
        table = DiningTable(
            graph,
            seed=1,
            detector=scripted_detector(
                convergence_time=50.0 if mistakes else 0.0,
                detection_delay=detection_delay,
                mistakes=mistakes,
            ),
            crash_plan=crash_plan,
        )
        table.run(until=horizon)
        return detector_qos(table.trace, graph, table.crash_plan, horizon=horizon)

    def test_detection_time_recovered_exactly(self):
        report = self.run_table(
            crash_plan=CrashPlan.scripted({2: 10.0}), detection_delay=2.5
        )
        # Both ring-neighbors of 2 detect at exactly crash + 2.5.
        assert report.detection_times == (2.5, 2.5)
        assert report.undetected_crash_pairs == 0
        assert report.mistake_count == 0

    def test_mistakes_recovered_exactly(self):
        report = self.run_table(
            mistakes=(
                MistakeInterval(0, 1, 5.0, 9.0),
                MistakeInterval(3, 4, 20.0, 21.0),
            )
        )
        assert report.mistake_count == 2
        assert report.mistake_durations == (1.0, 4.0)
        assert report.mean_mistake_duration == 2.5
        assert report.detection_times == ()

    def test_mistake_becoming_truth_splits_correctly(self):
        # Suspicion starts at 5 as a mistake; subject crashes at 7: the
        # pre-crash span is a 2.0 mistake, and there is no *detection*
        # episode (the suspicion started before the crash).
        report = self.run_table(
            mistakes=(MistakeInterval(0, 1, 5.0, 9.0),),
            crash_plan=CrashPlan.scripted({1: 7.0}),
            detection_delay=1.0,
        )
        assert 2.0 in report.mistake_durations
        # The other neighbor (2) still detects via completeness.
        assert 1.0 in report.detection_times

    def test_null_detector_reports_undetected(self):
        from repro.core import null_detector

        graph = ring(5)
        table = DiningTable(
            graph,
            seed=1,
            detector=null_detector(),
            crash_plan=CrashPlan.scripted({2: 10.0}),
        )
        table.run(until=100.0)
        report = detector_qos(table.trace, graph, table.crash_plan, horizon=100.0)
        assert report.undetected_crash_pairs == 2
        assert report.detection_times == ()

    def test_mistake_rate_normalization(self):
        report = self.run_table(mistakes=(MistakeInterval(0, 1, 5.0, 9.0),))
        # 1 mistake / (100 t.u. × 10 ordered neighbor pairs on ring-5).
        assert report.mistake_rate == pytest.approx(1 / 1000.0)


class TestQosOfHeartbeat:
    def test_heartbeat_qos_shape_under_gst(self):
        graph = ring(6)
        crash_plan = CrashPlan.scripted({3: 50.0})
        table = DiningTable(
            graph,
            seed=11,
            latency=PartialSynchronyLatency(
                gst=40.0, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
            ),
            detector=heartbeat_detector(interval=1.0, initial_timeout=2.0),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
        )
        table.run(until=400.0)
        report = detector_qos(table.trace, graph, crash_plan, horizon=400.0)
        # Completeness: both neighbors detected the crash, promptly.
        assert report.undetected_crash_pairs == 0
        assert report.worst_detection_time < 30.0
        # The hostile pre-GST period produced real, finite mistakes.
        assert report.mistake_count > 0
        assert all(math.isfinite(d) for d in report.mistake_durations)
        # Mistakes are short (a heartbeat arrival retracts them).
        assert report.mean_mistake_duration < 10.0


class TestHeartbeatVsQuery:
    """Push vs. pull ◇P₁: round trips double the jitter exposure."""

    def _qos(self, detector_factory):
        from repro.core import DiningTable
        graph = ring(6)
        crash_plan = CrashPlan.scripted({3: 50.0})
        table = DiningTable(
            graph,
            seed=11,
            latency=PartialSynchronyLatency(
                gst=40.0, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
            ),
            detector=detector_factory,
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
        )
        table.run(until=400.0)
        return detector_qos(table.trace, graph, crash_plan, horizon=400.0)

    def test_both_complete_and_eventually_accurate(self):
        from repro.core import query_detector

        for factory in (
            heartbeat_detector(interval=1.0, initial_timeout=2.0),
            query_detector(interval=1.0, initial_timeout=2.0),
        ):
            report = self._qos(factory)
            assert report.undetected_crash_pairs == 0
            assert report.mistake_count > 0  # hostile pre-GST period
            assert all(math.isfinite(d) for d in report.mistake_durations)

    def test_query_mistakes_at_least_heartbeat_level(self):
        from repro.core import query_detector

        heartbeat_report = self._qos(heartbeat_detector(interval=1.0, initial_timeout=2.0))
        query_report = self._qos(query_detector(interval=1.0, initial_timeout=2.0))
        # Round trips accumulate jitter from both directions: at equal
        # timeouts the pull detector mistakes at least as much.
        assert query_report.mistake_count >= heartbeat_report.mistake_count
