"""Differential fuzzing: the same plan on both substrates must agree.

Runs each sampled FaultPlan on the discrete-event kernel and on a
loopback AsyncHost (the plan's latency adversary replayed through
``inject_latency`` in scaled wall time), judged informationally
(``judge=False``): every per-property status then depends only on what
the observed stream *proves*, so the two substrates must produce
identical status maps — the strongest cheap claim that the checks
subsystem is genuinely substrate-agnostic and that the live transport
honors the kernel's channel assumptions (FIFO, boundedness).

Marked ``fuzz`` + ``live``: wall-clock asyncio runs.
"""

import pytest

from repro.faults import run_plan_kernel, run_plan_live, sample_plan

pytestmark = [pytest.mark.fuzz, pytest.mark.live]

TIME_SCALE = 0.01


@pytest.mark.parametrize("index", range(4))
def test_kernel_and_live_statuses_agree(index):
    plan = sample_plan(n=4, seed=1, index=index, horizon_floor=40.0)
    kernel = run_plan_kernel(plan, judge=False)
    live = run_plan_live(plan, judge=False, time_scale=TIME_SCALE)
    assert kernel.verdict.statuses() == live.verdict.statuses(), (
        f"substrates disagree on {plan.describe()}"
    )
    # Informational judgement of the pristine algorithm never fails.
    assert kernel.ok and live.ok


def test_live_mutant_fails_like_the_kernel():
    plan = sample_plan(n=4, seed=1, index=0, horizon_floor=40.0, mutant="greedy-eater")
    kernel = run_plan_kernel(plan)
    live = run_plan_live(plan, time_scale=TIME_SCALE)
    assert "wx-safety" in kernel.failed
    assert "wx-safety" in live.failed


def test_live_crash_plan_injects_and_quiesces():
    plan = sample_plan(n=4, seed=1, index=2, horizon_floor=40.0)
    assert plan.crashes  # index 2 is the storm-crash archetype
    live = run_plan_live(plan, time_scale=TIME_SCALE)
    assert live.ok, live.verdict.failed
    for spec in plan.crashes:
        # Actual (virtual-time) crash instant is on schedule.
        assert live.crash_times[spec.pid] == pytest.approx(
            spec.latest_time(), rel=0.5
        )
