"""Unit tests for dining messages, diner state, and workloads."""

import pytest

from repro.core import ScriptedWorkload, message_size_bits
from repro.core.messages import Ack, Fork, ForkRequest, Ping
from repro.core.state import DinerState, NeighborLinks, local_state_bits
from repro.core.workload import AlwaysHungry, PoissonWorkload
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams


class TestMessages:
    def test_all_dining_messages_tagged(self):
        for message in (Ping(0), Ack(0), ForkRequest(0, 1), Fork(0)):
            assert message.layer == "dining"

    def test_fork_request_carries_color(self):
        assert ForkRequest(3, color=7).color == 7

    def test_messages_are_immutable(self):
        with pytest.raises(Exception):
            Ping(0).sender = 5

    def test_size_logarithmic_in_n(self):
        small = message_size_bits(Ping(0), n_processes=8, n_colors=2)
        large = message_size_bits(Ping(0), n_processes=8192, n_colors=2)
        assert large - small == 10  # log2(8192) - log2(8)

    def test_fork_request_larger_than_ping(self):
        ping = message_size_bits(Ping(0), n_processes=16, n_colors=8)
        request = message_size_bits(ForkRequest(0, 1), n_processes=16, n_colors=8)
        assert request == ping + 3  # + log2(colors)


class TestDinerState:
    def test_phases_match_trace_names(self):
        assert DinerState.THINKING.phase == "thinking"
        assert DinerState.HUNGRY.phase == "hungry"
        assert DinerState.EATING.phase == "eating"


class TestNeighborLinks:
    def test_fork_starts_at_higher_color(self):
        high = NeighborLinks.initial(own_color=5, neighbor_color=2)
        assert high.fork and not high.token
        low = NeighborLinks.initial(own_color=2, neighbor_color=5)
        assert low.token and not low.fork

    def test_equal_colors_rejected(self):
        with pytest.raises(ValueError):
            NeighborLinks.initial(3, 3)

    def test_ping_ack_vars_start_false(self):
        links = NeighborLinks.initial(1, 0)
        assert not links.pinged and not links.ack
        assert not links.deferred and not links.replied

    def test_deferring_fork_request_is_token_and_fork(self):
        links = NeighborLinks.initial(1, 0)  # holds fork
        assert not links.deferring_fork_request()
        links.token = True
        assert links.deferring_fork_request()


class TestLocalStateBits:
    def test_scales_linearly_with_degree(self):
        base = local_state_bits(2, 3)
        assert local_state_bits(12, 3) - base == 6 * 10

    def test_color_component_logarithmic(self):
        assert local_state_bits(4, 256) - local_state_bits(4, 2) == 7


class TestAlwaysHungry:
    def test_constant_durations(self):
        workload = AlwaysHungry(eat_time=2.0, think_time=0.5)
        streams = RandomStreams(0)
        assert workload.think_duration(0, streams) == 0.5
        assert workload.eat_duration(0, streams) == 2.0

    def test_max_sessions_retires_diner(self):
        workload = AlwaysHungry(max_sessions=2)
        streams = RandomStreams(0)
        assert workload.think_duration(0, streams) is not None
        assert workload.think_duration(0, streams) is not None
        assert workload.think_duration(0, streams) is None

    def test_max_sessions_per_process(self):
        workload = AlwaysHungry(max_sessions=1)
        streams = RandomStreams(0)
        assert workload.think_duration(0, streams) is not None
        assert workload.think_duration(1, streams) is not None
        assert workload.think_duration(0, streams) is None

    def test_rejects_zero_eat_time(self):
        with pytest.raises(ConfigurationError):
            AlwaysHungry(eat_time=0.0)


class TestPoissonWorkload:
    def test_durations_positive_and_bounded(self):
        workload = PoissonWorkload(hunger_rate=1.0, eat_time_range=(0.5, 2.0))
        streams = RandomStreams(1)
        for _ in range(100):
            assert workload.think_duration(0, streams) >= 0.0
            assert 0.5 <= workload.eat_duration(0, streams) <= 2.0

    def test_per_process_streams_independent(self):
        workload = PoissonWorkload()
        s1, s2 = RandomStreams(1), RandomStreams(1)
        a = [workload.think_duration(0, s1) for _ in range(5)]
        b = []
        for _ in range(5):
            workload.think_duration(9, s2)
            b.append(workload.think_duration(0, s2))
        assert a == b

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonWorkload(hunger_rate=0.0)


class TestScriptedWorkload:
    def test_think_sequence_consumed_then_forever(self):
        workload = ScriptedWorkload({0: [1.0, 2.0]})
        streams = RandomStreams(0)
        assert workload.think_duration(0, streams) == 1.0
        assert workload.think_duration(0, streams) == 2.0
        assert workload.think_duration(0, streams) is None

    def test_unscripted_process_thinks_forever(self):
        workload = ScriptedWorkload({0: [1.0]})
        assert workload.think_duration(7, RandomStreams(0)) is None

    def test_eat_sequence_recycles_last(self):
        workload = ScriptedWorkload({0: [1.0]}, eat={0: [2.0, 3.0]})
        streams = RandomStreams(0)
        assert workload.eat_duration(0, streams) == 2.0
        assert workload.eat_duration(0, streams) == 3.0
        assert workload.eat_duration(0, streams) == 3.0

    def test_default_eat_when_unscripted(self):
        workload = ScriptedWorkload({0: [1.0]}, default_eat=4.0)
        assert workload.eat_duration(0, RandomStreams(0)) == 4.0

    def test_empty_eat_script_rejected(self):
        with pytest.raises(ConfigurationError):
            ScriptedWorkload({0: [1.0]}, eat={0: []})
