"""Unit and integration tests for the query-response ◇P₁."""

import pytest

from repro.core import AlwaysHungry, DiningTable, query_detector
from repro.detectors import Echo, Probe, QueryDetector
from repro.errors import ConfigurationError
from repro.graphs import path, ring
from repro.sim.actor import Actor
from repro.sim.crash import CrashPlan
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, PartialSynchronyLatency
from repro.sim.network import Network


class Host(Actor):
    def __init__(self, pid, detector):
        super().__init__(pid)
        self.agent = detector.agent_for(pid)

    def on_start(self):
        self.agent.start(self)

    def on_message(self, src, message):
        if self.agent.wants(message):
            self.agent.on_message(src, message)


def build(graph, latency, seed=0, **kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=latency)
    detector = QueryDetector(graph, **kwargs)
    hosts = {pid: Host(pid, detector) for pid in graph.nodes}
    for host in hosts.values():
        network.register(host)
    network.start()
    return sim, network, detector


class TestCompleteness:
    def test_crashed_neighbor_eventually_permanently_suspected(self):
        graph = ring(4)
        sim, network, detector = build(graph, FixedLatency(0.5), interval=1.0, initial_timeout=3.0)
        network.crash_at(2, 10.0)
        sim.run(until=100.0)
        assert detector.module_for(1).suspects(2)
        assert detector.module_for(3).suspects(2)
        sim.run(until=300.0)
        assert detector.module_for(1).suspects(2)  # permanent

    def test_no_suspicion_under_synchrony(self):
        graph = ring(4)
        sim, network, detector = build(graph, FixedLatency(0.5), interval=1.0, initial_timeout=3.0)
        sim.run(until=200.0)
        for pid in graph.nodes:
            assert detector.module_for(pid).suspected_neighbors() == frozenset()


class TestEventualAccuracy:
    def test_mistakes_stop_after_gst(self):
        graph = ring(6)
        latency = PartialSynchronyLatency(gst=50.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=0.6)
        sim, network, detector = build(
            graph, latency, seed=23, interval=1.0, initial_timeout=1.5, timeout_increment=1.0
        )
        sim.run(until=60.0)
        assert detector.total_false_retractions() > 0  # hostile pre-GST bites
        sim.run(until=200.0)
        settled = detector.total_false_retractions()
        sim.run(until=700.0)
        assert detector.total_false_retractions() == settled
        for pid in graph.nodes:
            assert detector.module_for(pid).suspected_neighbors() == frozenset()

    def test_round_trip_timeout_adapts(self):
        graph = path(2)
        latency = PartialSynchronyLatency(gst=30.0, min_delay=0.1, pre_gst_max=10.0, post_gst_max=0.5)
        sim, network, detector = build(
            graph, latency, seed=2, interval=1.0, initial_timeout=1.0, timeout_increment=2.0
        )
        sim.run(until=200.0)
        agent = detector.agent_for(0)
        if agent.false_suspicion_retractions:
            assert agent.timeout_of(1) > 1.0


class TestAgentMechanics:
    def test_wants_probes_and_echoes(self):
        detector = QueryDetector(path(2))
        agent = detector.agent_for(0)
        assert agent.wants(Probe(0))
        assert agent.wants(Echo(0))
        assert not agent.wants("other")

    def test_stale_echo_ignored(self):
        graph = path(2)
        sim, network, detector = build(graph, FixedLatency(0.5), interval=1.0, initial_timeout=0.6)
        sim.run(until=5.0)
        agent = detector.agent_for(0)
        # Hand it an ancient echo: must not clear anything or crash.
        agent.on_message(1, Echo(-5))

    def test_echo_from_non_neighbor_ignored(self):
        graph = path(3)
        sim, network, detector = build(graph, FixedLatency(0.5))
        detector.agent_for(0).on_message(2, Echo(0))  # 0-2 not neighbors

    def test_agent_rejects_wrong_actor(self):
        detector = QueryDetector(path(2))
        sim = Simulator()
        network = Network(sim)
        host = Host(1, detector)
        network.register(host)
        with pytest.raises(ConfigurationError):
            detector.agent_for(0).start(host)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            QueryDetector(path(2), interval=0.0)
        with pytest.raises(ConfigurationError):
            QueryDetector(path(2), initial_timeout=0.0)


class TestDiningOverQueryDetector:
    def test_full_guarantees_end_to_end(self):
        graph = ring(8)
        crash_plan = CrashPlan.scripted({2: 30.0, 6: 60.0})
        table = DiningTable(
            graph,
            seed=14,
            latency=PartialSynchronyLatency(
                gst=50.0, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
            ),
            detector=query_detector(interval=1.0, initial_timeout=2.5, timeout_increment=1.0),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
        )
        table.run(until=700.0)
        assert table.starving_correct(patience=250.0) == []
        assert table.violations_after(300.0) == []
        assert table.max_overtaking(after=350.0) <= 2
        assert table.occupancy.max_occupancy <= 4
