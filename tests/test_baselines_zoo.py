"""The message-passing classics: bakery, Ricart–Agrawala, Lehmann–Rabin.

Known-outcome oracles (each classic must fail in exactly the way the
literature says it fails, and nowhere else) plus property-based checks
of the two mechanisms the oracles lean on: the bakery's ticket order and
Lehmann–Rabin's seeded determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BakeryDiner,
    LehmannRabinDiner,
    RicartAgrawalaDiner,
    bakery_table,
    lehmann_rabin_table,
    ricart_agrawala_table,
)
from repro.baselines.bakery import bakery_precedes
from repro.baselines.bakeoff import section7_budget_bits
from repro.core.table import null_detector
from repro.detectors import NullDetector
from repro.faults import CrashSpec, FaultPlan, run_plan_kernel
from repro.faults.engine import JudgeWindows
from repro.graphs import ring, topologies
from repro.obs import MessageBitsInstrument
from repro.sim.crash import CrashPlan


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory,diner_type",
    [
        (bakery_table, BakeryDiner),
        (ricart_agrawala_table, RicartAgrawalaDiner),
        (lehmann_rabin_table, LehmannRabinDiner),
    ],
)
def test_factory_wires_null_detector_and_diner(ring6, factory, diner_type):
    table = factory(ring6, seed=1)
    assert isinstance(table.detector, NullDetector)
    assert all(isinstance(d, diner_type) for d in table.diners.values())


@pytest.mark.parametrize(
    "factory", [bakery_table, ricart_agrawala_table, lehmann_rabin_table]
)
def test_factory_rejects_detector_override(ring6, factory):
    with pytest.raises(TypeError):
        factory(ring6, detector=null_detector())


# ----------------------------------------------------------------------
# Oracle: the bakery is safe but blows the Section 7 bit budget
# ----------------------------------------------------------------------
def test_bakery_safe_but_exceeds_section7_bit_budget(ring6):
    """No dining-safety checker trips, yet sustained contention drives
    ticket numbers — and thus frame sizes — past the O(log n) budget the
    paper's own messages never exceed."""
    table = bakery_table(ring6, seed=1)
    n_colors = len(set(table.coloring.values()))
    bits = MessageBitsInstrument(n_processes=6, n_colors=n_colors)
    table.network.add_monitor(bits)
    table.run(until=80.0)
    assert table.violations() == []
    assert table.starving_correct(patience=40.0) == []
    budget = section7_budget_bits(ring6)
    assert bits.max_bits() > budget, (
        f"bakery frames stayed within {budget} bits; tickets never grew?"
    )


def test_bakery_tickets_grow_with_contention_not_n(ring6):
    """The largest ticket a saturated run chooses keeps climbing with the
    horizon — the unbounded-register cost the bakery pays for FCFS."""
    def max_ticket(until):
        table = bakery_table(ring6, seed=1).run(until=until)
        return max(d.last_number for d in table.diners.values())

    assert max_ticket(80.0) > max_ticket(10.0) > 0


# ----------------------------------------------------------------------
# Oracle: Ricart–Agrawala starves once a neighbor crashes mid-meal
# ----------------------------------------------------------------------
def test_ricart_agrawala_fails_progress_under_eating_crash():
    plan = FaultPlan(
        topology="ring",
        n=5,
        seed=1,
        horizon=20.0,
        crashes=(CrashSpec(pid=2, when="eating", after=1.0, deadline=5.0),),
    )
    result = run_plan_kernel(
        plan,
        diner_factory=RicartAgrawalaDiner,
        detector=null_detector(),
        windows=JudgeWindows(settle=5.0, patience=12.0, after=5.0, grace=12.0),
        stop_on_violation=False,
    )
    assert result.crash_times  # the trigger actually fired
    assert list(result.failed) == ["progress"], result.verdict.statuses()


def test_ricart_agrawala_clean_run_is_clean(ring6):
    table = ricart_agrawala_table(ring6, seed=1).run(until=60.0)
    assert table.violations() == []
    assert table.starving_correct(patience=30.0) == []
    # One request earns exactly one (possibly deferred) reply, so at the
    # horizon cutoff the deficit is at most one in-flight request per
    # directed edge — the 2-messages-per-edge-per-session economy.
    stats = table.message_stats.by_type
    unanswered = stats["RaRequest"] - stats["RaReply"]
    assert 0 <= unanswered <= 2 * len(ring6.edges)


# ----------------------------------------------------------------------
# Oracle: Lehmann–Rabin keeps exclusion on every seed of an ensemble
# ----------------------------------------------------------------------
LR_SEEDS = range(20)


def test_lehmann_rabin_exclusion_holds_on_every_seed():
    """Safety is deterministic even though progress is only probabilistic:
    across a 20-seed ensemble no run ever trips a dining-safety checker,
    and the ensemble as a whole makes progress."""
    meals_by_seed = []
    for seed in LR_SEEDS:
        table = lehmann_rabin_table(ring(5), seed=seed).run(until=30.0)
        assert table.violations() == [], f"seed {seed} violated exclusion"
        meals_by_seed.append(sum(table.eat_counts().values()))
    # Progress with probability 1: every seeded run of this length eats.
    assert all(meals > 0 for meals in meals_by_seed)


def test_lehmann_rabin_crash_starves_transitively(ring6):
    """A crash mid-protocol wedges a neighbor on its blocking first-fork
    wait, and the wedge chains: diners far from the victim starve too
    (the crash-obliviousness the bake-off's expected map records)."""
    table = lehmann_rabin_table(
        ring6, seed=1, crash_plan=CrashPlan.scripted({2: 5.0})
    )
    table.run(until=120.0)
    starving = set(table.starving_correct(patience=60.0))
    assert starving & {1, 3}  # at least one ring-neighbor of the victim
    assert 2 not in starving  # the crashed diner is not judged
    assert starving - {1, 3}  # and the wedge spreads beyond the neighbors


# ----------------------------------------------------------------------
# Property: bakery tickets are totally ordered, lexicographically
# ----------------------------------------------------------------------
tickets = st.tuples(
    st.integers(min_value=1, max_value=2**32), st.integers(min_value=0, max_value=2**16)
)


@settings(max_examples=200, deadline=None)
@given(tickets, tickets)
def test_bakery_precedes_is_lexicographic(a, b):
    assert bakery_precedes(a, b) == (a < b)


@settings(max_examples=200, deadline=None)
@given(tickets, tickets)
def test_bakery_precedes_is_a_total_order(a, b):
    if a == b:
        assert not bakery_precedes(a, b) and not bakery_precedes(b, a)
    else:
        # Totality + antisymmetry: exactly one direction wins, so two
        # contenders never both enter (the mutual-exclusion core).
        assert bakery_precedes(a, b) != bakery_precedes(b, a)


# ----------------------------------------------------------------------
# Property: Lehmann–Rabin is deterministic per scenario seed
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_lehmann_rabin_same_seed_same_trace(seed):
    """The randomized algorithm is replayable: its coin flips derive from
    the scenario seed, so equal seeds give byte-identical trace
    fingerprints (golden-pinnable like every deterministic scheduler)."""
    graph = topologies.ring(4)
    first = lehmann_rabin_table(graph, seed=seed).run(until=8.0)
    second = lehmann_rabin_table(graph, seed=seed).run(until=8.0)
    assert first.fingerprint() == second.fingerprint()


def test_lehmann_rabin_different_seeds_diverge():
    graph = topologies.ring(4)
    fingerprints = {
        lehmann_rabin_table(graph, seed=seed).run(until=8.0).fingerprint()
        for seed in range(6)
    }
    assert len(fingerprints) > 1  # the coin flips actually depend on the seed
