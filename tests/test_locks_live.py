"""Live lease service: real sockets, crash-reclamation, both transports.

The reclamation story the lease service owes Algorithm 1's ◇P₁ path: a
client acquires, its connection is killed mid-lease (no release frame is
ever written), the TTL — which *is* the serving diner's eat timer —
lapses, and the next contender is granted.  Judged end to end on a real
listener over both unix and TCP sockets, with the host's standard
checker suite attached and zero leaked leases at shutdown.
"""

import asyncio
import os
import time

import pytest

from repro.locks.client import LockClient
from repro.locks.service import DENY_UNKNOWN
from repro.net.cluster import ClusterSpec, _allocate_addresses, build_host
from repro.obs.tracing import SPAN_EATING, _SID_OF_NAME

pytestmark = pytest.mark.live

_EATING_SID = _SID_OF_NAME[SPAN_EATING]


def _serving_spec(transport: str, run_dir: str) -> ClusterSpec:
    """A one-process, three-diner serving spec, launched in-process."""
    spec = ClusterSpec(
        topology="ring",
        n=3,
        processes=1,
        duration=3.0,
        seed=11,
        heartbeat_interval=0.1,
        initial_timeout=0.3,
        timeout_increment=0.1,
        transport=transport,
        serve_locks=True,
        run_dir=run_dir,
    )
    spec.placement = spec.default_placement()
    spec.addresses = _allocate_addresses(spec)
    spec.epoch = time.time() + 0.4
    return spec


async def _connect(transport, address, *, client_index, deadline=5.0):
    """Dial with retry: the in-process listener binds moments after run()."""
    end = time.monotonic() + deadline
    while True:
        client = LockClient(transport, address, client_index=client_index)
        try:
            return await client.connect()
        except OSError:
            if time.monotonic() > end:
                raise
            await asyncio.sleep(0.05)


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_lease_reclaimed_after_connection_killed_mid_lease(transport, tmp_path):
    """Kill the holder's socket mid-lease: the TTL reclaims the resource
    and the queued contender is granted — zero leaked leases, clean
    verdict — on both substrates the service can listen on."""
    spec = _serving_spec(transport, str(tmp_path / "run"))
    os.makedirs(spec.run_dir, exist_ok=True)  # unix sockets live here
    host = build_host(spec, 0)

    async def scenario():
        runner = asyncio.ensure_future(host.run())
        try:
            address = spec.addresses[0]
            victim = await _connect(spec.transport, address, client_index=0)
            contender = await _connect(spec.transport, address, client_index=1)
            # Diners start dining at the shared epoch; request after it.
            await asyncio.sleep(max(0.0, spec.epoch - time.time()) + 0.2)

            held = await victim.acquire("r1", ttl_ms=600, timeout=5.0)
            assert held.granted, held.reason
            # The grant frame is stamped with the serving diner's open
            # eating span: the causal proof Algorithm 1 scheduled it.
            assert held.context is not None and held.context[1] == _EATING_SID

            # Kill the holding connection mid-lease — abort the transport
            # so no release (nor a clean shutdown handshake) ever leaves.
            victim._writer.transport.abort()
            await victim.close()

            started = time.perf_counter()
            reclaimed = await contender.acquire("r1", ttl_ms=150, timeout=5.0)
            waited = time.perf_counter() - started
            assert reclaimed.granted, reclaimed.reason
            assert reclaimed.lease_id != held.lease_id
            # The contender queued behind the orphaned lease: its grant
            # could only ride the reclamation, not a fresh idle meal.
            assert waited <= 2.0

            denied = await contender.acquire("nope", ttl_ms=100, timeout=5.0)
            assert not denied.granted and denied.reason == DENY_UNKNOWN

            await contender.release(reclaimed)
            await contender.close()
        finally:
            await runner

    asyncio.run(scenario())

    result = host.result()
    assert result["violations"] == []
    assert host.verdict().ok

    locks = result["locks"]
    counters = locks["counters"]
    assert counters["grants"] == 2
    assert counters["expiries"] == 1  # the orphaned lease, TTL-reclaimed
    assert counters["releases"] == 1  # the contender's clean return
    assert counters["abandons"] == 1  # the killed connection's session
    assert locks["denies"] == {DENY_UNKNOWN: 1}
    assert locks["active_leases"] == 0
    assert locks["leaked_leases"] == 0
