"""Model-based and leak-regression tests for the calendar event queue.

The queue rework (calendar buckets + sorted-bucket drain cursor + far
heap + late-arrival heap) replaced a single binary heap whose semantics
were easy to eyeball.  These tests pin the new implementation to a naive
reference model — a sorted list popped from the front — over random
push/cancel/pop interleavings, and guard the dead-entry compaction bound
that the old heap lacked (mass cancellation used to leave unbounded
garbage tuples behind).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventPriority, EventQueue
from repro.sim.kernel import Simulator

PRIORITIES = tuple(EventPriority)


def _noop() -> None:
    return None


class _Reference:
    """Naive sorted-list queue: the semantics the calendar queue must match."""

    def __init__(self) -> None:
        self.entries: list = []  # (time, int(priority), sequence) of live events

    def push(self, key: tuple) -> None:
        self.entries.append(key)
        self.entries.sort()

    def cancel(self, key: tuple) -> None:
        self.entries.remove(key)

    def pop(self) -> tuple:
        return self.entries.pop(0)

    def __len__(self) -> int:
        return len(self.entries)


# Times are drawn from a lattice of quarter-width ticks so the model hits
# every structural case: same-tick ties (priority/sequence ordering),
# same-bucket neighbors, ring-distance buckets, and far-heap times beyond
# span * bucket_width = 256 * 0.05 = 12.8.
_TIMES = st.integers(min_value=0, max_value=2000).map(lambda q: q * 0.0125)


@st.composite
def _operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=60))):
        kind = draw(
            st.sampled_from(("push", "push", "push", "cancel", "pop", "double-cancel"))
        )
        ops.append(
            (kind, draw(_TIMES), draw(st.sampled_from(PRIORITIES)), draw(st.integers(0, 10**9)))
        )
    return ops


class TestCalendarQueueMatchesReference:
    @given(_operations())
    @settings(max_examples=250, deadline=None)
    def test_random_interleavings(self, ops):
        queue = EventQueue()
        reference = _Reference()
        handles = {}  # sort key -> live Event handle

        for kind, time_value, priority, pick in ops:
            if kind == "push":
                event = queue.push(time_value, priority, _noop, label="model")
                key = (event.time, int(event.priority), event.sequence)
                handles[key] = event
                reference.push(key)
            elif kind in ("cancel", "double-cancel") and handles:
                key = sorted(handles)[pick % len(handles)]
                event = handles.pop(key)
                event.cancel()
                if kind == "double-cancel":
                    event.cancel()  # idempotent: must not double-count
                reference.cancel(key)
            elif kind == "pop" and reference:
                expected = reference.pop()
                event = queue.pop()
                assert (event.time, int(event.priority), event.sequence) == expected
                handles.pop(expected, None)
            # queue_depth accounting must agree after every operation
            assert len(queue) == len(reference)
            assert bool(queue) == bool(reference)

        # Drain: remaining pops come out in exact reference order.
        while reference:
            expected = reference.pop()
            event = queue.pop()
            assert (event.time, int(event.priority), event.sequence) == expected
        assert len(queue) == 0
        assert not queue

    @given(_operations())
    @settings(max_examples=100, deadline=None)
    def test_peek_time_tracks_reference_front(self, ops):
        queue = EventQueue()
        reference = _Reference()
        handles = {}
        for kind, time_value, priority, pick in ops:
            if kind == "push":
                event = queue.push(time_value, priority, _noop)
                key = (event.time, int(event.priority), event.sequence)
                handles[key] = event
                reference.push(key)
            elif kind in ("cancel", "double-cancel") and handles:
                key = sorted(handles)[pick % len(handles)]
                handles.pop(key).cancel()
                reference.cancel(key)
            elif kind == "pop" and reference:
                handles.pop(reference.pop(), None)
                queue.pop()
            if reference:
                assert queue.peek_time() == reference.entries[0][0]
            else:
                assert queue.peek_time() is None


class TestDeadEntryCompaction:
    """Regression for the dead-entry leak: cancelled tuples must not pile up."""

    def test_cancel_10k_timers_keeps_storage_bounded(self):
        queue = EventQueue()
        events = [
            queue.push(1.0 + (i % 97) * 0.25, EventPriority.TIMER, _noop)
            for i in range(10_000)
        ]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        # The compaction threshold is max(64, live); with nothing live the
        # storage must collapse to at most one threshold's worth of garbage,
        # not the 10,000 dead tuples the old heap retained.
        assert queue.storage_size() <= 128

    def test_mass_cancel_with_survivors_stays_near_live_size(self):
        queue = EventQueue()
        doomed = [
            queue.push(5.0 + (i % 311) * 0.1, EventPriority.TIMER, _noop)
            for i in range(10_000)
        ]
        survivors = [
            queue.push(2.0 + i * 0.01, EventPriority.TIMER, _noop) for i in range(100)
        ]
        for event in doomed:
            event.cancel()
        assert len(queue) == 100
        # Garbage is bounded by the live population (plus the 64-entry
        # hysteresis floor), independent of how many cancels happened.
        assert queue.storage_size() <= 2 * len(survivors) + 64
        popped = [queue.pop() for _ in range(100)]
        assert [e.sequence for e in popped] == [e.sequence for e in survivors]

    def test_simulator_timer_churn_storage_bounded(self):
        sim = Simulator(seed=0)
        pending = [sim.schedule_after(50.0, _noop, label="doomed") for _ in range(10_000)]
        keeper = sim.schedule_after(1.0, _noop, label="keeper")
        for event in pending:
            event.cancel()
        assert sim.queue_depth == 1
        assert sim._queue.storage_size() <= 128
        sim.run(until=2.0)
        assert not keeper.cancelled
        assert sim.queue_depth == 0

    def test_interleaved_cancel_pop_accounting(self):
        # Cancelling an entry that has already reached the drain cursor's
        # bucket exercises the lazy-skip path in _settle; counts must stay
        # exact through a mix of cancels before and after partial drains.
        queue = EventQueue()
        first = [queue.push(0.1 * i, EventPriority.TIMER, _noop) for i in range(1, 51)]
        for event in first[::2]:
            event.cancel()
        drained = []
        for _ in range(10):
            drained.append(queue.pop().sequence)
        assert drained == [e.sequence for e in first[1::2]][:10]
        late = [queue.push(100.0, EventPriority.TIMER, _noop) for _ in range(5)]
        for event in late:
            event.cancel()
        remaining = [e for e in first[1::2]][10:]
        assert len(queue) == len(remaining)
        assert [queue.pop().sequence for _ in remaining] == [
            e.sequence for e in remaining
        ]
