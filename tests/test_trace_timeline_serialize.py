"""Tests for timeline rendering and trace serialization."""

import io

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.errors import ConfigurationError
from repro.graphs import ring
from repro.sim.crash import CrashPlan
from repro.trace import (
    EATING,
    HUNGRY,
    THINKING,
    TraceRecorder,
    dump_jsonl,
    load_jsonl,
    render_meal_ledger,
    render_timeline,
)
from repro.trace.serialize import record_from_dict, record_to_dict


def sample_trace():
    trace = TraceRecorder()
    trace.phase_change(1.0, 0, THINKING, HUNGRY)
    trace.phase_change(2.0, 0, HUNGRY, EATING)
    trace.phase_change(4.0, 0, EATING, THINKING)
    trace.phase_change(1.0, 1, THINKING, HUNGRY)
    trace.crash(5.0, 1)
    return trace


class TestTimeline:
    def test_lane_glyphs_match_phases(self):
        text = render_timeline(sample_trace(), end=10.0, width=10)
        lanes = [line for line in text.splitlines() if "|" in line]
        lane0 = lanes[0].split("|")[1]
        # Buckets of 1.0: thinking, hungry, eating, eating, thinking...
        assert lane0[0] == "."
        assert lane0[1] == "h"
        assert lane0[2] == "#"
        assert lane0[3] == "#"
        assert lane0[4] == "."

    def test_crash_glyph_appears_then_blank(self):
        text = render_timeline(sample_trace(), end=10.0, width=10)
        lane1 = [line for line in text.splitlines() if line.strip().startswith("1 ")][0]
        body = lane1.split("|")[1]
        assert "x" in body
        assert body.endswith(" ")

    def test_pid_filter(self):
        text = render_timeline(sample_trace(), end=10.0, width=10, pids=[0])
        assert "1 |" not in text

    def test_empty_trace(self):
        assert render_timeline(TraceRecorder(), end=10.0) == "(empty trace)"

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            render_timeline(sample_trace(), start=5.0, end=5.0)
        with pytest.raises(ConfigurationError):
            render_timeline(sample_trace(), end=10.0, width=3)

    def test_real_run_renders(self):
        table = DiningTable(
            ring(5),
            seed=2,
            detector=scripted_detector(),
            crash_plan=CrashPlan.scripted({2: 25.0}),
            workload=AlwaysHungry(eat_time=2.0, think_time=0.5),
        ).run(until=60.0)
        text = render_timeline(table.trace, end=60.0, width=60)
        assert text.count("|") == 10  # 5 lanes, 2 bars each
        assert "#" in text and "x" in text

    def test_meal_ledger(self):
        table = DiningTable(
            ring(5),
            seed=2,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=1.0, think_time=0.5),
        ).run(until=40.0)
        text = render_meal_ledger(table.trace, 1, horizon=40.0, limit=3)
        assert "diner 1" in text
        assert "waited" in text
        assert "more" in text  # limit truncation visible


class TestSerialization:
    def test_round_trip_preserves_records(self):
        trace = sample_trace()
        buffer = io.StringIO()
        count = dump_jsonl(trace, buffer)
        assert count == len(trace)
        loaded = load_jsonl(buffer.getvalue().splitlines())
        assert list(loaded) == list(trace)

    def test_round_trip_real_run(self):
        table = DiningTable(
            ring(5),
            seed=3,
            detector=scripted_detector(convergence_time=10.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({1: 15.0}),
        ).run(until=60.0)
        buffer = io.StringIO()
        dump_jsonl(table.trace, buffer)
        loaded = load_jsonl(buffer.getvalue().splitlines())
        assert list(loaded) == list(table.trace)

    def test_record_dict_round_trip_all_kinds(self):
        trace = TraceRecorder()
        trace.phase_change(1.0, 0, THINKING, HUNGRY)
        trace.doorway_change(2.0, 0, True)
        trace.suspicion_change(3.0, 0, 1, True)
        trace.crash(4.0, 1)
        trace.protocol_step(5.0, 0, "recolor", "0->2")
        trace.transient_fault(6.0, 0, "injected")
        for record in trace:
            assert record_from_dict(record_to_dict(record)) == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_dict({"kind": "martian", "time": 1.0})

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_dict({"kind": "crash", "time": 1.0})  # missing pid

    def test_invalid_json_line_rejected(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            load_jsonl(['{"kind": "crash", "time": 1.0, "pid": 0}', "{broken"])

    def test_blank_lines_skipped(self):
        loaded = load_jsonl(["", '{"kind": "crash", "time": 1.0, "pid": 0}', "  "])
        assert len(loaded) == 1

    def test_unserializable_record_rejected(self):
        trace = TraceRecorder()
        trace.record(object())
        with pytest.raises(ConfigurationError):
            dump_jsonl(trace, io.StringIO())

    def test_dump_and_load_path(self, tmp_path):
        from repro.trace import dump_path, load_path

        trace = sample_trace()
        path = str(tmp_path / "trace.jsonl")
        dump_path(trace, path)
        assert list(load_path(path)) == list(trace)
