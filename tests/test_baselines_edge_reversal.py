"""Tests for the scheduling-by-edge-reversal baseline."""

import pytest

from repro.baselines import EdgeReversalDiner, edge_reversal_table
from repro.core import AlwaysHungry
from repro.detectors import NullDetector
from repro.graphs import clique, grid, ring
from repro.sim.crash import CrashPlan

WORKLOAD = dict(eat_time=1.0, think_time=0.01)


def ser(graph, **kwargs):
    kwargs.setdefault("workload", AlwaysHungry(**WORKLOAD))
    kwargs.setdefault("seed", 1)
    return edge_reversal_table(graph, **kwargs)


class TestWiring:
    def test_factory_fixes_detector_and_diner(self):
        table = ser(ring(6))
        assert isinstance(table.detector, NullDetector)
        assert all(isinstance(d, EdgeReversalDiner) for d in table.diners.values())

    def test_factory_rejects_overrides(self):
        with pytest.raises(TypeError):
            edge_reversal_table(ring(6), detector=None)
        with pytest.raises(TypeError):
            edge_reversal_table(ring(6), diner_factory=EdgeReversalDiner)

    def test_initial_orientation_is_by_color(self):
        table = ser(ring(6))
        for a, b in table.graph.edges:
            higher = a if table.coloring[a] > table.coloring[b] else b
            lower = b if higher == a else a
            assert table.diners[higher].holds_fork(lower)
            assert not table.diners[lower].holds_fork(higher)

    def test_initial_sinks_are_local_color_maxima(self):
        table = ser(grid(3, 3))
        for pid, diner in table.diners.items():
            is_max = all(
                table.coloring[pid] > table.coloring[nbr]
                for nbr in table.graph.neighbors(pid)
            )
            assert diner.is_sink == is_max


class TestCrashFreeGuarantees:
    @pytest.mark.parametrize("graph", [ring(6), grid(3, 3), clique(5)], ids=["ring", "grid", "clique"])
    def test_perpetual_weak_exclusion(self, graph):
        table = ser(graph).run(until=200.0)
        assert table.violations() == []

    def test_everyone_scheduled_fairly(self):
        table = ser(ring(6)).run(until=200.0)
        meals = table.eat_counts()
        # SER on a symmetric always-hungry ring is perfectly round-robin.
        assert len(set(meals.values())) == 1
        assert table.starving_correct(patience=80.0) == []

    def test_no_request_traffic(self):
        table = ser(ring(6)).run(until=100.0)
        assert set(table.message_stats.by_type) == {"Fork"}

    def test_fork_uniqueness_invariant_holds(self):
        # check_invariants defaults on; a duplicated fork would raise.
        ser(grid(3, 3)).run(until=200.0)


class TestCrashFragility:
    def test_one_crash_starves_the_ring(self):
        table = ser(ring(6), crash_plan=CrashPlan.scripted({2: 20.0}))
        table.run(until=400.0)
        starving = table.starving_correct(patience=150.0)
        # The dead node pins the orientation; starvation cascades to all.
        assert set(starving) == {0, 1, 3, 4, 5}

    def test_starvation_stays_local_when_graph_disconnects(self):
        # Two disjoint triangles: a crash in one leaves the other healthy.
        from repro.graphs import ConflictGraph

        graph = ConflictGraph(range(6), [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        table = ser(graph, crash_plan=CrashPlan.scripted({0: 20.0}))
        table.run(until=400.0)
        starving = set(table.starving_correct(patience=150.0))
        assert starving == {1, 2}
        meals = table.eat_counts()
        assert all(meals[pid] > 50 for pid in (3, 4, 5))


class TestAsDaemon:
    def test_schedules_protocol_crash_free(self):
        from repro.core import DistributedDaemon, null_detector
        from repro.stabilization import GreedyRecoloring

        graph = grid(3, 3)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=2,
            detector=null_detector(),
            diner_factory=EdgeReversalDiner,
        )
        daemon.run(until=200.0)
        assert daemon.converged()
        assert daemon.sharing_violations == 0  # perpetual exclusion

    def test_fails_as_daemon_under_crash(self):
        from repro.core import DistributedDaemon, null_detector
        from repro.stabilization import GreedyRecoloring

        graph = ring(6)
        protocol = GreedyRecoloring(graph)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=2,
            detector=null_detector(),
            diner_factory=EdgeReversalDiner,
            crash_plan=CrashPlan.scripted({2: 0.005}),
        )
        # Once 2 is dead, its neighbor 1 gets at most its initial meals and
        # is then pinned (the fork from 2 never returns).  A collision
        # planted on 1 against the frozen register of 2 is repairable only
        # by 1 — which the crash-oblivious SER daemon has starved.
        daemon.table.sim.schedule_at(
            50.0, lambda: daemon.corrupt_register(1, protocol.read(2))
        )
        daemon.run(until=400.0)
        assert not daemon.converged()
        assert (1, 2) in protocol.conflict_edges(daemon.live_pids())

        # The wait-free daemon repairs the identical scenario.
        from repro.core import scripted_detector

        protocol2 = GreedyRecoloring(graph)
        daemon2 = DistributedDaemon(
            graph,
            protocol2,
            seed=2,
            detector=scripted_detector(detection_delay=1.0),
            crash_plan=CrashPlan.scripted({2: 0.005}),
        )
        daemon2.table.sim.schedule_at(
            50.0, lambda: daemon2.corrupt_register(1, protocol2.read(2))
        )
        daemon2.run(until=400.0)
        assert daemon2.converged()
