"""Tests for the declarative scenario registry, runner, and result cache."""

import pytest

from repro.scenarios import (
    ResultCache,
    Runner,
    ScenarioSpec,
    aggregate_rows,
    all_scenarios,
    get_scenario,
    map_seeds,
    scenario_names,
)

EXPECTED_NAMES = (
    "e1", "e2", "e3", "e4", "e4b", "e5", "e6",
    "e7", "e7b", "e8", "e8b", "e9", "e10",
    "load_sweep", "churn_sweep", "dme_bakeoff",
    "fuzz_clean", "fuzz_differential", "fuzz_mutation",
)

# Small but real workload shared by the determinism/cache tests: the E6
# space-accounting scenario restricted to a single 8-process ring.
SMALL_OVERRIDES = {"topology_names": ("ring",), "sizes": (8,)}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(scenario_names()) == set(EXPECTED_NAMES)

    def test_scenarios_carry_table_metadata(self):
        for scenario in all_scenarios():
            assert scenario.title, scenario.name
            assert scenario.claim, scenario.name
            assert scenario.columns, scenario.name
            assert scenario.spec.seeds, scenario.name

    def test_experiment_family_derived_from_name(self):
        assert get_scenario("e4b").experiment == "e4"
        assert get_scenario("e7b").experiment == "e7"
        assert get_scenario("e10").experiment == "e10"

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="e1"):
            get_scenario("e99")


class TestScenarioSpec:
    def test_fingerprint_is_stable(self):
        spec = ScenarioSpec(topology=("ring",), seeds=(1, 2), params={"n": 8})
        assert spec.fingerprint(scenario="x", seed=1) == spec.fingerprint(
            scenario="x", seed=1
        )

    def test_fingerprint_sensitive_to_params_and_seed(self):
        spec = ScenarioSpec(params={"n": 8})
        base = spec.fingerprint(scenario="x", seed=1)
        assert spec.fingerprint(scenario="x", seed=2) != base
        assert spec.fingerprint(scenario="y", seed=1) != base
        assert spec.with_overrides(n=9).fingerprint(scenario="x", seed=1) != base

    def test_fingerprint_ignores_param_ordering(self):
        a = ScenarioSpec(params={"n": 8, "m": 2})
        b = ScenarioSpec(params={"m": 2, "n": 8})
        assert a.fingerprint(scenario="x", seed=0) == b.fingerprint(
            scenario="x", seed=0
        )

    def test_with_helpers_do_not_mutate(self):
        spec = ScenarioSpec(seeds=(1,), params={"n": 8})
        spec.with_seeds((3, 4))
        spec.with_overrides(n=12)
        assert spec.seeds == (1,)
        assert spec.params["n"] == 8


class TestRunnerDeterminism:
    def test_parallel_rows_identical_to_serial(self, tmp_path):
        serial = Runner(jobs=1, use_cache=False).run(
            "e6", seeds=(0, 1, 2, 3), overrides=SMALL_OVERRIDES
        )
        parallel = Runner(jobs=4, use_cache=False).run(
            "e6", seeds=(0, 1, 2, 3), overrides=SMALL_OVERRIDES
        )
        assert serial.rows == parallel.rows
        assert [sr.seed for sr in serial.seed_results] == [0, 1, 2, 3]
        assert [sr.seed for sr in parallel.seed_results] == [0, 1, 2, 3]

    def test_map_seeds_parallel_matches_serial(self):
        from repro.experiments.e1_safety import run_safety

        kwargs = dict(
            topology_names=("ring",), n=6, convergence_times=(20.0,), horizon=150.0
        )
        serial = map_seeds(run_safety, seeds=(0, 1, 2), kwargs=kwargs, jobs=1)
        parallel = map_seeds(run_safety, seeds=(0, 1, 2), kwargs=kwargs, jobs=3)
        assert serial == parallel

    def test_unpicklable_run_falls_back_to_serial(self):
        def local_run(*, seed: int):
            return [{"seed": seed}]

        rows = map_seeds(local_run, seeds=(1, 2), jobs=2)
        assert rows == [[{"seed": 1}], [{"seed": 2}]]


class TestResultCache:
    def test_cached_rows_equal_cold_rows(self, tmp_path):
        cold = Runner(jobs=1, use_cache=True, cache_dir=tmp_path).run(
            "e6", seeds=(0, 1), overrides=SMALL_OVERRIDES
        )
        assert cold.cache_hits == 0
        warm = Runner(jobs=1, use_cache=True, cache_dir=tmp_path).run(
            "e6", seeds=(0, 1), overrides=SMALL_OVERRIDES
        )
        assert warm.cache_hits == 2
        assert warm.rows == cold.rows

    def test_no_cross_talk_between_keys(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store("e6", "aaaa", [{"n": 1}])
        assert cache.load("e6", "bbbb") is None
        assert cache.load("e1", "aaaa") is None

    def test_corrupt_entry_ignored(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store("e6", "aaaa", [{"n": 1}])
        cache.path_for("e6", "aaaa").write_text("{not json")
        assert cache.load("e6", "aaaa") is None

    def test_clear_scopes_to_scenario(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.store("e6", "aaaa", [{"n": 1}])
        cache.store("e1", "bbbb", [{"n": 2}])
        cache.clear(scenario="e6")
        assert cache.load("e6", "aaaa") is None
        assert cache.load("e1", "bbbb") == [{"n": 2}]

    def test_no_cache_runner_writes_nothing(self, tmp_path):
        Runner(jobs=1, use_cache=False, cache_dir=tmp_path).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        assert not any(tmp_path.rglob("*.json"))


class TestCheckCollection:
    def test_collect_checks_merges_per_seed_verdicts(self):
        result = Runner(jobs=1, use_cache=False, collect_checks=True).run(
            "e6", seeds=(0, 1), overrides=SMALL_OVERRIDES
        )
        assert all(r.checks is not None for r in result.seed_results)
        verdict = result.merged_checks()
        assert verdict is not None and verdict.ok
        assert verdict.statuses()["channel-bound"] == "pass"
        assert verdict.statuses()["fork-uniqueness"] == "pass"

    def test_checks_off_by_default(self):
        result = Runner(jobs=1, use_cache=False).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        assert all(r.checks is None for r in result.seed_results)
        assert result.merged_checks() is None

    def test_verdicts_ride_the_cache(self, tmp_path):
        cold = Runner(jobs=1, use_cache=True, cache_dir=tmp_path, collect_checks=True).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        warm = Runner(jobs=1, use_cache=True, cache_dir=tmp_path, collect_checks=True).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        assert warm.cache_hits == 1
        assert warm.merged_checks().to_json() == cold.merged_checks().to_json()

    def test_rows_only_entry_recomputed_when_checks_requested(self, tmp_path):
        Runner(jobs=1, use_cache=True, cache_dir=tmp_path).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        result = Runner(jobs=1, use_cache=True, cache_dir=tmp_path, collect_checks=True).run(
            "e6", seeds=(0,), overrides=SMALL_OVERRIDES
        )
        assert result.cache_hits == 0
        assert result.merged_checks() is not None


class TestAggregation:
    def test_runresult_aggregate_uses_scenario_group_by(self, tmp_path):
        result = Runner(jobs=1, use_cache=False).run(
            "e6", seeds=(0, 1), overrides=SMALL_OVERRIDES
        )
        aggregated = result.aggregate()
        assert all(row["replicates"] == 2 for row in aggregated)
        columns = result.aggregate_table_columns(aggregated)
        assert columns[0] == "topology"
        assert "replicates" in columns

    def test_missing_group_column_raises_clear_error(self):
        rows = [[{"group": "a", "value": 1}]]
        with pytest.raises(ValueError, match="grp"):
            aggregate_rows(rows, group_by=("grp",))
