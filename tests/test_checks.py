"""Unit tests for the substrate-agnostic :mod:`repro.checks` subsystem.

Each property has exactly one implementation; these tests drive them
directly through the normalized event vocabulary — the strict typed
exceptions (the DiningTable arming), the informational-vs-judged window
semantics of the eventual properties, verdict merge algebra, and the
offline replay adapters behind ``repro check``.
"""

from dataclasses import dataclass

import pytest

from repro.checks import (
    CHANNEL_BOUND,
    DINER_LOCAL,
    FIFO,
    FORK_UNIQUENESS,
    OVERTAKING,
    PROGRESS,
    QUIESCENCE,
    WX_SAFETY,
    ChannelBoundChecker,
    CheckConfig,
    CheckSuite,
    CrashEvent,
    DeliverEvent,
    DropEvent,
    FifoChecker,
    ForkUniquenessChecker,
    OvertakingChecker,
    PhaseEvent,
    ProbeEvent,
    ProgressChecker,
    PropertyVerdict,
    QuiescenceChecker,
    SendEvent,
    Verdict,
    Violation,
    WxSafetyChecker,
    load_events_path,
    merge_events,
    replay,
    standard_suite,
)
from repro.errors import (
    ChannelCapacityError,
    ConfigurationError,
    FifoViolationError,
    ForkDuplicationError,
)
from repro.sim.checks import raise_violation


@dataclass
class FakeDiner:
    forks: dict
    tokens: dict
    crashed: bool = False

    def holds_fork(self, neighbor):
        return self.forks.get(neighbor, False)

    def holds_token(self, neighbor):
        return self.tokens.get(neighbor, False)


def _strict(*checkers):
    return CheckSuite(checkers, on_violation=raise_violation)


def _send(time, src, dst, seq=None, type="Fork", layer="dining"):
    return SendEvent(time, src, dst, type, layer, seq)


def _deliver(time, src, dst, seq=None, type="Fork", layer="dining"):
    return DeliverEvent(time, src, dst, type, layer, seq)


# ----------------------------------------------------------------------
# Fork uniqueness (Lemma 1.2) — state probes
# ----------------------------------------------------------------------
class TestForkUniqueness:
    def _probe(self, diners, time=1.0):
        _strict(ForkUniquenessChecker([(0, 1)])).observe(ProbeEvent(time, diners))

    def test_clean_state_passes(self):
        self._probe(
            {0: FakeDiner({1: True}, {1: False}), 1: FakeDiner({0: False}, {0: True})}
        )

    def test_fork_in_transit_passes(self):
        self._probe(
            {0: FakeDiner({1: False}, {1: False}), 1: FakeDiner({0: False}, {0: True})}
        )

    def test_duplicated_fork_raises(self):
        with pytest.raises(ForkDuplicationError, match="fork"):
            self._probe(
                {0: FakeDiner({1: True}, {1: False}), 1: FakeDiner({0: True}, {0: False})}
            )

    def test_duplicated_token_raises(self):
        with pytest.raises(ForkDuplicationError, match="token"):
            self._probe(
                {0: FakeDiner({1: False}, {1: True}), 1: FakeDiner({0: False}, {0: True})}
            )

    def test_crashed_endpoint_skipped(self):
        self._probe(
            {
                0: FakeDiner({1: True}, {1: False}, crashed=True),
                1: FakeDiner({0: True}, {0: False}),
            }
        )

    def test_witness_names_the_edge(self):
        suite = CheckSuite([ForkUniquenessChecker([(0, 1)])])
        suite.observe(
            ProbeEvent(
                2.5,
                {0: FakeDiner({1: True}, {}), 1: FakeDiner({0: True}, {})},
            )
        )
        witness = suite.finalize().property(FORK_UNIQUENESS).first_violation
        assert witness.subject == (0, 1)
        assert witness.time == 2.5


# ----------------------------------------------------------------------
# Channel bound (Section 7)
# ----------------------------------------------------------------------
class TestChannelBound:
    def test_within_bound_passes(self):
        suite = _strict(ChannelBoundChecker(bound=2))
        suite.observe(_send(0.0, 0, 1))
        suite.observe(_send(0.0, 0, 1))
        suite.observe(_deliver(1.0, 0, 1))
        suite.observe(_send(1.0, 0, 1))

    def test_exceeding_bound_raises(self):
        suite = _strict(ChannelBoundChecker(bound=2))
        suite.observe(_send(0.0, 0, 1))
        suite.observe(_send(0.0, 1, 0))  # same undirected edge
        with pytest.raises(ChannelCapacityError):
            suite.observe(_send(0.0, 0, 1))

    def test_other_layers_ignored(self):
        suite = _strict(ChannelBoundChecker(bound=1))
        suite.observe(_send(0.0, 0, 1))
        for _ in range(5):
            suite.observe(_send(0.0, 0, 1, type="Heartbeat", layer="detector"))

    def test_different_edges_independent(self):
        suite = _strict(ChannelBoundChecker(bound=1))
        suite.observe(_send(0.0, 0, 1))
        suite.observe(_send(0.0, 2, 3))

    def test_departure_on_unseen_edge_is_ignored(self):
        # A receiver-only stream (live host watching inbound cross-host
        # traffic) must not drive occupancy negative or corrupt peaks.
        checker = ChannelBoundChecker(bound=2)
        suite = _strict(checker)
        suite.observe(_deliver(0.5, 7, 8))
        suite.observe(_send(1.0, 7, 8))
        assert checker.occupancy.current[(7, 8)] == 1

    def test_verdict_reports_edge_peaks(self):
        suite = CheckSuite([ChannelBoundChecker(bound=4)])
        suite.observe(_send(0.0, 0, 1))
        suite.observe(_send(0.1, 0, 1))
        verdict = suite.finalize().property(CHANNEL_BOUND)
        assert verdict.counters["max_in_transit"] == 2
        assert verdict.details["edge_peaks"] == {"0-1": 2}


# ----------------------------------------------------------------------
# FIFO/no-loss (the channel assumption)
# ----------------------------------------------------------------------
class TestFifo:
    def test_in_order_delivery_passes(self):
        suite = _strict(FifoChecker())
        suite.observe(_send(0.0, 0, 1, seq=1))
        suite.observe(_send(0.1, 0, 1, seq=2))
        suite.observe(_deliver(1.0, 0, 1, seq=1))
        suite.observe(_deliver(1.1, 0, 1, seq=2))

    def test_gap_raises(self):
        suite = _strict(FifoChecker())
        suite.observe(_deliver(1.0, 0, 1, seq=1))
        with pytest.raises(FifoViolationError, match="lost or reordered"):
            suite.observe(_deliver(1.1, 0, 1, seq=3))

    def test_receiver_only_stream_is_legal(self):
        # Sequence numbers start at 1 on every directed channel, so a
        # receiving host that never saw the sends can still judge FIFO.
        suite = _strict(FifoChecker())
        suite.observe(_deliver(1.0, 9, 0, seq=1))
        suite.observe(_deliver(1.1, 9, 0, seq=2))

    def test_channels_are_directed(self):
        suite = _strict(FifoChecker())
        suite.observe(_deliver(0.5, 1, 0, seq=1))
        suite.observe(_deliver(1.0, 0, 1, seq=1))

    def test_drop_consumes_in_order(self):
        suite = _strict(FifoChecker())
        suite.observe(DropEvent(1.0, 0, 1, "Fork", "dining", 1))
        suite.observe(_deliver(1.1, 0, 1, seq=2))

    def test_resync_after_violation(self):
        checker = FifoChecker()
        suite = CheckSuite([checker])
        suite.observe(_deliver(1.0, 0, 1, seq=1))
        suite.observe(_deliver(1.1, 0, 1, seq=3))  # one loss...
        suite.observe(_deliver(1.2, 0, 1, seq=4))  # ...does not cascade
        verdict = suite.finalize().property(FIFO)
        assert verdict.counters["violations_total"] == 1

    def test_sends_only_is_skip(self):
        suite = CheckSuite([FifoChecker()])
        suite.observe(_send(0.0, 0, 1, seq=1))
        assert suite.finalize().property(FIFO).status == "skip"


# ----------------------------------------------------------------------
# Eventual properties: judged with a window, informational without
# ----------------------------------------------------------------------
def _phases(*changes):
    return [PhaseEvent(t, pid, old, new) for t, pid, old, new in changes]


class TestWxSafety:
    EDGES = [(0, 1)]

    def test_overlap_before_settle_passes(self):
        suite = CheckSuite([WxSafetyChecker(self.EDGES, settle=10.0)])
        suite.feed(
            _phases(
                (1.0, 0, "hungry", "eating"),
                (2.0, 1, "hungry", "eating"),
                (3.0, 0, "eating", "thinking"),
                (4.0, 1, "eating", "thinking"),
            )
        )
        verdict = suite.finalize(20.0).property(WX_SAFETY)
        assert verdict.status == "pass"
        assert verdict.counters["overlap_windows_total"] == 1
        assert verdict.counters["last_overlap_end"] == 3.0

    def test_overlap_past_settle_fails(self):
        suite = CheckSuite([WxSafetyChecker(self.EDGES, settle=2.0)])
        suite.feed(
            _phases(
                (1.0, 0, "hungry", "eating"),
                (1.5, 1, "hungry", "eating"),
                (5.0, 0, "eating", "thinking"),
            )
        )
        verdict = suite.finalize(20.0).property(WX_SAFETY)
        assert verdict.status == "fail"
        assert verdict.first_violation.subject == (0, 1)

    def test_open_overlap_judged_at_horizon(self):
        suite = CheckSuite([WxSafetyChecker(self.EDGES, settle=2.0)])
        suite.feed(
            _phases((1.0, 0, "hungry", "eating"), (1.5, 1, "hungry", "eating"))
        )
        assert suite.finalize(20.0).property(WX_SAFETY).status == "fail"

    def test_no_settle_is_informational(self):
        suite = CheckSuite([WxSafetyChecker(self.EDGES)])
        suite.feed(
            _phases((1.0, 0, "hungry", "eating"), (1.5, 1, "hungry", "eating"))
        )
        verdict = suite.finalize(20.0).property(WX_SAFETY)
        assert verdict.status == "pass"
        assert verdict.counters["overlap_windows_total"] == 1

    def test_crashed_neighbor_stops_counting(self):
        suite = CheckSuite([WxSafetyChecker(self.EDGES, settle=0.0)])
        suite.observe(PhaseEvent(1.0, 0, "hungry", "eating"))
        suite.observe(CrashEvent(1.5, 0))
        suite.observe(PhaseEvent(2.0, 1, "hungry", "eating"))
        assert suite.finalize(20.0).property(WX_SAFETY).status == "pass"


class TestProgress:
    def test_starving_diner_fails(self):
        suite = CheckSuite([ProgressChecker(patience=5.0, correct=[0, 1])])
        suite.observe(PhaseEvent(1.0, 0, "thinking", "hungry"))
        verdict = suite.finalize(20.0).property(PROGRESS)
        assert verdict.status == "fail"
        assert verdict.details["starving"] == [0]

    def test_served_diner_passes(self):
        suite = CheckSuite([ProgressChecker(patience=5.0, correct=[0])])
        suite.observe(PhaseEvent(1.0, 0, "thinking", "hungry"))
        suite.observe(PhaseEvent(2.0, 0, "hungry", "eating"))
        verdict = suite.finalize(20.0).property(PROGRESS)
        assert verdict.status == "pass"
        assert verdict.counters["sessions_served_total"] == 1

    def test_crashed_diner_not_starving(self):
        suite = CheckSuite([ProgressChecker(patience=5.0, correct=[0])])
        suite.observe(PhaseEvent(1.0, 0, "thinking", "hungry"))
        suite.observe(CrashEvent(2.0, 0))
        assert suite.finalize(20.0).property(PROGRESS).status == "pass"

    def test_recent_waiter_within_patience_passes(self):
        suite = CheckSuite([ProgressChecker(patience=5.0, correct=[0])])
        suite.observe(PhaseEvent(18.0, 0, "thinking", "hungry"))
        assert suite.finalize(20.0).property(PROGRESS).status == "pass"

    def test_no_patience_is_informational(self):
        suite = CheckSuite([ProgressChecker(correct=[0])])
        suite.observe(PhaseEvent(1.0, 0, "thinking", "hungry"))
        verdict = suite.finalize(20.0).property(PROGRESS)
        assert verdict.status == "pass"
        assert verdict.counters["waiting_at_horizon"] == 1


class TestOvertaking:
    EDGES = [(0, 1)]

    def _three_overtakes(self, checker):
        suite = CheckSuite([checker])
        suite.observe(PhaseEvent(1.0, 1, "thinking", "hungry"))
        for start in (2.0, 4.0, 6.0):
            suite.observe(PhaseEvent(start, 0, "hungry", "eating"))
            suite.observe(PhaseEvent(start + 1.0, 0, "eating", "thinking"))
        suite.observe(PhaseEvent(8.0, 1, "hungry", "eating"))
        return suite

    def test_third_overtake_after_cutoff_fails(self):
        suite = self._three_overtakes(OvertakingChecker(self.EDGES, after=0.0))
        verdict = suite.finalize(10.0).property(OVERTAKING)
        assert verdict.status == "fail"
        assert verdict.first_violation.subject == (0, 1)
        assert verdict.counters["max_overtaking"] == 3

    def test_session_before_cutoff_exempt(self):
        suite = self._three_overtakes(OvertakingChecker(self.EDGES, after=50.0))
        assert suite.finalize(10.0).property(OVERTAKING).status == "pass"

    def test_no_cutoff_is_informational(self):
        suite = self._three_overtakes(OvertakingChecker(self.EDGES))
        verdict = suite.finalize(10.0).property(OVERTAKING)
        assert verdict.status == "pass"
        assert verdict.counters["max_overtaking"] == 3

    def test_two_overtakes_within_bound(self):
        suite = CheckSuite([OvertakingChecker(self.EDGES, after=0.0)])
        suite.observe(PhaseEvent(1.0, 1, "thinking", "hungry"))
        for start in (2.0, 4.0):
            suite.observe(PhaseEvent(start, 0, "hungry", "eating"))
            suite.observe(PhaseEvent(start + 1.0, 0, "eating", "thinking"))
        suite.observe(PhaseEvent(8.0, 1, "hungry", "eating"))
        assert suite.finalize(10.0).property(OVERTAKING).status == "pass"


class TestQuiescence:
    def test_send_past_grace_fails(self):
        suite = CheckSuite([QuiescenceChecker(grace=1.0)])
        suite.observe(CrashEvent(1.0, 1))
        suite.observe(_send(5.0, 0, 1, type="Ping"))
        verdict = suite.finalize(10.0).property(QUIESCENCE)
        assert verdict.status == "fail"
        assert verdict.counters["post_crash_sends_total"] == 1

    def test_send_within_grace_passes(self):
        suite = CheckSuite([QuiescenceChecker(grace=10.0)])
        suite.observe(CrashEvent(1.0, 1))
        suite.observe(_send(5.0, 0, 1, type="Ping"))
        assert suite.finalize(10.0).property(QUIESCENCE).status == "pass"

    def test_no_grace_is_informational(self):
        suite = CheckSuite([QuiescenceChecker()])
        suite.observe(CrashEvent(1.0, 1))
        suite.observe(_send(5.0, 0, 1, type="Ping"))
        verdict = suite.finalize(10.0).property(QUIESCENCE)
        assert verdict.status == "pass"
        assert verdict.counters["last_post_crash_send"] == 5.0


# ----------------------------------------------------------------------
# Verdict algebra and rendering
# ----------------------------------------------------------------------
class TestVerdictAlgebra:
    def test_property_merge_fail_dominates(self):
        merged = PropertyVerdict.merge(
            [
                PropertyVerdict(prop="fifo", status="skip"),
                PropertyVerdict(prop="fifo", status="pass", counters={"consumed_total": 3}),
                PropertyVerdict(
                    prop="fifo",
                    status="fail",
                    counters={"consumed_total": 2},
                    violations=[Violation("fifo", 1.0, "gap", (0, 1))],
                ),
            ]
        )
        assert merged.status == "fail"
        assert merged.counters["consumed_total"] == 5
        assert len(merged.violations) == 1

    def test_property_merge_all_skip_stays_skip(self):
        merged = PropertyVerdict.merge(
            [PropertyVerdict(prop="fifo", status="skip")] * 2
        )
        assert merged.status == "skip"

    def test_max_counters_take_max(self):
        merged = PropertyVerdict.merge(
            [
                PropertyVerdict(
                    prop="channel-bound", status="pass", counters={"max_in_transit": 3}
                ),
                PropertyVerdict(
                    prop="channel-bound", status="pass", counters={"max_in_transit": 2}
                ),
            ]
        )
        assert merged.counters["max_in_transit"] == 3

    def test_verdict_merge_keeps_judgement_over_skip(self):
        skip = Verdict(properties={"fifo": PropertyVerdict(prop="fifo", status="skip")})
        judged = Verdict(
            properties={"fifo": PropertyVerdict(prop="fifo", status="pass")}
        )
        assert Verdict.merge([skip, judged]).property("fifo").status == "pass"

    def test_json_round_trip(self):
        suite = standard_suite([(0, 1)], CheckConfig(settle=1.0, patience=2.0))
        suite.observe(_send(0.0, 0, 1, seq=1))
        suite.observe(_deliver(0.5, 0, 1, seq=1))
        verdict = suite.finalize(10.0)
        clone = Verdict.from_json(verdict.to_json())
        assert clone.statuses() == verdict.statuses()
        assert clone.ok == verdict.ok
        assert clone.events_observed == verdict.events_observed

    def test_describe_mentions_failures(self):
        suite = CheckSuite([ProgressChecker(patience=1.0, correct=[0])])
        suite.observe(PhaseEvent(1.0, 0, "thinking", "hungry"))
        verdict = suite.finalize(20.0)
        text = verdict.describe()
        assert "FAIL" in text
        assert "progress" in text
        assert "first violation" in text

    def test_unobserved_property_is_skip(self):
        verdict = standard_suite([(0, 1)]).finalize(1.0)
        assert verdict.ok
        assert verdict.property(FORK_UNIQUENESS).status == "skip"
        assert verdict.property(FIFO).status == "skip"


# ----------------------------------------------------------------------
# Offline replay (the `repro check` engine)
# ----------------------------------------------------------------------
class TestReplay:
    def test_mixed_artifact_replay(self, tmp_path):
        artifact = tmp_path / "mixed.jsonl"
        artifact.write_text(
            "\n".join(
                [
                    '{"kind": "phase", "time": 1.0, "pid": 0, "old_phase": "thinking", "new_phase": "hungry"}',
                    '{"kind": "send", "time": 1.1, "src": 0, "dst": 1, "type": "Request", "layer": "dining", "seq": 1}',
                    '{"kind": "deliver", "time": 1.2, "src": 0, "dst": 1, "type": "Request", "layer": "dining", "seq": 1}',
                    '{"kind": "phase", "time": 2.0, "pid": 0, "old_phase": "hungry", "new_phase": "eating"}',
                    '{"kind": "protocol_step", "time": 2.0, "pid": 0, "action": 9}',
                    '{"kind": "crash", "time": 3.0, "pid": 1}',
                ]
            )
            + "\n"
        )
        events = load_events_path(str(artifact))
        verdict = replay(
            [(0, 1)], events, CheckConfig(settle=5.0, patience=5.0), horizon=10.0
        )
        assert verdict.ok
        assert verdict.property(FORK_UNIQUENESS).status == "skip"  # no live state
        assert verdict.property(FIFO).status == "pass"
        assert verdict.property(WX_SAFETY).status == "pass"
        assert verdict.events_observed == 5  # protocol_step carries nothing

    def test_unknown_kind_rejected(self, tmp_path):
        artifact = tmp_path / "bad.jsonl"
        artifact.write_text('{"kind": "mystery", "time": 0.0}\n')
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            load_events_path(str(artifact))

    def test_merge_orders_sends_before_departures(self):
        deliver = _deliver(1.0, 0, 1, seq=1)
        send = _send(1.0, 0, 1, seq=1)
        assert merge_events([deliver], [send]) == [send, deliver]
