"""The ``client_storm`` fuzz verb: lease-service bursts under the engine.

A storm plan drives acquire/hold/abandon session bursts straight into a
``LockCore`` riding the plan's diners — the kernel (and scaled-live)
analogue of a ``LockService`` client fleet — and the engine judges the
service path on top of the standard suite via the synthetic
``lease-backing`` property (an active lease with no eating diner fails
the run).
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ClientStormSpec,
    FaultPlan,
    WorkloadSpec,
    run_plan_kernel,
    sample_plan,
)
from repro.faults.engine import LEASE_BACKING, _fold_leaked
from repro.faults.shrink import _candidates


def _storm_plan(**overrides) -> FaultPlan:
    storm = ClientStormSpec(
        sessions=12,
        burst=4,
        interval=2.0,
        start=1.0,
        ttl=1.0,
        hold=0.3,
        abandon=0.25,
    )
    defaults = dict(
        topology="ring",
        n=4,
        seed=3,
        horizon=40.0,
        workload=WorkloadSpec.of("lease"),
        storm=storm,
    )
    defaults.update(overrides)
    return FaultPlan(**defaults)


def test_kernel_storm_serves_sessions_and_keeps_the_books_clean():
    plan = _storm_plan()
    result = run_plan_kernel(plan)
    assert result.ok, result.failed
    counters = result.storm["counters"]
    assert counters["requests"] == 12
    assert counters["grants"] > 0
    # Abandoned grants are reclaimed by the TTL, not a release.
    assert counters["grants"] == counters["releases"] + counters["expiries"]
    assert result.storm["leaked_leases"] == 0
    assert result.storm["active_leases"] == 0
    # The snapshot rides the JSON result (witness directories carry it).
    assert result.to_json()["storm"]["counters"]["grants"] == counters["grants"]


def test_storm_sessions_survive_a_server_crash():
    """Sessions aimed at a crashed diner are denied, its lease reclaimed,
    and the survivors keep being granted — the clean verdict must hold."""
    from repro.faults.plan import CrashSpec

    plan = _storm_plan(
        storm=ClientStormSpec(
            sessions=24, burst=4, interval=1.5, start=1.0, ttl=1.0, hold=0.3,
            abandon=0.2,
        ),
        crashes=(CrashSpec(pid=1, at=6.0),),
        horizon=60.0,
    )
    result = run_plan_kernel(plan)
    assert result.ok, result.failed
    assert result.storm["counters"]["grants"] > 0
    assert result.storm["leaked_leases"] == 0
    denies = result.storm["denies"]
    # Requests routed at the dead diner's resource after the crash.
    assert denies.get("crashed", 0) + result.storm["counters"]["crash_reclaims"] >= 0


def test_leaked_lease_fails_the_lease_backing_property():
    from repro.checks import Verdict
    from repro.locks.service import Lease

    class FakeCore:
        def leaked_leases(self):
            return [
                Lease(
                    lease_id=7,
                    session=1 << 20,
                    resource="r2",
                    pid=2,
                    ttl_ms=100,
                    granted_at=1.0,
                )
            ]

    verdict = _fold_leaked(Verdict(properties={}), FakeCore(), now=9.0)
    prop = verdict.properties[LEASE_BACKING]
    assert prop.status == "fail"
    assert prop.counters["leaked_total"] == 1
    assert "r2" in prop.violations[0].detail
    assert not verdict.ok


def test_sampler_cycles_into_the_client_storm_archetype():
    plan = sample_plan(n=5, seed=0, index=6)
    assert plan.storm.active
    assert plan.workload.kind == "lease"
    assert plan.crashes  # the archetype includes a timed server crash
    # The horizon leaves every burst room to land and expire.
    assert plan.horizon >= plan.storm.last_burst_time() + 3.0 * plan.storm.ttl
    # Deterministic and JSON-round-trippable like every other plan.
    assert sample_plan(n=5, seed=0, index=6) == plan
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_shrinker_offers_storm_rungs():
    plan = _storm_plan()
    labels = [label for label, _ in _candidates(plan)]
    assert "drop the client storm" in labels
    assert "storm sessions 12 -> 6" in labels
    assert "storm abandon -> 0" in labels
    # The lease workload shrinks away only together with its storm.
    assert not any(label.startswith("workload") for label in labels)
    dropped = dict(_candidates(plan))["drop the client storm"]
    assert not dropped.storm.active
    assert any(
        label.startswith("workload") for label, _ in _candidates(dropped)
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(sessions=-1),
        dict(sessions=4, burst=0),
        dict(sessions=4, interval=0.0),
        dict(sessions=4, ttl=0.0),
        dict(sessions=4, abandon=1.5),
        dict(sessions=4, hold=-0.1),
    ],
)
def test_storm_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ClientStormSpec(**kwargs)


@pytest.mark.live
def test_live_storm_runs_clean_and_leak_free():
    from repro.faults import run_plan_live

    plan = _storm_plan(
        storm=ClientStormSpec(
            sessions=8, burst=4, interval=2.0, start=2.0, ttl=1.5, hold=0.5,
            abandon=0.25,
        ),
        horizon=30.0,
    )
    result = run_plan_live(plan)
    assert result.ok, result.failed
    assert result.storm["counters"]["grants"] > 0
    assert result.storm["leaked_leases"] == 0
