"""Unit tests for conflict graphs, topologies, and colorings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ColoringError, ConfigurationError
from repro.graphs import (
    ConflictGraph,
    binary_tree,
    by_name,
    clique,
    color_count,
    dsatur_coloring,
    greedy_coloring,
    grid,
    path,
    random_graph,
    ring,
    star,
    validate_coloring,
)


class TestConflictGraph:
    def test_nodes_sorted_and_deduplicated(self):
        graph = ConflictGraph([3, 1, 1, 2], [(1, 2)])
        assert graph.nodes == (1, 2, 3)

    def test_edges_normalized(self):
        graph = ConflictGraph([0, 1], [(1, 0), (0, 1)])
        assert graph.edges == frozenset({(0, 1)})

    def test_neighbors_sorted(self):
        graph = ConflictGraph(range(4), [(0, 3), (0, 1), (0, 2)])
        assert graph.neighbors(0) == (1, 2, 3)

    def test_are_neighbors(self):
        graph = ConflictGraph(range(3), [(0, 1)])
        assert graph.are_neighbors(0, 1)
        assert graph.are_neighbors(1, 0)
        assert not graph.are_neighbors(0, 2)
        assert not graph.are_neighbors(1, 1)

    def test_degree_and_max_degree(self):
        graph = star(5)
        assert graph.degree(0) == 4
        assert graph.degree(1) == 1
        assert graph.max_degree == 4

    def test_isolated_node_allowed(self):
        graph = ConflictGraph([0, 1, 2], [(0, 1)])
        assert graph.neighbors(2) == ()

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            ConflictGraph([0, 1], [(0, 0)])

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ConflictGraph([0, 1], [(0, 5)])

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            ConflictGraph([], [])

    def test_unknown_pid_queries_raise(self):
        graph = ring(4)
        with pytest.raises(ConfigurationError):
            graph.neighbors(99)

    def test_container_protocol(self):
        graph = ring(4)
        assert len(graph) == 4
        assert 2 in graph
        assert 9 not in graph
        assert list(graph) == [0, 1, 2, 3]


class TestWithDelta:
    """`with_delta` must equal from-scratch construction, sharing aside."""

    def test_leave_matches_from_scratch(self):
        base = ring(6)
        snapped = base.with_delta(remove_nodes=(2,))
        rebuilt = ConflictGraph(
            [n for n in base.nodes if n != 2],
            [e for e in base.edges if 2 not in e],
        )
        assert snapped.nodes == rebuilt.nodes
        assert snapped.edges == rebuilt.edges
        assert all(snapped.neighbors(n) == rebuilt.neighbors(n) for n in snapped)

    def test_join_matches_from_scratch(self):
        base = ring(5)
        snapped = base.with_delta(add_nodes=(5,), add_edges=((4, 5), (0, 5)))
        rebuilt = ConflictGraph(range(6), set(base.edges) | {(4, 5), (0, 5)})
        assert snapped.nodes == rebuilt.nodes
        assert snapped.edges == rebuilt.edges
        assert all(snapped.neighbors(n) == rebuilt.neighbors(n) for n in snapped)

    def test_untouched_neighbor_tuples_are_shared(self):
        base = ring(8)
        snapped = base.with_delta(remove_nodes=(0,))
        # 0's neighbors (1 and 7) are rebuilt; everyone else shares.
        for n in (2, 3, 4, 5, 6):
            assert snapped.neighbors(n) is base.neighbors(n)
        assert snapped.neighbors(1) == (2,)
        assert snapped.neighbors(7) == (6,)

    def test_add_and_remove_same_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ring(4).with_delta(add_nodes=(9,), remove_nodes=(9,))

    def test_removing_every_node_rejected(self):
        with pytest.raises(ConfigurationError):
            path(3).with_delta(remove_nodes=(0, 1, 2))

    def test_added_edge_to_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ring(4).with_delta(add_edges=((0, 42),))

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_random_delta_equals_from_scratch(self, data):
        n = data.draw(st.integers(min_value=2, max_value=9), label="n")
        base = random_graph(n, data.draw(st.floats(0.0, 1.0), label="p"), seed=data.draw(st.integers(0, 50), label="seed"))
        removed = set(
            data.draw(
                st.lists(st.sampled_from(base.nodes), max_size=n - 1, unique=True),
                label="removed_nodes",
            )
        )
        added = set(data.draw(st.lists(st.integers(n, n + 3), max_size=3, unique=True), label="added_nodes"))
        survivors = sorted((set(base.nodes) | added) - removed)
        removed_edges = set(
            data.draw(
                st.lists(st.sampled_from(sorted(base.edges)), max_size=4, unique=True),
                label="removed_edges",
            )
            if base.edges
            else []
        )
        pairs = [(a, b) for a in survivors for b in survivors if a < b]
        added_edges = set(
            data.draw(st.lists(st.sampled_from(pairs), max_size=4, unique=True), label="added_edges")
            if pairs
            else []
        )
        snapped = base.with_delta(
            add_nodes=added,
            remove_nodes=removed,
            add_edges=added_edges,
            remove_edges=removed_edges,
        )
        expected_edges = (
            {e for e in base.edges if e[0] not in removed and e[1] not in removed}
            - removed_edges
        ) | added_edges
        rebuilt = ConflictGraph(survivors, expected_edges)
        assert snapped.nodes == rebuilt.nodes
        assert snapped.edges == rebuilt.edges
        assert all(snapped.neighbors(v) == rebuilt.neighbors(v) for v in snapped)


class TestTopologies:
    def test_ring_structure(self):
        graph = ring(5)
        assert len(graph.edges) == 5
        assert all(graph.degree(pid) == 2 for pid in graph)

    def test_ring_too_small(self):
        with pytest.raises(ConfigurationError):
            ring(2)

    def test_path_structure(self):
        graph = path(5)
        assert len(graph.edges) == 4
        assert graph.degree(0) == 1
        assert graph.degree(4) == 1
        assert graph.degree(2) == 2

    def test_star_structure(self):
        graph = star(6)
        assert graph.degree(0) == 5
        assert all(graph.degree(pid) == 1 for pid in range(1, 6))

    def test_clique_structure(self):
        graph = clique(6)
        assert len(graph.edges) == 15
        assert graph.max_degree == 5

    def test_grid_structure(self):
        graph = grid(3, 4)
        assert len(graph) == 12
        assert len(graph.edges) == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.max_degree == 4

    def test_binary_tree_structure(self):
        graph = binary_tree(7)
        assert len(graph.edges) == 6
        assert graph.degree(0) == 2  # root has two children

    def test_random_graph_deterministic(self):
        a = random_graph(10, 0.4, seed=5)
        b = random_graph(10, 0.4, seed=5)
        assert a.edges == b.edges

    def test_random_graph_probability_bounds(self):
        assert len(random_graph(8, 0.0).edges) == 0
        assert len(random_graph(8, 1.0).edges) == 28
        with pytest.raises(ConfigurationError):
            random_graph(8, 1.5)

    def test_by_name_dispatch(self):
        for name in ("ring", "path", "star", "clique", "tree", "random", "grid"):
            graph = by_name(name, 12)
            assert len(graph) == 12

    def test_by_name_unknown(self):
        with pytest.raises(ConfigurationError):
            by_name("mobius", 12)

    def test_by_name_grid_needs_composite(self):
        with pytest.raises(ConfigurationError):
            by_name("grid", 13)


class TestColoring:
    @pytest.mark.parametrize("make", [greedy_coloring, dsatur_coloring])
    @pytest.mark.parametrize(
        "graph",
        [ring(6), ring(7), path(5), star(8), clique(6), grid(3, 4), binary_tree(9), random_graph(15, 0.3, seed=2)],
        ids=["ring6", "ring7", "path5", "star8", "clique6", "grid3x4", "tree9", "random15"],
    )
    def test_colorings_are_proper(self, make, graph):
        coloring = make(graph)
        validate_coloring(graph, coloring)  # raises on failure

    def test_greedy_uses_at_most_delta_plus_one(self):
        for graph in (ring(9), star(10), clique(5), grid(4, 4)):
            coloring = greedy_coloring(graph)
            assert color_count(coloring) <= graph.max_degree + 1

    def test_dsatur_no_worse_than_greedy_on_star(self):
        graph = star(10)
        assert color_count(dsatur_coloring(graph)) == 2

    def test_clique_needs_n_colors(self):
        graph = clique(6)
        assert color_count(greedy_coloring(graph)) == 6
        assert color_count(dsatur_coloring(graph)) == 6

    def test_validate_rejects_monochrome_edge(self):
        graph = path(3)
        with pytest.raises(ColoringError):
            validate_coloring(graph, {0: 1, 1: 1, 2: 0})

    def test_validate_rejects_missing_color(self):
        graph = path(3)
        with pytest.raises(ColoringError):
            validate_coloring(graph, {0: 0, 1: 1})

    def test_validate_rejects_negative_color(self):
        graph = path(2)
        with pytest.raises(ColoringError):
            validate_coloring(graph, {0: -1, 1: 0})
