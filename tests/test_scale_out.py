"""Scale-out surface: geometric/scale-free generators, load_sweep, wiring.

The n=10,000-diner regime rests on three pieces added with the kernel
rework: the ``random_geometric`` and ``scale_free`` generators, the
registered ``load_sweep`` scenario, and the fuzz/CLI wiring that lets
campaigns exercise the new shapes.  Each is pinned here, plus the
acceptance-scale run: a random-geometric table under the full strict
check suite.
"""

from __future__ import annotations

import math

import pytest

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.errors import ConfigurationError
from repro.faults.sampler import TOPOLOGY_POOL, sample_plan
from repro.graphs import by_name, random_geometric, scale_free
from repro.scenarios import get_scenario


class TestRandomGeometric:
    def test_matches_brute_force_distance_check(self):
        # The grid-bucketed edge discovery must produce exactly the naive
        # O(n^2) edge set: re-derive the points and compare.
        import random

        n, radius, seed = 120, 0.17, 9
        graph = random_geometric(n, radius, seed=seed)
        rng = random.Random(seed)
        points = [(rng.random(), rng.random()) for _ in range(n)]
        expected = {
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if math.dist(points[i], points[j]) <= radius
        }
        assert set(graph.edges) == expected

    def test_deterministic_in_seed(self):
        assert random_geometric(300, seed=4).edges == random_geometric(300, seed=4).edges
        assert random_geometric(300, seed=4).edges != random_geometric(300, seed=5).edges

    def test_default_radius_connects_and_stays_sparse(self):
        graph = random_geometric(500, seed=11)
        # Bounded-degree regime: mean degree grows like log n, far from clique.
        assert graph.max_degree < 40
        seen = {graph.nodes[0]}
        stack = [graph.nodes[0]]
        while stack:
            for neighbor in graph.neighbors(stack.pop()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        # 1.2x the connectivity threshold gives an *almost surely* connected
        # graph: a giant component holding essentially every node.  (A
        # stray isolated diner is legal — it may always eat.)
        assert len(seen) >= 0.99 * len(graph)

    def test_bad_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            random_geometric(10, 0.0)
        with pytest.raises(ConfigurationError):
            random_geometric(10, 2.0)


class TestScaleFree:
    def test_edge_count_and_hub_growth(self):
        m = 2
        graph = scale_free(2000, m, seed=3)
        # BA wiring: every arrival after the founders adds exactly m edges.
        assert len(graph.edges) == m * (len(graph) - m)
        # Preferential attachment concentrates degree: the hub dwarfs the
        # minimum degree m, unlike any bounded-degree topology.
        assert graph.max_degree > 20 * m

    def test_deterministic_in_seed(self):
        assert scale_free(400, seed=2).edges == scale_free(400, seed=2).edges
        assert scale_free(400, seed=2).edges != scale_free(400, seed=3).edges

    def test_bad_attachment_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_free(10, 0)
        with pytest.raises(ConfigurationError):
            scale_free(10, 10)


class TestWiring:
    def test_by_name_aliases(self):
        assert by_name("geometric", 100, seed=1).edges == by_name(
            "random_geometric", 100, seed=1
        ).edges
        assert by_name("scale_free", 100, seed=1).edges == by_name(
            "scalefree", 100, seed=1
        ).edges
        assert by_name("barabasi_albert", 100, seed=1).max_degree >= 2

    def test_by_name_forwards_shape_parameters(self):
        wide = by_name("geometric", 100, seed=1, radius=0.5)
        narrow = by_name("geometric", 100, seed=1, radius=0.1)
        assert len(wide.edges) > len(narrow.edges)
        assert len(by_name("scale_free", 100, seed=1, attachment=3).edges) == 3 * 97

    def test_cli_exposes_new_topologies(self):
        from repro.cli import TOPOLOGIES

        assert "geometric" in TOPOLOGIES
        assert "scale_free" in TOPOLOGIES

    def test_sample_plan_mixed_rotates_topology_pool(self):
        seen = {
            sample_plan(topology="mixed", n=12, seed=1, index=i).topology
            for i in range(len(TOPOLOGY_POOL))
        }
        assert seen == set(TOPOLOGY_POOL)
        # Resolution is deterministic: same (seed, index) -> same plan.
        assert (
            sample_plan(topology="mixed", n=12, seed=1, index=3).topology
            == sample_plan(topology="mixed", n=12, seed=1, index=3).topology
        )

    def test_fuzz_plans_run_on_new_topologies(self):
        from repro.faults.engine import run_plan

        for topology in ("geometric", "scale_free"):
            plan = sample_plan(topology=topology, n=10, seed=2, index=0)
            plan = plan.with_(horizon=30.0)
            outcome = run_plan(plan)
            assert outcome.verdict.ok, (topology, outcome.verdict.statuses())


class TestLoadSweep:
    def test_registered_and_runs_small(self):
        scenario = get_scenario("load_sweep")
        rows = scenario.run(
            topology_names=("geometric", "scale_free"),
            sizes=(60,),
            inject_rates=(0.2, 2.0),
            horizon=15.0,
            seed=1,
        )
        assert len(rows) == 4
        for row in rows:
            assert set(scenario.columns) <= set(row)
            assert row["max_in_transit"] <= 4
            assert row["meals"] > 0
        # Saturation direction: pushing rate up never lowers throughput
        # below the trickle regime's meal count on the same graph.
        by_topo = {}
        for row in rows:
            by_topo.setdefault(row["topology"], []).append(row["meals"])
        for meals in by_topo.values():
            assert meals[1] >= meals[0]


class TestAcceptanceScale:
    @pytest.mark.slow
    def test_n2000_geometric_passes_strict_suite(self):
        graph = random_geometric(2000, seed=7)
        table = DiningTable(
            graph,
            seed=7,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=0.05, think_time=1.0),
        )
        # Strict checks raise mid-run on any violation; reaching the
        # horizon plus a PASS verdict is the Section 7 certificate.
        table.run(until=30.0)
        verdict = table.verdict()
        assert verdict.ok, verdict.statuses()
        assert table.occupancy.max_occupancy <= 4
        assert sum(table.eat_counts().values()) > 1000
