"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.time import END_OF_TIME


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_at_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.run_until_quiescent()
        assert fired == ["a", "b"]

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule_at(5.0, lambda: sim.schedule_after(2.5, lambda: times.append(sim.now)))
        sim.run_until_quiescent()
        assert times == [7.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run_until_quiescent()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: sim.schedule_at(sim.now, lambda: fired.append(sim.now)))
        sim.run_until_quiescent()
        assert fired == [3.0]

    def test_schedule_at_end_of_time_raises(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_at(END_OF_TIME, lambda: None)

    def test_schedule_on_finished_simulator_raises(self):
        sim = Simulator()
        sim.finish()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(Exception):
            sim.schedule_after(-1.0, lambda: None)


class TestRun:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_bounded_runs_compose(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.schedule_at(8.0, lambda: fired.append(8))
        sim.run(until=5.0)
        sim.run(until=10.0)
        assert fired == [3, 8]
        assert sim.now == 10.0

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_run_until_quiescent_drains(self):
        sim = Simulator()
        count = []

        def chain(depth):
            count.append(depth)
            if depth < 5:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run_until_quiescent()
        assert count == [0, 1, 2, 3, 4, 5]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_events_counts(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run_until_quiescent()
        assert sim.processed_events == 3

    def test_event_budget_enforced(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule_after(0.0, loop)

        sim.schedule_at(0.0, loop)
        with pytest.raises(SchedulingError, match="budget"):
            sim.run_until_quiescent()


class TestDeterminism:
    def test_same_seed_same_stream_draws(self):
        a = Simulator(seed=5).streams.stream("x")
        b = Simulator(seed=5).streams.stream("x")
        assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]

    def test_same_instant_priority_ordering(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("timer"), priority=EventPriority.TIMER)
        sim.schedule_at(1.0, lambda: fired.append("control"), priority=EventPriority.CONTROL)
        sim.schedule_at(1.0, lambda: fired.append("delivery"), priority=EventPriority.DELIVERY)
        sim.run_until_quiescent()
        assert fired == ["control", "delivery", "timer"]


class TestStepListeners:
    def test_listener_called_after_every_event(self):
        sim = Simulator()
        seen = []
        sim.add_step_listener(seen.append)
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run_until_quiescent()
        assert seen == [1.0, 2.0]

    def test_listener_sees_post_event_state(self):
        sim = Simulator()
        state = {"value": 0}
        observed = []
        sim.add_step_listener(lambda now: observed.append(state["value"]))
        sim.schedule_at(1.0, lambda: state.update(value=7))
        sim.run_until_quiescent()
        assert observed == [7]
