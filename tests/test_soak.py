"""Soak test: the whole stack, at scale, in one adversarial run.

30 processes on a random conflict graph; heartbeat ◇P₁ over hostile GST
partial synchrony; staggered crashes before and after GST; a hosted
self-stabilizing coloring corrupted mid-run; all online invariant
checkers armed.  Everything the paper promises must hold simultaneously.

The run records through a :class:`StreamingTraceRecorder`, so the soak
doubles as the integration test for bounded-memory tracing: every
trace-consuming assertion below (detector QoS most of all) streams its
records back from the JSONL spill file.
"""

import pytest

from repro.core import DistributedDaemon, heartbeat_detector

pytestmark = pytest.mark.slow
from repro.detectors.qos import detector_qos
from repro.graphs import random_graph
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency
from repro.stabilization import GreedyRecoloring, TransientFaultPlan
from repro.trace import jain_fairness_index
from repro.trace.recorder import StreamingTraceRecorder
from repro.trace.serialize import load_path

SOAK_KEEP_LAST = 500


@pytest.fixture(scope="module")
def soak_run(tmp_path_factory):
    graph = random_graph(30, 0.12, seed=404)
    protocol = GreedyRecoloring(graph)
    crash_plan = CrashPlan.scripted({3: 20.0, 11: 45.0, 19: 70.0, 27: 95.0})
    spill = tmp_path_factory.mktemp("soak") / "trace.jsonl"
    daemon = DistributedDaemon(
        graph,
        protocol,
        seed=404,
        latency=PartialSynchronyLatency(
            gst=60.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=1.0
        ),
        detector=heartbeat_detector(interval=1.0, initial_timeout=2.0, timeout_increment=1.0),
        crash_plan=crash_plan,
        step_time=0.5,
        check_invariants=True,
        trace=StreamingTraceRecorder(spill, keep_last=SOAK_KEEP_LAST),
    )
    faults = TransientFaultPlan.random(
        daemon, burst_times=(120.0, 200.0), victims_per_burst=4
    )
    faults.apply(daemon)
    daemon.run(until=900.0)
    daemon.table.trace.close()  # flush the spill; accessors stream from disk
    return graph, protocol, crash_plan, daemon


class TestSoak:
    def test_scale_was_real(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        table = daemon.table
        assert table.sim.processed_events > 100_000
        assert sum(table.eat_counts().values()) > 5_000

    def test_wait_freedom(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        assert daemon.table.starving_correct(patience=300.0) == []

    def test_eventual_weak_exclusion(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        assert daemon.table.violations_after(450.0) == []

    def test_eventual_bounded_waiting(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        assert daemon.table.max_overtaking(after=500.0) <= 2

    def test_channel_bound(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        assert daemon.table.occupancy.max_occupancy <= 4

    def test_quiescence_toward_all_crashed(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        quiescence = daemon.table.quiescence
        for pid in crash_plan.faulty:
            last = quiescence.last_send_time(pid, layer="dining")
            if last is not None:
                # Silence well before the horizon: nothing in the last 60%.
                assert last < 900.0 * 0.4

    def test_hosted_protocol_converged(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        assert daemon.converged()
        assert protocol.conflict_edges(daemon.live_pids()) == []

    def test_detector_qos_wholesome(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        report = detector_qos(daemon.table.trace, graph, crash_plan, horizon=900.0)
        assert report.undetected_crash_pairs == 0
        assert report.mistake_count > 0  # the pre-GST period was hostile

    def test_streaming_trace_memory_is_bounded(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        trace = daemon.table.trace
        assert isinstance(trace, StreamingTraceRecorder)
        assert len(trace) > 10_000  # the run really produced a big trace...
        assert len(trace.tail()) == SOAK_KEEP_LAST  # ...but residency stayed capped

    def test_streaming_spill_file_is_loadable(self, soak_run):
        graph, protocol, crash_plan, daemon = soak_run
        trace = daemon.table.trace
        reloaded = list(load_path(trace.path))
        assert len(reloaded) == len(trace)
        # The resident tail and the end of the spill file agree exactly.
        assert reloaded[-SOAK_KEEP_LAST:] == trace.tail()

    def test_every_correct_process_well_served(self, soak_run):
        # Jain's index is only meaningful under homogeneous contention
        # (see its ring test); on this heterogeneous graph a node whose
        # whole neighborhood crashed legitimately feasts.  The soak claim
        # is service, not equality: every correct process eats a lot.
        graph, protocol, crash_plan, daemon = soak_run
        meals = daemon.table.eat_counts()
        assert min(meals.get(pid, 0) for pid in daemon.table.correct_pids) >= 50

    def test_fairness_among_equally_contended(self, soak_run):
        # Among correct processes with the same degree and no crashed
        # neighbors, service is near-uniform.
        graph, protocol, crash_plan, daemon = soak_run
        meals = daemon.table.eat_counts()
        faulty = set(crash_plan.faulty)
        groups = {}
        for pid in daemon.table.correct_pids:
            if any(nbr in faulty for nbr in graph.neighbors(pid)):
                continue
            groups.setdefault(graph.degree(pid), []).append(meals.get(pid, 0))
        checked = 0
        for degree, counts in groups.items():
            if len(counts) >= 3:
                assert jain_fairness_index(counts) > 0.9, (degree, counts)
                checked += 1
        assert checked >= 1

    def test_replay_fingerprint_is_stable(self, soak_run):
        # Spot determinism at scale: replay a shorter prefix twice.
        graph, protocol, crash_plan, daemon = soak_run

        def prefix_fingerprint():
            protocol2 = GreedyRecoloring(graph)
            daemon2 = DistributedDaemon(
                graph,
                protocol2,
                seed=404,
                latency=PartialSynchronyLatency(
                    gst=60.0, min_delay=0.1, pre_gst_max=6.0, post_gst_max=1.0
                ),
                detector=heartbeat_detector(
                    interval=1.0, initial_timeout=2.0, timeout_increment=1.0
                ),
                crash_plan=crash_plan,
                step_time=0.5,
                check_invariants=False,
            )
            daemon2.run(until=100.0)
            return daemon2.table.fingerprint()

        assert prefix_fingerprint() == prefix_fingerprint()
