"""Property-based tests (hypothesis) for the Verdict merge algebra.

The merge algebra is what makes multi-stream judgement sound: per-host
verdicts in the live cluster, per-seed verdicts in the scenario cache,
and per-chunk verdicts in fuzz campaigns are all combined with
:meth:`Verdict.merge`.  These laws are what the consumers silently rely
on: merging is associative and commutative (hosts can report in any
order, reductions can tree up), the empty verdict is an identity, the
status lattice is monotone (merging can never *un-fail* a property),
and JSON round-trips preserve everything including witnesses.

Counters use integers here: float summation is not associative to the
last ulp, and the laws under test are the algebra's, not IEEE 754's.
"""

from hypothesis import given, settings, strategies as st

from repro.checks import (
    FAIL,
    PASS,
    SKIP,
    STATUS_ORDER,
    PropertyVerdict,
    Verdict,
    Violation,
    worst_status,
)

PROPS = ("wx-safety", "progress", "overtaking", "channel-bound", "fifo")
STATUSES = (PASS, FAIL, SKIP)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def violations(prop):
    return st.builds(
        Violation,
        prop=st.just(prop),
        time=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        detail=st.text(max_size=20),
        subject=st.tuples(st.integers(0, 9)),
        event_index=st.one_of(st.none(), st.integers(0, 10_000)),
    )


@st.composite
def property_verdicts(draw, prop=None):
    name = prop if prop is not None else draw(st.sampled_from(PROPS))
    status = draw(st.sampled_from(STATUSES))
    if status == SKIP:
        # The algebra treats skip as "no evidence": bare by construction.
        return PropertyVerdict(prop=name, status=SKIP)
    wits = draw(st.lists(violations(name), max_size=3)) if status == FAIL else []
    counter_names = draw(
        st.lists(
            st.sampled_from(
                ("violations_total", "max_in_transit", "peak_queue", "last_seen", "seen")
            ),
            unique=True,
            max_size=4,
        )
    )
    counters = {name_: draw(st.integers(0, 1000)) for name_ in counter_names}
    return PropertyVerdict(prop=name, status=status, violations=wits, counters=counters)


@st.composite
def verdicts(draw):
    names = draw(st.lists(st.sampled_from(PROPS), unique=True, max_size=len(PROPS)))
    props = {name: draw(property_verdicts(prop=name)) for name in names}
    return Verdict(
        properties=props,
        events_observed=draw(st.integers(0, 10_000)),
        horizon=draw(st.one_of(st.none(), st.floats(0.0, 1e6, allow_nan=False))),
    )


def _witness_key(v):
    return (v.prop, v.time, v.detail, v.subject, -1 if v.event_index is None else v.event_index)


def canonical(verdict):
    """Order-insensitive normal form: violations as multisets."""
    out = {}
    for name, prop in verdict.properties.items():
        out[name] = (
            prop.status,
            tuple(sorted(_witness_key(w) for w in prop.violations)),
            tuple(sorted(prop.counters.items())),
        )
    return out, verdict.events_observed, verdict.horizon


# ----------------------------------------------------------------------
# Merge laws
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(verdicts(), verdicts(), verdicts())
def test_merge_associative(a, b, c):
    left = Verdict.merge([Verdict.merge([a, b]), c])
    right = Verdict.merge([a, Verdict.merge([b, c])])
    assert canonical(left) == canonical(right)


@settings(max_examples=200)
@given(verdicts(), verdicts())
def test_merge_commutative_up_to_witness_order(a, b):
    ab = Verdict.merge([a, b])
    ba = Verdict.merge([b, a])
    assert ab.statuses() == ba.statuses()
    assert canonical(ab)[0].keys() == canonical(ba)[0].keys()
    for name in ab.properties:
        assert canonical(ab)[0][name] == canonical(ba)[0][name]


@settings(max_examples=200)
@given(verdicts())
def test_merge_identity(v):
    identity = Verdict(properties={})
    merged = Verdict.merge([v, identity])
    # Identity adds no properties and no events; bare-skip properties
    # stay bare skips.
    assert canonical(merged) == canonical(v)
    assert canonical(Verdict.merge([identity, v])) == canonical(v)


@settings(max_examples=200)
@given(verdicts())
def test_merge_idempotent_on_statuses(v):
    # Statuses are a lattice join, so self-merge never changes them
    # (counters sum, so the full verdict is deliberately NOT idempotent).
    assert Verdict.merge([v, v]).statuses() == v.statuses()


# ----------------------------------------------------------------------
# Status lattice
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(verdicts(), verdicts())
def test_merge_status_monotone(a, b):
    """Merged status is the join: never below either input's status."""
    merged = Verdict.merge([a, b])
    for name, prop in merged.properties.items():
        inputs = [
            v.properties[name].status for v in (a, b) if name in v.properties
        ]
        assert STATUS_ORDER[prop.status] == max(STATUS_ORDER[s] for s in inputs)


@settings(max_examples=200)
@given(st.lists(st.sampled_from(STATUSES), max_size=8))
def test_worst_status_is_join(statuses):
    worst = worst_status(statuses)
    assert all(STATUS_ORDER[s] <= STATUS_ORDER[worst] for s in statuses)
    assert worst in (list(statuses) + [SKIP])


def test_status_lattice_order():
    """skip (no evidence) < pass (evidence, clean) < fail."""
    assert STATUS_ORDER[SKIP] < STATUS_ORDER[PASS] < STATUS_ORDER[FAIL]
    assert worst_status([]) == SKIP
    assert worst_status([SKIP, PASS]) == PASS
    assert worst_status([PASS, FAIL, SKIP]) == FAIL


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(verdicts())
def test_json_round_trip_preserves_everything(v):
    back = Verdict.from_json(v.to_json())
    assert canonical(back) == canonical(v)
    assert back.ok == v.ok
    # ``properties`` dict order follows to_json's sorted rendering, so
    # the failing-name *set* is what round-trips.
    assert sorted(back.failed) == sorted(v.failed)
    # Witnesses survive with full fidelity, order included.
    for name, prop in v.properties.items():
        assert [w.to_json() for w in back.properties[name].violations] == [
            w.to_json() for w in prop.violations
        ]
