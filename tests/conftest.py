"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import DiningTable, scripted_detector
from repro.graphs import topologies
from repro.sim.crash import CrashPlan


@pytest.fixture
def ring6():
    return topologies.ring(6)


@pytest.fixture
def path3():
    return topologies.path(3)


def quick_table(graph, **kwargs) -> DiningTable:
    """A DiningTable with fast, deterministic defaults for unit tests."""
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("detector", scripted_detector())
    return DiningTable(graph, **kwargs)


def crash_one(pid: int, at: float) -> CrashPlan:
    return CrashPlan.scripted({pid: at})
