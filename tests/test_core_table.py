"""Unit tests for the DiningTable harness."""

import pytest

from repro.core import (
    AlwaysHungry,
    DiningTable,
    null_detector,
    perfect_detector,
    scripted_detector,
)
from repro.detectors import NullDetector, PerfectDetector, ScriptedDetector
from repro.errors import ColoringError, ConfigurationError
from repro.sim.crash import CrashPlan


class TestWiring:
    def test_builds_one_diner_per_node(self, ring6):
        table = DiningTable(ring6, seed=1)
        assert sorted(table.diners) == list(range(6))

    def test_default_coloring_is_proper(self, ring6):
        table = DiningTable(ring6, seed=1)
        for a, b in ring6.edges:
            assert table.coloring[a] != table.coloring[b]

    def test_custom_coloring_validated(self, ring6):
        bad = {pid: 0 for pid in ring6.nodes}
        with pytest.raises(ColoringError):
            DiningTable(ring6, coloring=bad)

    def test_crash_plan_unknown_pid_rejected(self, ring6):
        with pytest.raises(ConfigurationError):
            DiningTable(ring6, crash_plan=CrashPlan.scripted({99: 1.0}))

    def test_detector_factories(self, ring6):
        assert isinstance(DiningTable(ring6, detector=null_detector()).detector, NullDetector)
        assert isinstance(DiningTable(ring6, detector=perfect_detector()).detector, PerfectDetector)
        assert isinstance(DiningTable(ring6, detector=scripted_detector()).detector, ScriptedDetector)

    def test_scripted_factory_rejects_conflicting_mistakes(self, ring6):
        from repro.detectors.scripted import MistakeInterval

        factory = scripted_detector(
            convergence_time=10.0,
            random_mistakes=True,
            mistakes=(MistakeInterval(0, 1, 1.0, 2.0),),
        )
        with pytest.raises(ConfigurationError):
            DiningTable(ring6, detector=factory)

    def test_correct_pids_excludes_faulty(self, ring6):
        table = DiningTable(ring6, crash_plan=CrashPlan.scripted({2: 5.0, 4: 7.0}))
        assert table.correct_pids == (0, 1, 3, 5)


class TestExecution:
    def test_run_returns_self_for_chaining(self, ring6):
        table = DiningTable(ring6, seed=1)
        assert table.run(until=10.0) is table

    def test_run_is_resumable(self, ring6):
        table = DiningTable(ring6, seed=1)
        table.run(until=10.0)
        first = sum(table.eat_counts().values())
        table.run(until=50.0)
        assert sum(table.eat_counts().values()) > first

    def test_clock_advances_to_horizon(self, ring6):
        table = DiningTable(ring6, seed=1).run(until=25.0)
        assert table.sim.now == 25.0


class TestDeterminism:
    def test_same_seed_identical_runs(self, ring6):
        results = []
        for _ in range(2):
            table = DiningTable(
                ring6,
                seed=42,
                detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
                crash_plan=CrashPlan.scripted({1: 15.0}),
            )
            table.run(until=120.0)
            results.append(
                (
                    table.eat_counts(),
                    len(table.violations()),
                    table.message_stats.total,
                    table.sim.processed_events,
                )
            )
        assert results[0] == results[1]

    def test_different_seeds_diverge(self, ring6):
        def outcome(seed):
            table = DiningTable(
                ring6,
                seed=seed,
                workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
                latency=None,
            )
            table.run(until=60.0)
            return table.eat_counts()

        # Fixed latency makes runs identical across seeds; use workload
        # randomness via Poisson instead for divergence.
        from repro.core import PoissonWorkload

        def poisson_outcome(seed):
            table = DiningTable(ring6, seed=seed, workload=PoissonWorkload())
            table.run(until=120.0)
            return table.eat_counts()

        assert poisson_outcome(1) != poisson_outcome(2)


class TestAnalysisConveniences:
    def test_failure_free_run_is_clean(self, ring6):
        table = DiningTable(ring6, seed=3).run(until=150.0)
        assert table.violations() == []
        assert table.starving_correct(patience=60.0) == []
        assert table.max_overtaking() <= 2
        assert table.throughput() > 0.0

    def test_monitors_observe_traffic(self, ring6):
        table = DiningTable(ring6, seed=3).run(until=50.0)
        assert table.message_stats.total > 0
        assert table.occupancy.max_occupancy >= 1
        assert set(table.message_stats.by_type) <= {"Ping", "Ack", "ForkRequest", "Fork"}

    def test_response_times_for_specific_pids(self, ring6):
        table = DiningTable(ring6, seed=3).run(until=100.0)
        assert len(table.response_times([0])) > 0
        assert len(table.response_times()) >= len(table.response_times([0]))
