"""Tests for the exhaustive small-scope explorer.

Clean verdicts on the real algorithm, and mutation tests proving the
explorer detects seeded bugs — so the clean verdicts mean something.
"""

import types

import pytest

from repro.core.messages import Fork
from repro.errors import ConfigurationError
from repro.graphs import path, ring, star
from repro.verify import explore_dining


class TestCleanVerdicts:
    """Algorithm 1, crash-free, null detector: every schedule is safe."""

    def test_pair_two_sessions_exhaustive(self):
        report = explore_dining(path(2), max_sessions=2)
        assert report.clean
        assert report.violations == []
        assert report.terminal_states >= 1
        assert report.states_visited > 100  # the space was non-trivial

    def test_path3_exhaustive(self):
        report = explore_dining(path(3), max_sessions=1)
        assert report.clean
        assert report.states_visited > 500

    def test_ring3_exhaustive(self):
        report = explore_dining(ring(3), max_sessions=1)
        assert report.clean
        assert report.states_visited > 5_000

    def test_star4_exhaustive(self):
        report = explore_dining(star(4), max_sessions=1)
        assert report.clean
        assert report.states_visited > 10_000

    def test_perpetual_weak_exclusion_is_literal(self):
        # The checker runs in EVERY visited state; clean means no state
        # anywhere in the space has two neighbors eating.
        report = explore_dining(path(2), max_sessions=2)
        assert not any(v.kind == "exclusion" for v in report.violations)

    def test_scope_guard(self):
        with pytest.raises(ConfigurationError):
            explore_dining(ring(5))

    def test_budget_truncation_reported(self):
        report = explore_dining(ring(3), max_sessions=1, max_states=50)
        assert report.truncated
        assert not report.clean  # truncated ⇒ not a verdict


def _eager_grant_mutation(diner):
    """Seeded bug: grant every fork request immediately, even while eating."""

    def evil_on_fork_request(self, src, requester_color):
        link = self.links[src]
        link.token = True
        if link.fork:
            self.send(src, Fork(self.pid))
            link.fork = False

    diner._on_fork_request = types.MethodType(evil_on_fork_request, diner)


def _lost_deferred_fork_mutation(diner):
    """Seeded bug: exit forgets to release deferred forks (Action 10)."""

    original_exit = diner.__class__._exit

    def evil_exit(self):
        # Clear the deferral marker so the release loop skips it.
        for _, link in self._links_in_order():
            if link.token and link.fork:
                link.token = False  # the token silently evaporates
        original_exit(self)

    diner._exit = types.MethodType(evil_exit, diner)


class TestMutationDetection:
    """The explorer must find seeded bugs, or its clean verdicts are noise."""

    def test_eager_grant_breaks_exclusion(self):
        report = explore_dining(
            path(2), max_sessions=2, diner_mutator=_eager_grant_mutation
        )
        assert report.violations
        assert report.violations[0].kind == "exclusion"
        # The counterexample path is concrete and replayable.
        assert any("Fork" in step for step in report.violations[0].path)

    def test_lost_deferred_fork_deadlocks(self):
        report = explore_dining(
            path(2), max_sessions=2, diner_mutator=_lost_deferred_fork_mutation
        )
        assert report.violations
        kinds = {v.kind for v in report.violations}
        assert "deadlock" in kinds or "fork-duplication" in kinds

    def test_counterexample_is_minimal_ish(self):
        # Not strictly minimal (DFS), but bounded by the explored depth.
        report = explore_dining(
            path(2), max_sessions=2, diner_mutator=_eager_grant_mutation
        )
        assert len(report.violations[0].path) <= report.max_depth + 1


def _no_fork_suspicion_mutation(diner):
    """Seeded bug: Action 9 ignores suspicion (the E2 phase-2 ablation)."""
    from repro.core.diner import DinerActor

    def evil_try_eat(self):
        for _, link in self._links_in_order():
            if not link.fork:
                return False
        return DinerActor._try_eat(self)

    diner._try_eat = types.MethodType(evil_try_eat, diner)


class TestCrashExploration:
    """A crash as a choice at EVERY point of EVERY schedule."""

    def test_pair_with_crash_is_clean(self):
        report = explore_dining(path(2), max_sessions=2, crashable=(1,))
        assert report.clean
        # The crash branches multiplied the space substantially.
        baseline = explore_dining(path(2), max_sessions=2)
        assert report.states_visited > 3 * baseline.states_visited

    def test_path3_middle_crash_is_clean(self):
        report = explore_dining(
            path(3), max_sessions=1, crashable=(1,), max_states=500_000
        )
        assert report.clean
        assert report.states_visited > 15_000

    def test_exhaustive_wait_freedom_meaning(self):
        # Clean means: in no reachable state is a live hungry diner left
        # with nothing pending — wait-freedom over every crash timing and
        # every detection timing, not just sampled ones.
        report = explore_dining(path(2), max_sessions=1, crashable=(1,))
        assert not any(v.kind == "deadlock" for v in report.violations)
        assert report.clean

    def test_suspicion_ablation_caught_with_counterexample(self):
        report = explore_dining(
            path(2),
            max_sessions=1,
            crashable=(1,),
            diner_mutator=_no_fork_suspicion_mutation,
        )
        assert report.violations
        assert report.violations[0].kind == "deadlock"
        assert any(step.startswith("crash@1") for step in report.violations[0].path)

    def test_unmutated_detection_choices_do_not_break_exclusion(self):
        # Exclusion among LIVE diners holds in every state even while
        # crash/detect choices interleave arbitrarily (perfect-detector
        # semantics: no false suspicion exists to cause a mistake).
        report = explore_dining(path(2), max_sessions=2, crashable=(0,))
        assert not any(v.kind == "exclusion" for v in report.violations)
        assert report.clean

    def test_unknown_crashable_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            explore_dining(path(2), crashable=(9,))


class TestMultiCrashExploration:
    def test_both_may_crash_on_pair(self):
        # Up to n−1... in fact both may crash (arbitrarily many faults):
        # every combination of crash points is covered, including both
        # diners dying.  Clean = no live hungry diner ever stranded.
        report = explore_dining(
            path(2), max_sessions=1, crashable=(0, 1), max_states=600_000
        )
        assert report.clean

    def test_two_of_three_may_crash(self):
        report = explore_dining(
            path(3), max_sessions=1, crashable=(0, 2), max_states=600_000
        )
        assert report.clean
