"""Tests for the MIS and BFS-tree hosted protocols."""

import random

import pytest

from repro.core import DistributedDaemon, scripted_detector
from repro.errors import ConfigurationError
from repro.graphs import binary_tree, grid, path, random_graph, ring
from repro.sim.crash import CrashPlan
from repro.stabilization import BfsSpanningTree, ENTER, MaximalIndependentSet, RETREAT


def run_to_quiescence(protocol, pids, max_rounds=10_000):
    rng = random.Random(0)
    pids = list(pids)
    for _ in range(max_rounds):
        enabled = [pid for pid in pids if protocol.enabled_actions(pid)]
        if not enabled:
            return True
        protocol.execute(rng.choice(enabled))
    return False


class TestMaximalIndependentSet:
    def test_converges_from_empty(self):
        graph = random_graph(12, 0.35, seed=4)
        protocol = MaximalIndependentSet(graph)
        assert run_to_quiescence(protocol, graph.nodes)
        assert protocol.is_independent()
        assert protocol.is_maximal()

    def test_converges_from_all_in(self):
        graph = ring(7)
        protocol = MaximalIndependentSet(graph, initial={pid: True for pid in graph.nodes})
        assert run_to_quiescence(protocol, graph.nodes)
        assert protocol.is_independent() and protocol.is_maximal()

    def test_retreat_prefers_larger_id(self):
        graph = path(2)
        protocol = MaximalIndependentSet(graph, initial={0: True, 1: True})
        assert protocol.enabled_actions(0) == []  # smaller id stays
        assert protocol.enabled_actions(1) == [RETREAT]

    def test_enter_requires_no_in_neighbor(self):
        graph = path(2)
        protocol = MaximalIndependentSet(graph, initial={0: True})
        assert protocol.enabled_actions(1) == []

    def test_isolated_node_enters(self):
        from repro.graphs import ConflictGraph

        graph = ConflictGraph([0, 1, 2], [(0, 1)])
        protocol = MaximalIndependentSet(graph)
        assert protocol.enabled_actions(2) == [ENTER]

    def test_frozen_crashed_in_respected(self):
        graph = path(3)
        protocol = MaximalIndependentSet(graph, initial={1: True})
        # 1 "crashed" frozen IN; 0 and 2 cannot enter and are quiescent.
        assert run_to_quiescence(protocol, [0, 2])
        assert protocol.legitimate([0, 2])
        assert protocol.members() == {1}

    def test_under_wait_free_daemon_with_crash(self):
        graph = grid(3, 3)
        protocol = MaximalIndependentSet(graph, initial={pid: True for pid in graph.nodes})
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=4,
            detector=scripted_detector(convergence_time=15.0, random_mistakes=True),
            crash_plan=CrashPlan.scripted({4: 10.0}),
        )
        daemon.run(until=300.0)
        assert daemon.converged()
        assert protocol.is_independent()


class TestBfsSpanningTree:
    def test_converges_to_true_distances(self):
        graph = grid(3, 4)
        protocol = BfsSpanningTree(graph, root=0)
        assert run_to_quiescence(protocol, graph.nodes)
        assert protocol.is_correct_bfs(graph.nodes)
        assert protocol.dist(0) == 0
        assert protocol.dist(11) == 5  # opposite grid corner

    def test_converges_from_adversarial_corruption(self):
        graph = binary_tree(10)
        protocol = BfsSpanningTree(
            graph, root=0, initial={pid: (0, None) for pid in graph.nodes}
        )
        assert run_to_quiescence(protocol, graph.nodes)
        assert protocol.is_correct_bfs(graph.nodes)

    def test_parents_follow_distances(self):
        graph = ring(8)
        protocol = BfsSpanningTree(graph, root=0)
        run_to_quiescence(protocol, graph.nodes)
        for child, parent in protocol.tree_edges():
            assert protocol.dist(parent) == protocol.dist(child) - 1

    def test_unknown_root_rejected(self):
        with pytest.raises(ConfigurationError):
            BfsSpanningTree(ring(5), root=99)

    def test_crashed_dist_poisons_plain_tree(self):
        # 2 crashes frozen at dist 0 (false): without suspicion, its
        # neighbors lock onto the dead advertisement forever.
        graph = path(4)  # 0-1-2-3, root 0
        protocol = BfsSpanningTree(graph, root=0, initial={2: (0, None)})
        run_to_quiescence(protocol, [0, 1, 3])  # 2 is crashed
        assert not protocol.is_correct_bfs([0, 1, 3])
        assert protocol.dist(3) == 1  # poisoned via dead 2

    def test_suspector_heals_the_tree(self):
        graph = path(4)
        crashed = 2
        def suspected(p):
            return frozenset({crashed}) if crashed in graph.neighbors(p) else frozenset()
        protocol = BfsSpanningTree(
            graph, root=0, initial={2: (0, None)}, suspector=suspected
        )
        live = [0, 1, 3]
        assert run_to_quiescence(protocol, live)
        assert protocol.legitimate(live)
        # 3 is disconnected from the root in the live subgraph: sentinel.
        assert protocol.dist(3) == protocol.sentinel
        assert protocol.parent(3) is None
        assert protocol.dist(1) == 1

    def test_under_wait_free_daemon(self):
        graph = grid(3, 3)
        protocol = BfsSpanningTree(
            graph, root=0, initial={pid: (1, None) for pid in graph.nodes}
        )
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=6,
            detector=scripted_detector(convergence_time=10.0, random_mistakes=True),
        )
        daemon.run(until=300.0)
        assert daemon.converged()
        assert protocol.is_correct_bfs(graph.nodes)

    def test_crash_aware_tree_under_daemon(self):
        # Full stack: ◇P₁ modules feed the suspector; after a crash the
        # live subgraph's BFS tree re-forms.
        graph = grid(3, 3)
        daemon_box = []

        def suspector(pid):
            if not daemon_box:
                return frozenset()
            return daemon_box[0].table.detector.module_for(pid).suspected_neighbors()

        protocol = BfsSpanningTree(graph, root=0, suspector=suspector)
        daemon = DistributedDaemon(
            graph,
            protocol,
            seed=6,
            detector=scripted_detector(detection_delay=1.0),
            crash_plan=CrashPlan.scripted({1: 25.0}),
        )
        daemon_box.append(daemon)
        daemon.run(until=400.0)
        assert daemon.converged()
        assert protocol.is_correct_bfs(daemon.live_pids())
