"""Causal request tracing: span assembly, kernel tracer, stitching,
span metrics, verdict annotation, check-cost profiling, flight recorder.

The live-socket half of the tracing surface (in-band wire contexts,
/metrics scrapes, flight dumps on FAIL) lives in ``test_net_live.py``;
this module covers everything that runs on the deterministic kernel.
"""

import json
import os

import pytest

from repro.checks import FAIL, PASS, PropertyVerdict, Verdict, Violation
from repro.checks.stream import events_from_trace
from repro.checks.verdict import annotate_violations
from repro.graphs import topologies
from repro.obs import collecting
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, counter_by_label, counter_total
from repro.obs.profile import flush_check_profile
from repro.obs.tracing import (
    PHASE_SPANS,
    SPAN_EATING,
    SPAN_FORKS_HELD,
    SPAN_FORKS_REQUESTED,
    SPAN_HUNGRY,
    SPAN_REQUEST,
    SpanAssembler,
    attach_tracer,
    completed_meals,
    critical_path,
    dump_spans,
    load_spans,
    make_trace_id,
    render_critical_path,
    render_timeline,
    request_spans,
    slowest_request,
    span_from_dict,
    span_to_dict,
    spans_from_events,
    stitch_spans,
    trace_pid,
    trace_session,
    flush_span_metrics,
)

from .conftest import quick_table


def run_traced_table(graph=None, *, seed=3, until=150.0):
    """A finished kernel run plus its span list."""
    table = quick_table(graph if graph is not None else topologies.ring(6), seed=seed)
    tracer = attach_tracer(table)
    table.run(until=until)
    return table, tracer.finish()


# ----------------------------------------------------------------------
# SpanAssembler (scripted event sequences)
# ----------------------------------------------------------------------
class TestSpanAssembler:
    def test_full_request_builds_four_phases(self):
        """One scripted hunger: phase boundaries, fork detail, Lamport merge."""
        asm = SpanAssembler()
        asm.on_phase(0.0, 1, "thinking", "hungry")
        ctx = asm.send(0.1, 1)
        assert ctx.trace_id == make_trace_id(1, 1)
        assert ctx.span_id == 2  # sent from inside the hungry child
        asm.receive(0.2, 1, 2, "ForkRequest", ctx)
        assert asm.lamport(2) == 3  # merged max(2, 0) + 1
        reply = asm.send(0.3, 2)
        assert reply.trace_id == 0  # pid 2 has no open request
        asm.on_doorway(0.4, 1, True)
        asm.receive(0.5, 2, 1, "Fork", reply)
        assert asm.lamport(1) == 5  # merged max(4, 3) + 1
        asm.on_phase(0.6, 1, "hungry", "eating")
        asm.on_phase(0.9, 1, "eating", "thinking")

        spans = asm.finish(1.0)
        by_name = {span.name: span for span in spans}
        assert set(by_name) == {SPAN_REQUEST, *PHASE_SPANS}
        assert asm.meals == 1 == completed_meals(spans)

        request = by_name[SPAN_REQUEST]
        assert (request.start, request.end, request.status) == (0.0, 0.9, "ok")
        assert (trace_pid(request.trace_id), trace_session(request.trace_id)) == (1, 1)
        # forks-requested closes at the LAST fork's arrival, not at eating.
        assert by_name[SPAN_HUNGRY].end == 0.4
        assert by_name[SPAN_FORKS_REQUESTED].end == 0.5
        assert by_name[SPAN_FORKS_REQUESTED].detail == "last-fork-from=2"
        assert by_name[SPAN_FORKS_HELD].start == 0.5
        assert by_name[SPAN_EATING].start == 0.6
        # Phases tile the request exactly.
        assert by_name[SPAN_HUNGRY].start == request.start
        assert by_name[SPAN_EATING].end == request.end

    def test_crash_closes_spans_as_crashed(self):
        asm = SpanAssembler()
        asm.on_phase(0.0, 4, "thinking", "hungry")
        asm.on_crash(0.5, 4)
        spans = asm.finish(1.0)
        assert {span.status for span in spans} == {"crashed"}
        assert {span.name for span in spans} == {SPAN_REQUEST, SPAN_HUNGRY}

    def test_finish_closes_in_flight_spans_at_horizon(self):
        asm = SpanAssembler()
        asm.on_phase(0.0, 2, "thinking", "hungry")
        spans = asm.finish(3.0)
        request = request_spans(spans)[0]
        assert request.status == "open"
        assert request.end == 3.0

    def test_bounded_ring_evicts_oldest(self):
        asm = SpanAssembler(capacity=4)
        for session in range(5):
            asm.on_phase(float(session), 7, "thinking", "hungry")
            asm.on_doorway(session + 0.2, 7, True)
            asm.on_phase(session + 0.4, 7, "hungry", "eating")
            asm.on_phase(session + 0.6, 7, "eating", "thinking")
        spans = asm.finish(10.0)
        assert len(spans) == 4
        assert asm.evicted == 5 * 5 - 4
        # The retained spans are the most recent ones.
        assert max(trace_session(s.trace_id) for s in spans) == 5

    def test_serialization_round_trip(self):
        _, spans = run_traced_table(until=60.0)
        for span in spans:
            assert span_from_dict(span_to_dict(span)) == span


# ----------------------------------------------------------------------
# Kernel tracer (attach_tracer end to end)
# ----------------------------------------------------------------------
def _structure_ok(spans):
    """Every trace is one request plus in-order, tiling phase children."""
    traces = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    for trace in traces.values():
        requests = [s for s in trace if s.name == SPAN_REQUEST]
        assert len(requests) == 1
        request = requests[0]
        assert request.parent_id is None
        phases = sorted(
            (s for s in trace if s.name in PHASE_SPANS), key=lambda s: s.span_id
        )
        assert all(p.parent_id == 1 for p in phases)
        assert [p.name for p in phases] == list(PHASE_SPANS[: len(phases)])
        assert phases[0].start == request.start
        for before, after in zip(phases, phases[1:]):
            assert before.end == after.start
        if request.status == "ok":
            assert phases[-1].name == SPAN_EATING
            assert phases[-1].end == request.end
    return True


class TestKernelTracer:
    def test_span_meals_match_table_meals(self):
        table, spans = run_traced_table()
        meals = sum(d.meals_eaten for d in table.diners.values())
        assert meals > 0
        assert completed_meals(spans) == meals

    def test_span_trees_are_well_formed(self):
        _, spans = run_traced_table()
        assert _structure_ok(spans)

    def test_same_seed_yields_identical_spans(self):
        """Deterministic ids + deterministic kernel = reproducible traces."""
        _, first = run_traced_table(seed=9, until=100.0)
        _, second = run_traced_table(seed=9, until=100.0)
        assert [span_to_dict(s) for s in first] == [span_to_dict(s) for s in second]

    def test_offline_rebuild_matches_online_requests(self):
        """spans_from_events over the recorded trace finds the same
        requests (same trace ids, same meals) as the attached tracer —
        message-level detail differs (no wire log), causal shape doesn't."""
        table, online = run_traced_table(until=80.0)
        offline = spans_from_events(
            events_from_trace(table.trace), horizon=table.sim.now
        )
        assert _structure_ok(offline)
        assert completed_meals(offline) == completed_meals(online)
        assert {s.trace_id for s in request_spans(offline)} == {
            s.trace_id for s in request_spans(online)
        }

    def test_attach_is_strictly_additive(self):
        """Tracing is opt-in: attaching adds exactly one network monitor
        and one listener set; an untraced table never pays for it."""
        table = quick_table(topologies.ring(6), seed=3)
        baseline = len(table.network._monitors)
        attach_tracer(table)
        assert len(table.network._monitors) == baseline + 1


# ----------------------------------------------------------------------
# Stitching and rendering
# ----------------------------------------------------------------------
class TestStitchAndRender:
    def test_stitch_is_merge_order_invariant(self):
        _, spans = run_traced_table(until=60.0)
        half = len(spans) // 2
        a, b = list(spans[:half]), list(spans[half:])
        assert stitch_spans(a, b) == stitch_spans(b, a) == stitch_spans(spans)

    def test_timeline_and_critical_path_render(self):
        _, spans = run_traced_table(until=60.0)
        pid = request_spans(spans)[0].pid
        timeline = render_timeline(spans, pid=pid, limit=3)
        assert timeline and any("request pid=" in line for line in timeline)
        worst = slowest_request(spans, pid=pid)
        assert worst is not None and trace_pid(worst) == pid
        path = critical_path(spans, worst)
        assert path == sorted(path, key=lambda s: -s.duration)
        rendered = render_critical_path(spans, worst)
        assert rendered[0].startswith(f"critical path for pid={pid}")
        assert any("%" in line for line in rendered[1:])

    def test_dump_and_load_round_trip(self, tmp_path):
        _, spans = run_traced_table(until=60.0)
        path = tmp_path / "spans.jsonl"
        assert dump_spans(path, spans) == len(spans)
        assert load_spans(path) == list(spans)


# ----------------------------------------------------------------------
# Span metrics
# ----------------------------------------------------------------------
class TestSpanMetrics:
    def test_flush_span_metrics_populates_registry(self):
        _, spans = run_traced_table(until=100.0)
        registry = MetricsRegistry()
        flush_span_metrics(spans, registry)
        snapshot = registry.snapshot()
        by_status = counter_by_label(snapshot, "trace.requests_total", "status")
        assert sum(by_status.values()) == len(request_spans(spans))
        histogram_names = {entry["name"] for entry in snapshot["histograms"]}
        assert "trace.phase_seconds" in histogram_names
        assert "trace.request_seconds" in histogram_names
        phases = {
            entry["labels"]["phase"]
            for entry in snapshot["histograms"]
            if entry["name"] == "trace.phase_seconds"
        }
        assert SPAN_EATING in phases


# ----------------------------------------------------------------------
# Verdict annotation
# ----------------------------------------------------------------------
class TestAnnotateViolations:
    def test_witness_gains_enclosing_request_ids(self):
        _, spans = run_traced_table(until=100.0)
        request = request_spans(spans)[0]
        inside = Violation(
            prop="exclusion",
            time=(request.start + request.end) / 2,
            detail="both ends eating",
            subject=(request.pid,),
        )
        outside = Violation(
            prop="exclusion", time=-1.0, detail="before time", subject=(request.pid,)
        )
        verdict = Verdict(
            properties={
                "exclusion": PropertyVerdict(
                    prop="exclusion", status=FAIL, violations=[inside, outside]
                )
            }
        )
        annotated = annotate_violations(verdict, spans)
        tagged, untouched = annotated.properties["exclusion"].violations
        assert tagged.trace_id == request.trace_id
        assert tagged.span_id == request.span_id
        assert untouched.trace_id is None
        # The input verdict is not mutated.
        assert inside.trace_id is None

    def test_passing_verdict_is_preserved(self):
        _, spans = run_traced_table(until=50.0)
        verdict = Verdict(
            properties={"exclusion": PropertyVerdict(prop="exclusion", status=PASS)}
        )
        assert annotate_violations(verdict, spans).ok


# ----------------------------------------------------------------------
# Check-cost profiling
# ----------------------------------------------------------------------
class TestCheckProfiling:
    def test_profiled_run_attributes_wall_clock_per_property(self):
        with collecting(profile=True) as registry:
            table = quick_table(topologies.ring(6), seed=3)
            table.run(until=100.0)
            assert table.verdict().ok  # finalize: the deferred replay runs
        totals = table.checks.profile_totals()
        assert totals, "profiling enabled but nothing attributed"
        assert all(seconds >= 0.0 for seconds, _ in totals.values())
        assert sum(events for _, events in totals.values()) > 0

        snapshot = registry.snapshot()
        walls = counter_by_label(
            snapshot, "checks.property_wall_seconds_total", "property"
        )
        assert set(totals) <= set(walls)

    def test_flush_is_delta_safe(self):
        from repro.checks.suite import CheckSuite

        suite = CheckSuite([], profile=True)
        suite.profile_add("fake-property", 0.25, 4)
        registry = MetricsRegistry()
        flush_check_profile(suite, registry)
        flush_check_profile(suite, registry)  # repeat must not double-count
        snapshot = registry.snapshot()
        wall = counter_total(snapshot, "checks.property_wall_seconds_total")
        events = counter_total(snapshot, "checks.property_events_total")
        assert wall == pytest.approx(0.25)
        assert events == 4
        # New work after a flush is the only thing the next flush adds.
        suite.profile_add("fake-property", 0.75)
        flush_check_profile(suite, registry)
        wall = counter_total(registry.snapshot(), "checks.property_wall_seconds_total")
        assert wall == pytest.approx(1.0)

    def test_unprofiled_suite_contributes_nothing(self):
        table = quick_table(topologies.ring(6), seed=3).run(until=20.0)
        registry = MetricsRegistry()
        assert flush_check_profile(table.checks, registry) == {}
        assert not registry.snapshot()["counters"]


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_rings_are_bounded_and_count_evictions(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record_wire({"kind": "send", "seq": index})
        assert [entry["seq"] for entry in flight.entries("wire")] == [2, 3, 4]
        assert flight.evicted["wire"] == 2
        assert flight.evicted["trace"] == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_writes_rings_and_metadata(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record_trace({"kind": "phase_change", "time": 0.1, "pid": 1,
                             "old_phase": "thinking", "new_phase": "hungry"})
        flight.record_wire({"kind": "send", "time": 0.2, "src": 1, "dst": 2,
                            "type": "ForkRequest", "layer": "dining", "seq": 1})
        directory = flight.dump(
            tmp_path / "flight", reason="verdict-fail", context={"host": 0}
        )
        with open(os.path.join(directory, "flight.json"), encoding="utf-8") as stream:
            meta = json.load(stream)
        assert meta["reason"] == "verdict-fail"
        assert meta["context"] == {"host": 0}
        assert meta["files"] == {"trace": "trace.jsonl", "wire": "wire.jsonl"}
        assert meta["retained"] == {"trace": 1, "wire": 1, "spans": 0}
        with open(os.path.join(directory, "wire.jsonl"), encoding="utf-8") as stream:
            assert json.loads(stream.readline())["type"] == "ForkRequest"
        # Empty rings produce no file.
        assert not os.path.exists(os.path.join(directory, "spans.jsonl"))
