"""The bake-off harness and the expected-status machinery it gates on."""

import json

import pytest

from repro.baselines.bakeoff import (
    ZOO,
    bakeoff_plans,
    bakeoff_windows,
    run_bakeoff,
    section7_budget_bits,
)
from repro.checks import ExpectedStatuses, describe_mismatches, worst_surprise
from repro.errors import ConfigurationError
from repro.graphs import topologies


# ----------------------------------------------------------------------
# ExpectedStatuses: partial maps where FAIL can be the right answer
# ----------------------------------------------------------------------
class TestExpectedStatuses:
    def test_partial_map_ignores_unpinned_properties(self):
        expected = ExpectedStatuses({"progress": "fail"})
        actual = {"progress": "fail", "wx-safety": "pass", "quiescence": "skip"}
        assert expected.matches(actual)
        assert expected.mismatches(actual) == []

    def test_expected_fail_flags_an_accidental_pass(self):
        # The regression the maps exist to catch: a "fixed" classic that
        # stops failing is a change in behavior, not an improvement.
        expected = ExpectedStatuses({"progress": "fail"})
        mismatches = expected.mismatches({"progress": "pass"})
        assert [m.describe() for m in mismatches] == [
            "progress: expected fail, got pass"
        ]

    def test_absent_pinned_property_is_a_mismatch(self):
        expected = ExpectedStatuses({"edge-exclusion": "pass"})
        (mismatch,) = expected.mismatches({"progress": "pass"})
        assert mismatch.actual == "absent"

    def test_require_present_false_tolerates_absence(self):
        expected = ExpectedStatuses({"edge-exclusion": "pass"}, require_present=False)
        assert expected.matches({"progress": "pass"})

    def test_rejects_unpinnable_status(self):
        with pytest.raises(ValueError):
            ExpectedStatuses({"progress": "skip"})

    def test_worst_surprise_ranks_fail_over_skip(self):
        expected = ExpectedStatuses({"fifo": "pass", "progress": "pass"})
        mismatches = expected.mismatches({"fifo": "skip", "progress": "fail"})
        rank, headline = worst_surprise(mismatches)
        assert rank > 0
        assert "progress" in headline
        assert describe_mismatches(mismatches)


# ----------------------------------------------------------------------
# Plans and windows
# ----------------------------------------------------------------------
def test_bakeoff_plans_cover_the_three_regimes():
    plans = bakeoff_plans(topology="ring", n=5, duration=10.0, seed=1)
    assert set(plans) == {"clean", "crash", "churn"}
    assert not plans["clean"].crashes and not plans["clean"].membership
    (crash,) = plans["crash"].crashes
    assert crash.when == "eating" and crash.deadline == pytest.approx(2.0)
    (leave,) = plans["churn"].membership
    assert leave.verb == "leave"
    # Faults land by 0.2·h, strictly inside the judge windows.
    windows = bakeoff_windows(plans["crash"])
    assert crash.deadline < windows.settle < windows.patience < 10.0


def test_bakeoff_windows_scale_with_horizon():
    short = bakeoff_windows(bakeoff_plans(topology="ring", n=5, duration=5.0, seed=1)["clean"])
    long = bakeoff_windows(bakeoff_plans(topology="ring", n=5, duration=50.0, seed=1)["clean"])
    assert long.patience == 10 * short.patience


def test_bakeoff_rejects_nonpositive_duration():
    with pytest.raises(ConfigurationError):
        bakeoff_plans(topology="ring", n=5, duration=0.0, seed=1)


def test_section7_budget_is_logarithmic_in_n():
    small = section7_budget_bits(topologies.ring(4))
    large = section7_budget_bits(topologies.ring(256))
    assert small < large <= small + 6  # 6 doublings of n, +1 bit each


# ----------------------------------------------------------------------
# The harness itself (kernel cells only: wall-clock cheap)
# ----------------------------------------------------------------------
SMOKE_ALGORITHMS = ("dsn", "bakery", "ricart_agrawala", "lehmann_rabin")


def test_kernel_bakeoff_matches_every_recorded_map():
    report = run_bakeoff(
        topologies_list=("ring",),
        n=5,
        duration=5.0,
        substrates=("kernel",),
        algorithms=SMOKE_ALGORITHMS,
    )
    assert len(report.cells) == 3 * len(SMOKE_ALGORITHMS)
    assert report.ok, describe_mismatches(
        [m for cell in report.failing() for m in cell.mismatches]
    )


def test_bakeoff_table_contrasts_dsn_and_the_classics():
    report = run_bakeoff(
        topologies_list=("ring",),
        n=5,
        duration=5.0,
        substrates=("kernel",),
        algorithms=SMOKE_ALGORITHMS,
    )
    by_key = {(c.algorithm, c.regime): c for c in report.cells}
    # The paper's algorithm recovers from the crash; the classics starve.
    assert by_key[("dsn", "crash")].statuses["progress"] == "pass"
    for classic in ("bakery", "ricart_agrawala", "lehmann_rabin"):
        assert by_key[(classic, "crash")].statuses["progress"] == "fail"
    # Only the counter-carrying classics outgrow the Section 7 budget.
    dsn = by_key[("dsn", "clean")]
    assert dsn.max_bits <= dsn.budget_bits
    for counters in ("bakery", "ricart_agrawala"):
        cell = by_key[(counters, "clean")]
        assert cell.max_bits > cell.budget_bits
    # Every kernel cell measured its wire traffic.
    assert all(c.messages > 0 and c.total_bits > 0 for c in report.cells)


def test_bakeoff_report_is_json_serializable():
    report = run_bakeoff(
        topologies_list=("ring",),
        n=4,
        duration=3.0,
        substrates=("kernel",),
        algorithms=("dsn", "bakery"),
    )
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["ok"] is True
    assert payload["config"]["algorithms"] == ["dsn", "bakery"]
    assert {cell["algorithm"] for cell in payload["cells"]} == {"dsn", "bakery"}
    assert "bakery" in payload["zoo"]
    table = report.render_table()
    assert "algorithm" in table and "MISMATCH" not in table


def test_bakeoff_rejects_unknown_algorithm_and_substrate():
    with pytest.raises(ConfigurationError):
        run_bakeoff(algorithms=("dsn", "nope"))
    with pytest.raises(ConfigurationError):
        run_bakeoff(substrates=("kernel", "cloud"))


def test_zoo_expected_maps_pin_only_judgeable_statuses():
    """Every recorded map speaks the pipeline's vocabulary: pins are
    pass/fail only, and live cells pin nothing but safety (eventual
    properties are unjudged on the scaled wall clock)."""
    safety = {"fork-uniqueness", "fifo", "wx-safety"}
    for spec in ZOO.values():
        assert set(spec.expected) <= {
            "clean", "crash", "churn", "live-clean", "live-crash"
        }
        for cell_key, expected in spec.expected.items():
            assert set(expected.statuses.values()) <= {"pass", "fail"}
            if cell_key.startswith("live-"):
                assert set(expected.statuses) == safety
