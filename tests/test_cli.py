"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dine_defaults(self):
        args = build_parser().parse_args(["dine"])
        assert args.topology == "ring"
        assert args.n == 8
        assert args.detector == "scripted"

    def test_rejects_unknown_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dine", "--topology", "mobius"])

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon", "--protocol", "paxos"])


class TestDine:
    def test_successful_run_exits_zero(self, capsys):
        code = main(["dine", "--n", "6", "--crashes", "1", "--horizon", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "starving correct:      none" in out
        assert "peak msgs per edge" in out

    def test_null_detector_with_crash_exits_nonzero(self, capsys):
        code = main([
            "dine", "--n", "6", "--crashes", "1", "--detector", "null",
            "--convergence", "0", "--horizon", "300",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "starving correct:      [" in out

    def test_timeline_flag_prints_lanes(self, capsys):
        code = main([
            "dine", "--n", "5", "--crashes", "0", "--horizon", "100",
            "--timeline", "--width", "40",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out
        assert out.count("|") >= 10

    def test_heartbeat_detector_end_to_end(self, capsys):
        code = main([
            "dine", "--n", "6", "--crashes", "1", "--detector", "heartbeat",
            "--convergence", "40", "--horizon", "400",
        ])
        assert code == 0


class TestDaemon:
    @pytest.mark.parametrize("protocol", ["coloring", "mis", "bfs-tree", "matching"])
    def test_protocols_converge_crash_free(self, protocol, capsys):
        code = main([
            "daemon", "--protocol", protocol, "--topology", "grid",
            "--n", "9", "--crashes", "0", "--horizon", "300",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged:           True" in out

    def test_token_ring_ignores_crashes(self, capsys):
        code = main([
            "daemon", "--protocol", "token-ring", "--n", "5",
            "--crashes", "2", "--horizon", "300",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "ignoring --crashes" in captured.err

    def test_reports_steps_and_violations(self, capsys):
        code = main([
            "daemon", "--protocol", "coloring", "--topology", "ring",
            "--n", "6", "--crashes", "2", "--horizon", "300",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "protocol steps:" in out
        assert "sharing violations:" in out


class TestExperiments:
    def test_only_filter_runs_selected(self, capsys):
        code = main(["experiments", "--only", "e6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E6 — Bounded space" in out
        assert "E1 —" not in out

    def test_only_family_selects_variants(self, capsys):
        code = main(["experiments", "--only", "e4", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "e4 " in out
        assert "e4b" in out

    def test_empty_seeds_exits_two(self, capsys):
        code = main(["experiments", "--only", "e6", "--seeds"])
        err = capsys.readouterr().err
        assert code == 2
        assert "at least one seed" in err

    def test_unknown_only_exits_two(self, capsys):
        code = main(["experiments", "--only", "e99"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown experiment" in err
        assert "e1" in err

    def test_list_enumerates_registry_in_order(self, capsys):
        code = main(["experiments", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        names = [line.split()[0] for line in out.splitlines() if line and not line.startswith(" ")]
        assert names == [
            "e1", "e2", "e3", "e4", "e4b", "e5", "e6",
            "e7", "e7b", "e8", "e8b", "e9", "e10",
            "churn_sweep", "dme_bakeoff", "fuzz_clean", "fuzz_differential",
            "fuzz_mutation", "load_sweep",
        ]

    def test_seed_sweep_prints_aggregated_table(self, capsys):
        code = main([
            "experiments", "--only", "e6", "--seeds", "0", "1",
            "--jobs", "2", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregated over 2 seeds" in out
        assert "replicates" in out


class TestVerify:
    def test_clean_verdict_exits_zero(self, capsys):
        code = main(["verify", "--topology", "path", "--n", "2", "--sessions", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CLEAN" in out

    def test_crashable_scope(self, capsys):
        code = main([
            "verify", "--topology", "path", "--n", "2",
            "--sessions", "1", "--crashable", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "crashable=[1]" in out

    def test_truncation_exits_two(self, capsys):
        code = main([
            "verify", "--topology", "ring", "--n", "3", "--max-states", "20",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "TRUNCATED" in out


class TestTrace:
    def test_dine_spans_then_trace_renders_critical_path(self, tmp_path, capsys):
        spans_path = str(tmp_path / "spans.jsonl")
        code = main([
            "dine", "--n", "5", "--crashes", "0", "--horizon", "100",
            "--spans", spans_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans written:" in out

        code = main(["trace", spans_path, "--pid", "0", "--limit", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "request(s)" in out and "meal(s)" in out
        assert "request pid=0" in out
        assert "critical path for pid=0" in out

    def test_trace_rebuilds_spans_from_event_artifacts(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        code = main([
            "dine", "--n", "5", "--crashes", "0", "--horizon", "100",
            "--trace", trace_path,
        ])
        assert code == 0
        capsys.readouterr()
        code = main(["trace", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path for pid=" in out

    def test_trace_without_spans_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["trace", str(empty)])
        err = capsys.readouterr().err
        assert code == 2
        assert "no spans found" in err

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "spans.jsonl"])
        assert args.limit == 10
        assert args.pid is None and args.trace_id is None
