"""Live loopback vs discrete-event kernel: meals/sec on a ring-8.

Both runs host the *same* ``DinerActor`` with the same eating/thinking
times; only the substrate differs.  The kernel simulates virtual seconds
as fast as the interpreter allows, while the live host spends real
wall-clock seconds, so the kernel's meals-per-wall-second is expected to
win by orders of magnitude — the point of this benchmark is to document
that ratio and to catch regressions in the live runtime's overhead
(codec, call_soon links, wall-clock timers, online checkers).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import ring
from repro.net.host import AsyncHost, HostConfig, run_host

EAT_TIME = 0.05
THINK_TIME = 0.01
LIVE_DURATION = 1.0
KERNEL_HORIZON = 60.0  # virtual seconds


def test_live_loopback_ring8_meal_rate(benchmark):
    """Wall-clock meal throughput of the asyncio loopback runtime."""

    def run_live():
        host = AsyncHost(
            ring(8),
            config=HostConfig(
                duration=LIVE_DURATION,
                seed=1,
                eat_time=EAT_TIME,
                think_time=THINK_TIME,
            ),
        )
        return run_host(host)

    result = run_once(benchmark, run_live)
    meals = sum(result["meals"].values())
    assert result["violations"] == []
    assert meals > 0
    benchmark.extra_info["meals"] = meals
    benchmark.extra_info["meals_per_wall_sec"] = round(meals / LIVE_DURATION, 1)


def test_kernel_ring8_meal_rate(benchmark):
    """The same ring-8 workload under the discrete-event kernel."""

    def run_kernel():
        table = DiningTable(
            ring(8),
            seed=1,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=EAT_TIME, think_time=THINK_TIME),
        )
        table.run(until=KERNEL_HORIZON)
        return table

    table = run_once(benchmark, run_kernel)
    meals = sum(table.eat_counts().values())
    assert meals > 0
    benchmark.extra_info["meals"] = meals
    benchmark.extra_info["virtual_horizon"] = KERNEL_HORIZON
    if benchmark.stats:  # absent under --benchmark-disable
        wall = benchmark.stats.stats.mean
        benchmark.extra_info["meals_per_wall_sec"] = round(meals / wall, 1)
