"""Live loopback vs discrete-event kernel: meals/sec on a ring-8.

Both runs host the *same* ``DinerActor`` with the same eating/thinking
times; only the substrate differs.  The kernel simulates virtual seconds
as fast as the interpreter allows, while the live host spends real
wall-clock seconds, so the kernel's meals-per-wall-second is expected to
win by orders of magnitude — the point of this benchmark is to document
that ratio and to catch regressions in the live runtime's overhead
(codec, call_soon links, wall-clock timers, online checkers).

**Hot-path floor (``BENCH_live.json``).**  The demo knobs above are
eat-time-bound: a ring-8 admits at most 4 concurrent eaters, so 50 ms
meals cap the rate near 80 meals/wall-s no matter how fast the runtime
is.  The floor measurement therefore shrinks eating to 2 ms so the
runtime itself (codec, delivery, probes, checkers, tracing) is the
bottleneck, and gates on two numbers: 3x the ~110 meals/wall-s the
loopback stack sustained before the live-path rework (encode+decode on
every local hop, full-topology probe per step, per-frame socket writes),
and 0.8x the rate recorded when the rework landed.  Run this module
directly to (re)generate ``BENCH_live.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from conftest import run_once

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import ring
from repro.net.host import AsyncHost, HostConfig, run_host

EAT_TIME = 0.05
THINK_TIME = 0.01
LIVE_DURATION = 1.0
KERNEL_HORIZON = 60.0  # virtual seconds

# --- hot-path floor configuration (CPU-bound, not eat-time-bound) -----
HOT_EAT_TIME = 0.002
HOT_THINK_TIME = 0.0005
HOT_DURATION = 2.0
HOT_ROUNDS = 3
#: The pre-rework demo-knob rate the issue tracker quotes; the rework
#: must clear three times this even though the floor config differs.
BASELINE_MEALS_PER_WALL_SEC = 110.0
REQUIRED_MEALS_PER_WALL_SEC = 3.0 * BASELINE_MEALS_PER_WALL_SEC
#: Rate recorded when the live-path rework landed (tracing + checks on).
RECORDED_MEALS_PER_WALL_SEC = 1100.0
FLOOR_RATIO = 0.8  # noisy-box tolerance around the recorded rate


def test_live_loopback_ring8_meal_rate(benchmark):
    """Wall-clock meal throughput of the asyncio loopback runtime."""

    def run_live():
        host = AsyncHost(
            ring(8),
            config=HostConfig(
                duration=LIVE_DURATION,
                seed=1,
                eat_time=EAT_TIME,
                think_time=THINK_TIME,
            ),
        )
        return run_host(host)

    result = run_once(benchmark, run_live)
    meals = sum(result["meals"].values())
    assert result["violations"] == []
    assert meals > 0
    benchmark.extra_info["meals"] = meals
    benchmark.extra_info["meals_per_wall_sec"] = round(meals / LIVE_DURATION, 1)


def test_kernel_ring8_meal_rate(benchmark):
    """The same ring-8 workload under the discrete-event kernel."""

    def run_kernel():
        table = DiningTable(
            ring(8),
            seed=1,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=EAT_TIME, think_time=THINK_TIME),
        )
        table.run(until=KERNEL_HORIZON)
        return table

    table = run_once(benchmark, run_kernel)
    meals = sum(table.eat_counts().values())
    assert meals > 0
    benchmark.extra_info["meals"] = meals
    benchmark.extra_info["virtual_horizon"] = KERNEL_HORIZON
    if benchmark.stats:  # absent under --benchmark-disable
        wall = benchmark.stats.stats.mean
        benchmark.extra_info["meals_per_wall_sec"] = round(meals / wall, 1)


# ----------------------------------------------------------------------
# Hot-path floor: BENCH_live.json
# ----------------------------------------------------------------------
def _run_hot() -> Dict[str, float]:
    """One CPU-bound loopback run; returns meals and wall seconds."""
    host = AsyncHost(
        ring(8),
        config=HostConfig(
            duration=HOT_DURATION,
            seed=1,
            eat_time=HOT_EAT_TIME,
            think_time=HOT_THINK_TIME,
            tracing=True,
        ),
    )
    started = time.perf_counter()
    result = run_host(host)
    elapsed = time.perf_counter() - started
    assert result["violations"] == [], result["violations"]
    return {"meals": float(sum(result["meals"].values())), "seconds": elapsed}


def measure() -> Dict[str, object]:
    """Run the floor measurement and return the BENCH_live payload."""
    samples: List[Dict[str, float]] = [_run_hot() for _ in range(HOT_ROUNDS)]
    rate = max(sample["meals"] / sample["seconds"] for sample in samples)
    floor = FLOOR_RATIO * RECORDED_MEALS_PER_WALL_SEC
    return {
        "benchmark": "live loopback hot-path throughput (ring-8)",
        "method": (
            "ring-8 loopback AsyncHost, tracing and full online checks "
            f"attached, eat {HOT_EAT_TIME * 1000:g} ms / think "
            f"{HOT_THINK_TIME * 1000:g} ms over {HOT_DURATION:g} s so the "
            f"runtime is the bottleneck; best of {HOT_ROUNDS} rounds. "
            "Gates: 3x the pre-rework demo-knob baseline, and "
            f"{FLOOR_RATIO}x the rate recorded at the rework."
        ),
        "config": {
            "topology": "ring-8",
            "eat_time": HOT_EAT_TIME,
            "think_time": HOT_THINK_TIME,
            "duration": HOT_DURATION,
            "tracing": True,
        },
        "samples": [
            {"meals": sample["meals"], "seconds": sample["seconds"]}
            for sample in samples
        ],
        "meals_per_wall_sec": rate,
        "baseline_meals_per_wall_sec": BASELINE_MEALS_PER_WALL_SEC,
        "required_meals_per_wall_sec": REQUIRED_MEALS_PER_WALL_SEC,
        "recorded_meals_per_wall_sec": RECORDED_MEALS_PER_WALL_SEC,
        "floor_ratio": FLOOR_RATIO,
        "floor": floor,
        "pass": rate >= REQUIRED_MEALS_PER_WALL_SEC and rate >= floor,
    }


def test_live_hot_path_floor(benchmark):
    """The live rework's throughput gate (what BENCH_live.json records)."""
    payload = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    rate = payload["meals_per_wall_sec"]
    print()
    print(
        f"live hot-path rate: {rate:,.0f} meals/s "
        f"(need >= {payload['required_meals_per_wall_sec']:,.0f}, "
        f"floor {payload['floor']:,.0f})"
    )
    benchmark.extra_info["meals_per_wall_sec"] = round(rate, 1)
    assert payload["pass"], (
        f"live rate {rate:,.0f}/s below required "
        f"{payload['required_meals_per_wall_sec']:,.0f}/s or floor "
        f"{payload['floor']:,.0f}/s"
    )


def main() -> int:
    payload = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_live.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"live hot-path rate: {payload['meals_per_wall_sec']:,.0f} meals/s "
        f"(need >= {payload['required_meals_per_wall_sec']:,.0f}, "
        f"floor {payload['floor']:,.0f})"
    )
    print(f"wrote {out}")
    return 0 if payload["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
