"""Bench E7 — Wait-free daemons for self-stabilization (Sections 1/8).

Thin wrappers over the registered ``e7`` / ``e7b`` scenarios at paper
scale.

Claims checked: every hosted protocol converges under the wait-free
daemon despite transient faults and crashes; the crash-oblivious baseline
fails to converge once a targeted corruption lands on a starved process.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e7_daemon import COLUMNS, SCALING_COLUMNS


def test_e7b_token_ring_scaling(benchmark):
    rows = run_scenario_once(benchmark, "e7b")
    print()
    print(
        format_table(
            rows, SCALING_COLUMNS, title="E7b — Token-ring stabilization cost vs. n"
        )
    )
    assert all(row["steps_to_converge"] is not None for row in rows)
    # Superlinear total cost: steps/n grows with n (Dijkstra's O(n²)).
    per_n = [row["steps_per_n"] for row in rows]
    assert per_n == sorted(per_n)
    assert per_n[-1] > per_n[0]


def test_e7_daemon_table(benchmark):
    rows = run_scenario_once(benchmark, "e7")
    print()
    print(format_table(rows, COLUMNS, title="E7 — Wait-free daemons for self-stabilization"))

    by_scenario = {(row["scenario"], row["daemon"]): row for row in rows}
    assert by_scenario[("token-ring", "wait-free")]["converged"] == "yes"
    assert by_scenario[("coloring", "wait-free")]["converged"] == "yes"
    assert by_scenario[("coloring", "crash-oblivious")]["converged"] == "NO"
    assert by_scenario[("matching", "wait-free")]["converged"] == "yes"
    assert by_scenario[("matching+widow", "wait-free")]["converged"] == "yes"
