"""Bench E6 — Bounded space (Section 7): regenerate the space-accounting table.

Thin wrapper over the registered ``e6`` scenario at paper scale.

Claims checked: per-process bits scale with the degree δ (constant across
n on bounded-degree topologies, linear only on the clique), exactly six
booleans per neighbor, and O(log n)-bit messages.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e6_space import COLUMNS


def test_e6_space_table(benchmark):
    rows = run_scenario_once(benchmark, "e6")
    print()
    print(format_table(rows, COLUMNS, title="E6 — Bounded space and message size"))

    ring_rows = [r for r in rows if r["topology"] == "ring"]
    assert len({r["bits_per_process"] for r in ring_rows}) == 1  # δ fixed ⇒ flat

    clique_rows = sorted((r for r in rows if r["topology"] == "clique"), key=lambda r: r["n"])
    assert clique_rows[0]["bits_per_process"] < clique_rows[-1]["bits_per_process"]

    assert all(r["bools_per_neighbor"] == 6 for r in rows)
    # Message bits grow by ~log2: doubling n adds O(1) bits.
    by_n = {r["n"]: r["max_message_bits"] for r in ring_rows}
    assert by_n[32] - by_n[8] == 2
