"""Benchmark-suite configuration.

Every benchmark runs its experiment exactly once per measurement
(``rounds=1, iterations=1``): these are whole-simulation macro-benchmarks
whose interesting outputs are the claim checks and the wall-clock cost of
reproducing each published result, not microsecond-level statistics.

The ``bench_e*`` benchmarks are thin wrappers over the scenario registry
(:mod:`repro.scenarios`): each one replays a registered scenario at its
paper-scale defaults through the Runner — with the result cache disabled,
because a benchmark that reads a memoized answer measures nothing.
"""

from __future__ import annotations


def run_once(benchmark, func, **kwargs):
    """Run ``func(**kwargs)`` once under the benchmark timer; return result."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def run_scenario_once(benchmark, name, **overrides):
    """Run registered scenario ``name`` once (uncached, serial); return rows."""
    from repro.scenarios import Runner

    runner = Runner(jobs=1, use_cache=False)

    def execute():
        return runner.run(name, overrides=overrides or None).rows

    return benchmark.pedantic(execute, rounds=1, iterations=1, warmup_rounds=0)
