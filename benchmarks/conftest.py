"""Benchmark-suite configuration.

Every benchmark runs its experiment exactly once per measurement
(``rounds=1, iterations=1``): these are whole-simulation macro-benchmarks
whose interesting outputs are the claim checks and the wall-clock cost of
reproducing each published result, not microsecond-level statistics.
"""

from __future__ import annotations


def run_once(benchmark, func, **kwargs):
    """Run ``func(**kwargs)`` once under the benchmark timer; return result."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
