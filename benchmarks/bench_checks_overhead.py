"""Overhead guard for the `repro.checks` suite on the kernel hot path.

Measures the 10-seed E1 sweep with the check suite attached (the
default: ``check_invariants=True`` arms the strict ``standard_suite``
via ``KernelCheckAdapter``) against the identical sweep with the suite
detached (``check_invariants=False`` — no adapter, no probes, no
per-message checker feed).

Two thresholds, with different jobs:

* ``FLOOR`` — the overhead recorded at the last rebaseline, plus a
  noise margin.  This is the **CI gate**: exceeding it fails the build
  outright (a change made checking slower relative to the same code
  unchecked).  The floor is a *ratio* of two runs of the same build on
  the same box, so it ports across machines.
* ``BUDGET`` — the ~10 % observability target from the ROADMAP,
  reported as ``within_budget`` but not gated on.  The kernel rework
  (see ``docs/PERFORMANCE.md``) cut the *unchecked* sweep by ~1.4x, so
  the checker's near-constant absolute cost is now a larger share of a
  much smaller runtime: wall-clock with checks improved ~1.3x while the
  ratio moved away from the budget.  Closing that gap needs checker-side
  wins, not kernel ones; the floor keeps it from silently widening.

Methodology (same as the metrics-layer measurement recorded in
CHANGES.md): attached/detached runs are interleaved in ABBA order per
seed so slow drift in background load hits both variants equally, and
the overhead is summarized with load-robust estimators — per-seed best
(min) and 25th-percentile times, summed across seeds.  Background load
only ever inflates a sample, so min/low-quartile estimators converge on
the true cost; means and medians on a busy 1-CPU box do not.

Run directly to (re)generate ``BENCH_checks.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_checks_overhead.py

or through pytest (same measurement, pytest-benchmark timer around the
whole sweep):

    PYTHONPATH=src python -m pytest benchmarks/bench_checks_overhead.py
"""

from __future__ import annotations

import functools
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List

SEEDS = tuple(range(1, 11))
PAIRS_PER_SEED = 2  # each ABBA block contributes two samples per variant
BUDGET = 0.10
# Rebaselined after moving sequence stamping into Network.send and
# collapsing the adapter's per-channel FIFO state to one consumed-position
# integer: +21.7 % by min / +21.9 % by p25 on an idle box, plus an
# absolute noise margin for CI runners.
RECORDED_FLOOR = 0.22
FLOOR_MARGIN = 0.06


@contextmanager
def detached_checks() -> Iterator[None]:
    """Force every ``DiningTable`` built inside to skip the check suite."""
    from repro.core.table import DiningTable

    original = DiningTable.__init__

    @functools.wraps(original)
    def patched(self, *args, **kwargs):
        kwargs["check_invariants"] = False
        original(self, *args, **kwargs)

    DiningTable.__init__ = patched
    try:
        yield
    finally:
        DiningTable.__init__ = original


def _run_seed(seed: int) -> float:
    from repro.experiments.e1_safety import run_safety

    started = time.perf_counter()
    run_safety(seed=seed)
    return time.perf_counter() - started


def _quantile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def measure() -> Dict[str, object]:
    """Run the interleaved sweep and return the BENCH_checks payload."""
    attached: Dict[int, List[float]] = {seed: [] for seed in SEEDS}
    detached: Dict[int, List[float]] = {seed: [] for seed in SEEDS}
    for seed in SEEDS:
        for _ in range(PAIRS_PER_SEED):
            attached[seed].append(_run_seed(seed))
            with detached_checks():
                detached[seed].append(_run_seed(seed))
                detached[seed].append(_run_seed(seed))
            attached[seed].append(_run_seed(seed))

    def overhead(estimator) -> float:
        with_checks = sum(estimator(attached[seed]) for seed in SEEDS)
        without = sum(estimator(detached[seed]) for seed in SEEDS)
        return with_checks / without - 1.0

    by_min = overhead(min)
    by_p25 = overhead(lambda samples: _quantile(samples, 0.25))
    best = min(by_min, by_p25)
    return {
        "benchmark": "checks-suite overhead, 10-seed E1 sweep",
        "method": (
            "per-seed ABBA interleaving (A=checks attached, B=detached), "
            f"{PAIRS_PER_SEED} pair(s) per seed; per-seed min / 25th-percentile "
            "times summed across seeds"
        ),
        "seeds": list(SEEDS),
        "samples_per_variant_per_seed": 2 * PAIRS_PER_SEED,
        "attached_seconds": {str(seed): attached[seed] for seed in SEEDS},
        "detached_seconds": {str(seed): detached[seed] for seed in SEEDS},
        "overhead_by_min": by_min,
        "overhead_by_p25": by_p25,
        "budget": BUDGET,
        "within_budget": best <= BUDGET,
        "recorded_floor": RECORDED_FLOOR,
        "floor_margin": FLOOR_MARGIN,
        "within_floor": best <= RECORDED_FLOOR + FLOOR_MARGIN,
    }


def _describe(payload: Dict[str, object]) -> None:
    print(f"overhead by min: {payload['overhead_by_min']:+.1%}")
    print(f"overhead by p25: {payload['overhead_by_p25']:+.1%}")
    print(
        f"floor {RECORDED_FLOOR:.0%} (+{FLOOR_MARGIN:.0%} margin): "
        f"{'ok' if payload['within_floor'] else 'REGRESSION'}; "
        f"budget {BUDGET:.0%}: "
        f"{'ok' if payload['within_budget'] else 'over (tracked, not gated)'}"
    )


def test_checks_overhead_within_recorded_floor(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    print()
    _describe(payload)
    assert payload["within_floor"], (
        f"checks overhead regressed beyond the recorded floor: "
        f"min(by_min, by_p25) = "
        f"{min(payload['overhead_by_min'], payload['overhead_by_p25']):.1%} "
        f"> {RECORDED_FLOOR + FLOOR_MARGIN:.1%}"
    )


def main() -> int:
    payload = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_checks.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    _describe(payload)
    print(f"wrote {out}")
    return 0 if payload["within_floor"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
