"""Bench E5 — Quiescence (Section 7): regenerate the post-crash traffic table.

Claims checked: dining traffic to each crashed process is bounded
(proportional to its degree, a handful of messages per neighbor) and then
stops — extending the run 4× adds zero messages.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.e5_quiescence import COLUMNS, run_quiescence


def test_e5_quiescence_table(benchmark):
    rows = run_once(
        benchmark,
        run_quiescence,
        topology_names=("ring", "clique", "grid"),
        n=10,
        crash_count=3,
        horizon=300.0,
    )
    print()
    print(format_table(rows, COLUMNS, title="E5 — Quiescence toward crashed processes"))

    assert all(row["msgs_in_extension"] == 0 for row in rows)
    # Per neighbor: at most a ping, a fork request, a deferred fork, and a
    # deferred ack can chase the dead process.
    assert all(row["post_crash_msgs"] <= 4 * row["degree"] for row in rows)
