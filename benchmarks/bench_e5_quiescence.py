"""Bench E5 — Quiescence (Section 7): regenerate the post-crash traffic table.

Thin wrapper over the registered ``e5`` scenario at paper scale.

Claims checked: dining traffic to each crashed process is bounded
(proportional to its degree, a handful of messages per neighbor) and then
stops — extending the run 4× adds zero messages.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e5_quiescence import COLUMNS


def test_e5_quiescence_table(benchmark):
    rows = run_scenario_once(benchmark, "e5")
    print()
    print(format_table(rows, COLUMNS, title="E5 — Quiescence toward crashed processes"))

    assert all(row["msgs_in_extension"] == 0 for row in rows)
    # Per neighbor: at most a ping, a fork request, a deferred fork, and a
    # deferred ack can chase the dead process.
    assert all(row["post_crash_msgs"] <= 4 * row["degree"] for row in rows)
