"""Bench E1 — Safety (Theorem 1): regenerate the eventual-weak-exclusion table.

Thin wrapper over the registered ``e1`` scenario at paper scale.

Claim checked: zero exclusion violations after the convergence cutoff in
every configuration; violation counts grow with the convergence time.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e1_safety import COLUMNS


def test_e1_safety_table(benchmark):
    rows = run_scenario_once(benchmark, "e1")
    print()
    print(format_table(rows, COLUMNS, title="E1 — Safety under eventual weak exclusion"))

    assert all(row["violations_after_cutoff"] == 0 for row in rows)
    for topology in {row["topology"] for row in rows}:
        per_tc = {row["T_c"]: row["violations"] for row in rows if row["topology"] == topology}
        assert per_tc[0.0] <= per_tc[75.0]
