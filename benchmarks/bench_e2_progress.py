"""Bench E2 — Wait-free progress (Theorem 2): regenerate the crash sweep.

Thin wrapper over the registered ``e2`` scenario at paper scale.

Claim checked: Algorithm 1 starves nobody at any crash count f ∈
{0, …, n−1}; the oracle-free Choy-Singh baseline and both suspicion
ablations starve once f ≥ 1.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e2_progress import COLUMNS


def test_e2_progress_table(benchmark):
    rows = run_scenario_once(benchmark, "e2")
    print()
    print(format_table(rows, COLUMNS, title="E2 — Wait-free progress under crash faults"))

    for row in rows:
        if row["algorithm"] == "algorithm-1":
            assert row["starving_correct"] == 0, row
        elif row["crashes"] >= 1:
            assert row["starving_correct"] > 0, row
