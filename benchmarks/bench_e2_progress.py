"""Bench E2 — Wait-free progress (Theorem 2): regenerate the crash sweep.

Claim checked: Algorithm 1 starves nobody at any crash count f ∈
{0, …, n−1}; the oracle-free Choy-Singh baseline and both suspicion
ablations starve once f ≥ 1.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.e2_progress import ALGORITHMS, COLUMNS, run_progress


def test_e2_progress_table(benchmark):
    rows = run_once(
        benchmark,
        run_progress,
        n=8,
        crash_counts=(0, 1, 4, 7),
        algorithms=ALGORITHMS,
        horizon=500.0,
        patience=200.0,
    )
    print()
    print(format_table(rows, COLUMNS, title="E2 — Wait-free progress under crash faults"))

    for row in rows:
        if row["algorithm"] == "algorithm-1":
            assert row["starving_correct"] == 0, row
        elif row["crashes"] >= 1:
            assert row["starving_correct"] > 0, row
