"""Kernel hot-path throughput guard: calendar queue vs the seed's heap.

Two measurements, recorded together in ``BENCH_kernel.json``:

**1. Kernel event throughput (the ≥3x criterion).**  A deterministic
event storm — the ring-8 dining mix in miniature: ~80 % fire-and-forget
deliveries one latency ahead, plus timer chains with cancellations and
zero-delay guard re-evaluations — is driven through two kernels:

* the **current** kernel (``repro.sim.kernel.Simulator``: calendar/bucket
  queue, handle-less transient entries, fused ``pop_due`` step loop), and
* the **legacy** kernel, reimplemented *verbatim in this file* from the
  growth seed (binary heap keyed by ``(time, priority, sequence)`` tuples,
  one ``Event`` dataclass per scheduled action, ``peek_time`` + ``pop``
  per step).  Pinning the seed implementation here keeps the comparison
  honest after the real one is gone from the tree.

Both kernels process the *identical* event sequence; the ratio of their
events-per-second is the kernel speedup the tentpole rework claims.

**2. End-to-end ring-8 meal rate (regression floor).**  The recorded
baseline for the full stack — ``DiningTable`` on a ring of 8 with the
default strict check suite attached — is ~9,000 meals per wall-second
(see ROADMAP.md / CHANGES.md).  The kernel rework must not regress it:
this benchmark re-measures the exact recorded scenario and fails if the
rate falls below ``MEAL_FLOOR_RATIO`` of the baseline.  (The meal rate is
dominated by actor logic and invariant probes, not kernel machinery,
which is why the speedup criterion is measured on the kernel in
isolation.)

Methodology follows ``bench_checks_overhead.py``: legacy/current samples
are interleaved ABBA so background-load drift hits both variants equally,
and rates are taken from per-variant minimum times (load only ever
inflates a sample, so min converges on the true cost on a busy box).

Run directly to (re)generate ``BENCH_kernel.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_kernel_speed.py

or through pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_speed.py
"""

from __future__ import annotations

import heapq
import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator

# The recorded full-stack baseline (ring-8, checks attached; ROADMAP.md).
RECORDED_MEALS_PER_WALL_SEC = 9_000.0
MEAL_FLOOR_RATIO = 0.8  # noisy-box tolerance around the recorded rate
REQUIRED_SPEEDUP = 3.0

# The storm runs at scale-out size: 10,000 concurrent sources keep tens
# of thousands of entries pending, which is where the seed's global
# binary heap pays O(log n) tuple-key comparisons per operation while
# the calendar queue stays O(1) per event.  (At toy sizes — a ring of 8,
# ~100 pending entries — both queues are fast and the gap shrinks; the
# rework targets the n=10,000-diner regime.)
STORM_SOURCES = 25_000
STORM_HORIZON = 12.0
STORM_ROUNDS = 2  # ABBA pairs

EAT_TIME = 0.05
THINK_TIME = 0.01
KERNEL_HORIZON = 60.0
MEAL_ROUNDS = 9


# ----------------------------------------------------------------------
# The seed's kernel, pinned for comparison (verbatim data structures)
# ----------------------------------------------------------------------
@dataclass(order=False)
class _LegacyEvent:
    time: float
    priority: EventPriority
    sequence: int
    action: Optional[Callable[[], None]]
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["_LegacyEventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.action = None
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None

    def sort_key(self) -> tuple:
        return (self.time, int(self.priority), self.sequence)


class _LegacyEventQueue:
    """The seed's binary heap of ``Event`` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time, priority, action, *, label=""):
        event = _LegacyEvent(time, priority, next(self._counter), action, label)
        event._queue = self
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live += 1
        return event

    def pop(self):
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            return event
        raise RuntimeError("pop from an empty event queue")

    def peek_time(self):
        heap = self._heap
        while heap and heap[0][1].cancelled:
            heapq.heappop(heap)
        return heap[0][1].time if heap else None

    def _note_cancelled(self) -> None:
        self._live -= 1


class _LegacySimulator:
    """The seed's step loop: ``peek_time`` + ``pop`` + listener scan."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = _LegacyEventQueue()
        self._processed = 0
        self._step_listeners: list = []
        self.profiler = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule_at(self, time, action, *, priority=EventPriority.TIMER, label=""):
        if time < self._now:
            raise RuntimeError(f"cannot schedule {label!r} in the past")
        return self._queue.push(time, priority, action, label=label)

    def schedule_after(self, delay, action, *, priority=EventPriority.TIMER, label=""):
        return self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def step(self) -> bool:
        if not self._queue:
            return False
        event = self._queue.pop()
        self._processed += 1
        self._now = event.time
        action = event.action
        if action is not None:
            profiler = self.profiler
            if profiler is None:
                action()
            else:  # pragma: no cover - the storm never attaches one
                started = time.perf_counter()
                action()
                profiler.record(event.label, time.perf_counter() - started)
        for listener in self._step_listeners:
            listener(self._now)
        return True

    def run(self, *, until: float) -> float:
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > until:
                break
            self.step()
        if until > self._now:
            self._now = until
        return self._now


# ----------------------------------------------------------------------
# The storm: the ring-8 event mix, without the dining layer
# ----------------------------------------------------------------------
class _StormSource:
    """One self-perpetuating traffic source.

    Every fire schedules the next delivery one latency (1.0) ahead —
    through ``schedule_delivery`` where the kernel offers it (the current
    kernel's fire-and-forget path, exactly what the network uses) and
    through ``schedule_at`` at DELIVERY priority otherwise (exactly what
    the seed's network did).  Every 4th fire starts a timer two latencies
    out; every 8th cancels the pending timer first, so half the timers
    die in the queue (exercising lazy discard) and half fire and request
    a zero-delay guard re-evaluation (exercising the REEVALUATE path).
    """

    __slots__ = (
        "sim",
        "next_time",
        "delivered",
        "ticks",
        "reevals",
        "timer",
        "_delivery",
        "_reeval",
        "_deliver_cb",
        "_tick_cb",
        "_reeval_cb",
    )

    def __init__(self, sim) -> None:
        self.sim = sim
        self.next_time = 0.0
        self.delivered = 0
        self.ticks = 0
        self.reevals = 0
        self.timer = None
        self._delivery = getattr(sim, "schedule_delivery", None)
        self._reeval = getattr(sim, "schedule_reevaluation", None)
        # Bound methods are allocated per attribute access; caching them
        # keeps the storm's own cost identical and minimal on both
        # kernels (the network caches its delivery records the same way).
        self._deliver_cb = self.deliver
        self._tick_cb = self.tick
        self._reeval_cb = self.reeval

    def start(self, offset: float) -> None:
        sim = self.sim
        # The source tracks its own delivery cadence (start + k * 1.0)
        # so the storm action costs the same few attribute bumps on both
        # kernels and the measurement isolates kernel machinery.
        self.next_time = time = sim.now + offset
        if self._delivery is not None:
            self._delivery(time, self._deliver_cb, "deliver Storm")
        else:
            sim.schedule_at(
                time,
                self._deliver_cb,
                priority=EventPriority.DELIVERY,
                label="deliver Storm",
            )
        # A far-future sentinel: long timers must coexist with the near
        # traffic (they land in the calendar's far heap).
        sim.schedule_after(10_000.0, self._never, label="sentinel")

    @staticmethod
    def _never() -> None:  # pragma: no cover - beyond every horizon
        raise AssertionError("sentinel fired inside the horizon")

    def deliver(self) -> None:
        self.delivered = count = self.delivered + 1
        self.next_time = time = self.next_time + 1.0
        if self._delivery is not None:
            self._delivery(time, self._deliver_cb, "deliver Storm")
        else:
            self.sim.schedule_at(
                time,
                self._deliver_cb,
                priority=EventPriority.DELIVERY,
                label="deliver Storm",
            )
        if count % 4 == 0:
            if count % 8 == 0 and self.timer is not None:
                self.timer.cancel()
            self.timer = self.sim.schedule_after(2.0, self._tick_cb, label="tick")

    def tick(self) -> None:
        self.ticks += 1
        if self._reeval is not None:
            self._reeval(self._reeval_cb, label="reeval")
        else:
            self.sim.schedule_after(
                0.0, self._reeval_cb, priority=EventPriority.REEVALUATE, label="reeval"
            )

    def reeval(self) -> None:
        self.reevals += 1


def run_storm(sim) -> Dict[str, float]:
    """Drive the storm through ``sim``; returns events processed and time."""
    sources = [_StormSource(sim) for _ in range(STORM_SOURCES)]
    for index, source in enumerate(sources):
        source.start(1.0 + index / STORM_SOURCES)
    started = time.perf_counter()
    sim.run(until=STORM_HORIZON)
    elapsed = time.perf_counter() - started
    return {
        "events": float(sim.processed_events),
        "seconds": elapsed,
        "deliveries": float(sum(s.delivered for s in sources)),
        "reevals": float(sum(s.reevals for s in sources)),
    }


def _run_meals() -> Dict[str, float]:
    from repro.core import AlwaysHungry, DiningTable, scripted_detector
    from repro.graphs import ring

    started = time.perf_counter()
    table = DiningTable(
        ring(8),
        seed=1,
        detector=scripted_detector(),
        workload=AlwaysHungry(eat_time=EAT_TIME, think_time=THINK_TIME),
    )
    table.run(until=KERNEL_HORIZON)
    elapsed = time.perf_counter() - started
    assert table.violations() == []
    return {"meals": float(sum(table.eat_counts().values())), "seconds": elapsed}


def measure() -> Dict[str, object]:
    """Run both measurements and return the BENCH_kernel payload."""
    legacy_times: List[float] = []
    current_times: List[float] = []
    legacy_events = current_events = 0.0
    for _ in range(STORM_ROUNDS):
        # ABBA: legacy, current, current, legacy.
        first = run_storm(_LegacySimulator())
        second = run_storm(Simulator(seed=0))
        third = run_storm(Simulator(seed=0))
        fourth = run_storm(_LegacySimulator())
        legacy_times += [first["seconds"], fourth["seconds"]]
        current_times += [second["seconds"], third["seconds"]]
        legacy_events, current_events = first["events"], second["events"]
    if legacy_events != current_events:
        raise AssertionError(
            f"storms diverged: legacy fired {legacy_events}, current {current_events}"
        )
    legacy_rate = legacy_events / min(legacy_times)
    current_rate = current_events / min(current_times)
    speedup = current_rate / legacy_rate

    meal_samples = [_run_meals() for _ in range(MEAL_ROUNDS)]
    meals = meal_samples[0]["meals"]
    best = min(sample["seconds"] for sample in meal_samples)
    meal_rate = meals / best
    meal_floor = MEAL_FLOOR_RATIO * RECORDED_MEALS_PER_WALL_SEC

    return {
        "benchmark": "kernel hot-path throughput (calendar queue rework)",
        "method": (
            "identical event storm through the seed's heap kernel (pinned in "
            "benchmarks/bench_kernel_speed.py) and the current kernel, ABBA "
            f"interleaved x{STORM_ROUNDS}; rates from per-variant min times. "
            "Ring-8 meal rate re-measures the recorded full-stack baseline "
            "scenario (checks attached) as a regression floor."
        ),
        "storm": {
            "sources": STORM_SOURCES,
            "horizon": STORM_HORIZON,
            "events_per_run": legacy_events,
            "legacy_seconds": legacy_times,
            "current_seconds": current_times,
            "events_per_sec_legacy": legacy_rate,
            "events_per_sec_current": current_rate,
            "kernel_speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "dining_ring8": {
            "recorded_baseline_meals_per_wall_sec": RECORDED_MEALS_PER_WALL_SEC,
            "meals": meals,
            "seconds": [sample["seconds"] for sample in meal_samples],
            "meals_per_wall_sec": meal_rate,
            "floor_ratio": MEAL_FLOOR_RATIO,
            "floor": meal_floor,
        },
        "pass": speedup >= REQUIRED_SPEEDUP and meal_rate >= meal_floor,
    }


def test_kernel_speedup_and_meal_floor(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    storm = payload["storm"]
    dining = payload["dining_ring8"]
    print()
    print(f"kernel speedup: {storm['kernel_speedup']:.2f}x (need >= {REQUIRED_SPEEDUP}x)")
    print(f"meal rate: {dining['meals_per_wall_sec']:,.0f}/s (floor {dining['floor']:,.0f}/s)")
    benchmark.extra_info["kernel_speedup"] = round(storm["kernel_speedup"], 2)
    benchmark.extra_info["meals_per_wall_sec"] = round(dining["meals_per_wall_sec"], 1)
    assert payload["pass"], (
        f"kernel speedup {storm['kernel_speedup']:.2f}x "
        f"(need >= {REQUIRED_SPEEDUP}x) or meal rate "
        f"{dining['meals_per_wall_sec']:,.0f}/s below floor {dining['floor']:,.0f}/s"
    )


def main() -> int:
    payload = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    storm = payload["storm"]
    dining = payload["dining_ring8"]
    print(f"kernel speedup: {storm['kernel_speedup']:.2f}x (need >= {REQUIRED_SPEEDUP}x)")
    print(
        f"events/s: legacy {storm['events_per_sec_legacy']:,.0f} -> "
        f"current {storm['events_per_sec_current']:,.0f}"
    )
    print(f"meal rate: {dining['meals_per_wall_sec']:,.0f}/s (floor {dining['floor']:,.0f}/s)")
    print(f"wrote {out}")
    return 0 if payload["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
