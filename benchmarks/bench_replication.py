"""Bench — multi-seed robustness: the hard claims hold in EVERY replicate.

Single-seed tables can get lucky; this bench replays the headline
experiments across seeds and asserts the paper's *universal* claims (zero
post-convergence violations, zero starving correct processes, overtaking
≤ 2) on the max over replicates — i.e., in the worst seed, not on
average.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.e1_safety import run_safety
from repro.experiments.e2_progress import run_progress
from repro.experiments.e3_fairness import run_ring_fairness
from repro.experiments.replication import columns_for, replicate

SEEDS = range(6)


def _replicated_suite():
    safety = replicate(
        run_safety,
        seeds=SEEDS,
        kwargs=dict(topology_names=("ring", "clique"), n=10, convergence_times=(25.0,), horizon=250.0),
        group_by=("topology", "T_c"),
    )
    progress = replicate(
        run_progress,
        seeds=SEEDS,
        kwargs=dict(
            n=8,
            crash_counts=(2,),
            algorithms=("algorithm-1", "choy-singh"),
            horizon=350.0,
            patience=140.0,
        ),
        group_by=("algorithm", "crashes"),
    )

    def fairness_one(*, seed):
        return [run_ring_fairness(n=8, horizon=300.0, seed=seed)]

    fairness = replicate(fairness_one, seeds=SEEDS, group_by=("scenario",))
    return safety, progress, fairness


def test_replicated_claims(benchmark):
    safety, progress, fairness = run_once(benchmark, _replicated_suite)

    print()
    print(format_table(
        safety,
        columns_for(("topology", "T_c"), ("violations", "violations_after_cutoff")),
        title="E1 replicated (6 seeds)",
    ))
    print()
    print(format_table(
        progress,
        columns_for(("algorithm", "crashes"), ("starving_correct",)),
        title="E2 replicated (6 seeds)",
    ))
    print()
    print(format_table(
        fairness,
        columns_for(("scenario",), ("max_overtaking",)),
        title="E3 replicated (6 seeds)",
    ))

    # Universal claims: the WORST replicate satisfies them.
    assert all(row["violations_after_cutoff_max"] == 0.0 for row in safety)
    by_algorithm = {row["algorithm"]: row for row in progress}
    assert by_algorithm["algorithm-1"]["starving_correct_max"] == 0.0
    assert by_algorithm["choy-singh"]["starving_correct_min"] > 0.0
    assert fairness[0]["max_overtaking_max"] <= 2.0
