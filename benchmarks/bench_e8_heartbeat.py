"""Bench E8 — Heartbeat ◇P₁ end-to-end + scalability (Sections 1/2/8).

Thin wrappers over the registered ``e8`` / ``e8b`` scenarios at paper
scale.

Claims checked: with a real heartbeat detector under GST partial
synchrony, wait-freedom / eventual exclusion / 2-bounded waiting all hold
end-to-end; the hostile pre-GST period causes genuine (finitely many)
detector mistakes; throughput scales with ring size.
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e8_heartbeat import COLUMNS, QOS_COLUMNS


def test_e8b_detector_qos(benchmark):
    rows = run_scenario_once(benchmark, "e8b")
    print()
    print(format_table(rows, QOS_COLUMNS, title="E8b — Heartbeat QoS vs. initial timeout"))
    # The Chen-Toueg trade-off: mistakes decrease monotonically as the
    # initial timeout grows; every crash is detected at every setting.
    mistakes = [row["mistakes"] for row in rows]
    assert mistakes == sorted(mistakes, reverse=True)
    assert mistakes[0] > mistakes[-1]
    assert all(row["worst_detection"] is not None for row in rows)


def test_e8_heartbeat_table(benchmark):
    rows = run_scenario_once(benchmark, "e8")
    print()
    print(format_table(rows, COLUMNS, title="E8 — Heartbeat ◇P₁ end-to-end + scalability"))

    assert all(row["starving"] == 0 for row in rows)
    assert all(row["violations_late"] == 0 for row in rows)
    assert all(row["max_overtaking_late"] <= 2 for row in rows)
    assert all(row["false_suspicions"] > 0 for row in rows)

    scale = sorted((r for r in rows if r["sweep"] == "scale"), key=lambda r: r["n"])
    assert scale[-1]["throughput"] > scale[0]["throughput"]
