"""Bench E10 — Drinking philosophers on the dining substrate (extension).

Thin wrapper over the registered ``e10`` scenario at paper scale.

Claims checked: guarantees carry over (wait-free, eventually clean
bottle-scoped exclusion) at every demand density; throughput and mean
concurrency grow monotonically as demands thin; demand = 1.0 behaves like
dining (peak concurrency bounded by the exclusion structure).
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e10_drinking import COLUMNS


def test_e10_drinking_table(benchmark):
    rows = run_scenario_once(benchmark, "e10")
    print()
    print(format_table(rows, COLUMNS, title="E10 — Drinking philosophers (extension)"))

    assert all(row["starving"] == 0 for row in rows)
    assert all(row["late_violations"] == 0 for row in rows)

    by_demand = {row["demand"]: row for row in rows}
    assert by_demand[0.3]["drinks"] > by_demand[0.6]["drinks"] > by_demand[1.0]["drinks"]
    assert (
        by_demand[0.3]["mean_concurrency"]
        > by_demand[0.6]["mean_concurrency"]
        > by_demand[1.0]["mean_concurrency"]
    )
    # Full demand = dining: neighbors exclude, clique concurrency ≈ 1.
    assert by_demand[1.0]["peak_concurrency"] <= 2  # pre-convergence mistakes allow 2
