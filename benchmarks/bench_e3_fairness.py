"""Bench E3 — Eventual 2-bounded waiting (Theorem 3): regenerate the
fairness table.

Thin wrapper over the registered ``e3`` scenario (squeeze sweep + ring
companion + ack-throttle ablation) at paper scale.

Claims checked: Algorithm 1's post-convergence overtaking is ≤ 2 at every
horizon; the forks-only baseline's overtaking exceeds 2 and grows with
run length (unbounded in the limit).
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e3_fairness import COLUMNS


def test_e3_fairness_table(benchmark):
    rows = run_scenario_once(benchmark, "e3")
    print()
    print(format_table(rows, COLUMNS, title="E3 — Eventual 2-bounded waiting"))

    alg1 = [r for r in rows if r["algorithm"] == "algorithm-1"]
    forks = sorted(
        (r for r in rows if r["algorithm"] == "fork-priority"),
        key=lambda r: r["horizon"],
    )
    assert all(r["max_overtaking"] <= 2 for r in alg1)
    assert forks[-1]["max_overtaking"] > 2
    assert forks[-1]["max_overtaking"] > forks[0]["max_overtaking"]

    # The decisive ablation: under the long-meal adversary, the paper's
    # ack throttle is exactly what pins overtaking at 2.
    adversary = {
        r["algorithm"]: r for r in rows if r["scenario"] == "long-meal adversary"
    }
    assert adversary["algorithm-1"]["max_overtaking"] == 2
    assert adversary["no-ack-throttle"]["max_overtaking"] > 10
