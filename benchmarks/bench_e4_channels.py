"""Bench E4 — Bounded-capacity channels (Section 7): regenerate the
per-edge occupancy table.

Thin wrappers over the registered ``e4`` / ``e4b`` scenarios at paper
scale.

Claim checked: at most 4 dining-layer messages in transit per edge at any
time, on every topology (the online checker raises mid-run otherwise).
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e4_channels import COLUMNS, EFFICIENCY_COLUMNS


def test_e4_channels_table(benchmark):
    rows = run_scenario_once(benchmark, "e4")
    print()
    print(format_table(rows, COLUMNS, title="E4 — Bounded-capacity channels"))

    assert all(row["bound_respected"] == "yes" for row in rows)
    assert all(1 <= row["max_in_transit"] <= 4 for row in rows)


def test_e4b_message_efficiency(benchmark):
    rows = run_scenario_once(benchmark, "e4b")
    print()
    print(
        format_table(
            rows, EFFICIENCY_COLUMNS, title="E4b — Messages per meal vs. degree"
        )
    )
    by_topology = {row["topology"]: row for row in rows}
    # Messages per meal tracks δ: the clique (δ = n−1) costs several times
    # the ring (δ = 2), and stays within the 4-messages-per-neighbor cap.
    assert by_topology["clique"]["msgs_per_meal"] > 3 * by_topology["ring"]["msgs_per_meal"]
    for row in rows:
        assert row["msgs_per_meal"] <= 4 * (row["delta"] + 1)
