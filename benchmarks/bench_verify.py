"""Bench V — exhaustive small-scope verification of the implementation.

Not a paper table: this regenerates the model-checking verdicts.  Every
FIFO-respecting interleaving of the real diner actors is explored for
small crash-free configurations, asserting perpetual weak exclusion,
fork/token uniqueness, and deadlock-freedom in every reachable state —
and a seeded mutation is shown to be caught, so the clean verdicts carry
evidence.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.graphs import path, ring, star
from repro.verify import explore_dining

SCOPES = (
    ("path-2 ×2 sessions", lambda: explore_dining(path(2), max_sessions=2)),
    ("path-3", lambda: explore_dining(path(3), max_sessions=1)),
    ("ring-3", lambda: explore_dining(ring(3), max_sessions=1)),
    ("star-4", lambda: explore_dining(star(4), max_sessions=1)),
    (
        "path-2 ×2, crash anywhere",
        lambda: explore_dining(path(2), max_sessions=2, crashable=(1,)),
    ),
    (
        "path-3, mid-crash anywhere",
        lambda: explore_dining(path(3), max_sessions=1, crashable=(1,), max_states=500_000),
    ),
)


def _run_all_scopes():
    rows = []
    for name, run in SCOPES:
        report = run()
        rows.append(
            {
                "scope": name,
                "states": report.states_visited,
                "events_replayed": report.events_fired,
                "terminal": report.terminal_states,
                "max_depth": report.max_depth,
                "violations": len(report.violations),
                "verdict": "CLEAN" if report.clean else "DIRTY",
            }
        )
    return rows


def test_exhaustive_verification(benchmark):
    rows = run_once(benchmark, _run_all_scopes)
    print()
    print(
        format_table(
            rows,
            ("scope", "states", "events_replayed", "terminal", "max_depth", "violations", "verdict"),
            title="V — exhaustive small-scope verification (all interleavings)",
        )
    )
    assert all(row["verdict"] == "CLEAN" for row in rows)
    assert sum(row["states"] for row in rows) > 20_000


def test_mutation_is_caught(benchmark):
    import types

    from repro.core.messages import Fork

    def eager_grant(diner):
        def evil(self, src, requester_color):
            link = self.links[src]
            link.token = True
            if link.fork:
                self.send(src, Fork(self.pid))
                link.fork = False

        diner._on_fork_request = types.MethodType(evil, diner)

    report = run_once(
        benchmark,
        explore_dining,
        graph=path(2),
        max_sessions=2,
        diner_mutator=eager_grant,
    )
    assert report.violations
    assert report.violations[0].kind == "exclusion"