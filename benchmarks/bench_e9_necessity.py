"""Bench E9 — Necessity probes (Section 8 / [21]).

Thin wrapper over the registered ``e9`` scenario at paper scale.

Claims checked: the control run keeps every guarantee; breaking
completeness breaks exactly wait-freedom; breaking eventual accuracy
breaks exactly eventual weak exclusion, with violations that recur (the
count roughly doubles when the horizon doubles — no clean suffix).
"""

from conftest import run_scenario_once

from repro.experiments.common import format_table
from repro.experiments.e9_necessity import COLUMNS


def test_e9_necessity_table(benchmark):
    rows = run_scenario_once(benchmark, "e9")
    print()
    print(format_table(rows, COLUMNS, title="E9 — Necessity probes"))

    by_key = {(r["oracle"], r["horizon"]): r for r in rows}
    for horizon in (300.0, 600.0):
        control = by_key[("control", horizon)]
        assert control["wait_free"] == "yes" and control["eventual_wx"] == "yes"

        incomplete = by_key[("incomplete", horizon)]
        assert incomplete["wait_free"] == "NO"
        assert incomplete["eventual_wx"] == "yes"

        inaccurate = by_key[("inaccurate", horizon)]
        assert inaccurate["wait_free"] == "yes"
        assert inaccurate["eventual_wx"] == "NO"

    # Recurrence: violations keep accruing as the horizon grows.
    assert (
        by_key[("inaccurate", 600.0)]["violations"]
        > by_key[("inaccurate", 300.0)]["violations"]
    )
