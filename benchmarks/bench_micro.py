"""Micro-benchmarks: raw substrate performance.

Not tied to a paper claim — these track the cost structure of the
simulator itself so regressions in the hot path (event queue, network
delivery, guard re-evaluation) are visible.  Unlike the macro benches,
these use pytest-benchmark's normal multi-round measurement.
"""

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.graphs import ring
from repro.sim.events import EventPriority, EventQueue
from repro.sim.kernel import Simulator


def test_event_queue_throughput(benchmark):
    def push_pop_1000():
        queue = EventQueue()
        for i in range(1000):
            queue.push(float(i % 97), EventPriority.TIMER, lambda: None)
        while queue:
            queue.pop()

    benchmark(push_pop_1000)


def test_kernel_event_dispatch(benchmark):
    def run_10k_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_after(0.001, tick)

        sim.schedule_at(0.0, tick)
        sim.run_until_quiescent()

    benchmark.pedantic(run_10k_events, rounds=3, iterations=1)


def test_dining_ring_simulation_rate(benchmark):
    """Virtual-seconds-per-wall-second of a contended 12-ring."""

    def run_ring():
        table = DiningTable(
            ring(12),
            seed=1,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            check_invariants=False,  # measure the algorithm, not the checkers
        )
        table.run(until=200.0)
        return table

    table = benchmark.pedantic(run_ring, rounds=3, iterations=1)
    assert sum(table.eat_counts().values()) > 100


def test_dining_with_invariant_checkers_overhead(benchmark):
    """Same workload with the online checkers armed (documents their cost)."""

    def run_ring_checked():
        table = DiningTable(
            ring(12),
            seed=1,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            check_invariants=True,
        )
        table.run(until=200.0)
        return table

    benchmark.pedantic(run_ring_checked, rounds=3, iterations=1)
