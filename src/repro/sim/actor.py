"""Actor base class: a simulated process.

An :class:`Actor` is an event-driven process bound to a
:class:`~repro.sim.kernel.Simulator` and a
:class:`~repro.sim.network.Network`.  Subclasses implement
:meth:`on_message` (and optionally :meth:`on_start`, :meth:`on_crash`) and
use :meth:`send`, :meth:`set_timer`, and :meth:`request_reevaluation`.

Crash semantics follow the paper's fault model exactly: from its crash
instant a process executes no further steps — pending timers are dead, and
messages addressed to it are dropped by the network.  Crashing is
irreversible.

Guard re-evaluation
-------------------
The dining algorithm is specified as guarded commands that must fire when
continuously enabled.  Actors get weak fairness for free by re-evaluating
guards whenever local state may have changed: every message receipt and
timer firing ends with a call to :meth:`reevaluate` (subclass hook), and
external components (for example a failure detector whose output changed)
call :meth:`request_reevaluation`, which coalesces into at most one pending
re-evaluation event per actor.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CrashedProcessError, SimulationError
from repro.sim.events import Event, EventPriority
from repro.sim.kernel import Simulator
from repro.sim.time import Duration, Instant

ProcessId = int


class Actor:
    """Base class for simulated processes."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.crashed = False
        self.crash_time: Optional[Instant] = None
        self._sim: Optional[Simulator] = None
        self._network = None
        self._reevaluation_pending = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, sim: Simulator, network) -> None:
        """Attach this actor to a simulator and network (called by Network)."""
        self._sim = sim
        self._network = network

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimulationError(f"actor {self.pid} is not bound to a simulator")
        return self._sim

    @property
    def now(self) -> Instant:
        return self.sim.now

    # ------------------------------------------------------------------
    # Lifecycle hooks (subclass API)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the simulation starts; default does nothing."""

    def on_message(self, src: ProcessId, message) -> None:
        """Handle a delivered message; subclasses must override."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called once at the actor's crash instant; default does nothing."""

    def reevaluate(self) -> None:
        """Re-check guarded commands; default does nothing.

        Subclasses with guarded-command semantics override this; the base
        class calls it after every message and timer.
        """

    # ------------------------------------------------------------------
    # Actions available to subclasses
    # ------------------------------------------------------------------
    def send(self, dst: ProcessId, message) -> None:
        """Send ``message`` to ``dst`` over the network.

        Sending from a crashed actor raises: a correct implementation never
        reaches a send after its crash instant, so this surfaces kernel
        bugs instead of silently widening the fault model.
        """
        if self.crashed:
            raise CrashedProcessError(f"crashed process {self.pid} attempted to send")
        if self._network is None:
            raise SimulationError(f"actor {self.pid} is not bound to a network")
        self._network.send(self.pid, dst, message)

    def set_timer(self, delay: Duration, callback: Callable[[], None], *, label: str = "") -> Event:
        """Schedule ``callback`` after ``delay``; suppressed if crashed by then."""

        def fire() -> None:
            if self.crashed:
                return
            callback()
            self.reevaluate()

        return self.sim.schedule_after(delay, fire, priority=EventPriority.TIMER, label=label or f"timer@{self.pid}")

    def request_reevaluation(self) -> None:
        """Schedule a coalesced guard re-evaluation for this actor.

        Safe to call many times per instant; only one event is pending at
        any moment.  Used by failure detectors to notify the dining layer
        that suspicion output changed.
        """
        if self.crashed or self._reevaluation_pending or self._sim is None:
            return
        self._reevaluation_pending = True

        def fire() -> None:
            self._reevaluation_pending = False
            if self.crashed:
                return
            self.reevaluate()

        self.sim.schedule_after(0.0, fire, priority=EventPriority.REEVALUATE, label=f"reeval@{self.pid}")

    # ------------------------------------------------------------------
    # Kernel-facing entry points
    # ------------------------------------------------------------------
    def deliver(self, src: ProcessId, message) -> None:
        """Network entry point; ignores deliveries to crashed actors."""
        if self.crashed:
            return
        self.on_message(src, message)
        self.reevaluate()

    def crash(self) -> None:
        """Crash this actor now; irreversible, idempotent."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_time = self.now if self._sim is not None else None
        self.on_crash()
