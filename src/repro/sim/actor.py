"""The discrete-event kernel as an actor substrate.

The :class:`~repro.core.substrate.Actor` base class (historically defined
here) is written against the :class:`~repro.core.substrate.Substrate`
protocol; this module supplies the simulator-backed implementation:
:class:`KernelSubstrate` adapts a :class:`~repro.sim.kernel.Simulator` +
:class:`~repro.sim.network.Network` pair to that surface, mapping timers
onto ``TIMER``-priority events and guard re-evaluations onto zero-delay
``REEVALUATE``-priority events so same-instant interleavings stay
deterministic.

``Actor`` and ``ProcessId`` are re-exported for the many call sites (and
downstream projects) that import them from their historical home.
"""

from __future__ import annotations

from typing import Callable

from repro.core.substrate import Actor, ProcessId, Substrate, TimerHandle
from repro.sim.events import Event, EventPriority
from repro.sim.time import Duration, Instant

__all__ = ["Actor", "KernelSubstrate", "ProcessId", "Substrate", "TimerHandle"]


class KernelSubstrate:
    """A (simulator, network) pair presented as a :class:`Substrate`.

    Also accepts duck-typed kernels (anything with ``now``, ``streams``,
    and ``schedule_after``) — the exhaustive explorer binds actors to its
    choice kernel through this same adapter.

    ``send`` and ``request_reevaluation`` are bound per instance rather
    than defined as delegating methods: the transport's ``send`` and the
    kernel's transient re-evaluation path are the two hottest substrate
    calls, and binding them directly removes one frame of pure
    delegation from every message and every guard re-check.
    """

    __slots__ = ("sim", "network", "send", "request_reevaluation")

    def __init__(self, sim, network) -> None:
        self.sim = sim
        self.network = network
        self.send = network.send
        fast = getattr(sim, "schedule_reevaluation", None)
        if fast is None:
            # Duck-typed kernel (the explorer's): fall back to a
            # zero-delay REEVALUATE event through its scheduling API.
            def fast(callback: Callable[[], None], *, label: str = "", _sim=sim) -> None:
                _sim.schedule_after(
                    0.0, callback, priority=EventPriority.REEVALUATE, label=label
                )

        self.request_reevaluation = fast

    @property
    def now(self) -> Instant:
        return self.sim.now

    @property
    def streams(self):
        return self.sim.streams

    def set_timer(
        self, delay: Duration, callback: Callable[[], None], *, label: str = ""
    ) -> Event:
        return self.sim.schedule_after(
            delay, callback, priority=EventPriority.TIMER, label=label
        )
