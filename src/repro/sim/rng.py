"""Named, independent random streams derived from a single master seed.

Every stochastic component of a simulation (per-channel latency, hunger
workloads, crash injectors, ...) draws from its own named stream.  Streams
are derived deterministically from ``(master_seed, name)``, so:

* the same master seed replays the same run bit-for-bit;
* adding a new stochastic component does not perturb the draws seen by
  existing components (no shared-stream coupling);
* two components can be compared across configurations while holding the
  other components' randomness fixed.

Derivation hashes the name with SHA-256 rather than Python's ``hash``,
which is salted per interpreter run and would break replayability.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator object,
        so a component can re-fetch its stream instead of storing it.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._master_seed}/{name}".encode("utf-8")).digest()
        generator = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family of streams, namespaced under ``name``.

        Useful when a sub-experiment needs its own independent universe of
        streams without coordinating names with the parent.
        """
        digest = hashlib.sha256(f"{self._master_seed}//{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
