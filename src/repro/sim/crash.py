"""Crash-fault injection plans.

The paper's fault model: a crash fault makes a process cease execution
without warning and never recover, and *arbitrarily many* processes may
crash.  A :class:`CrashPlan` is an immutable description of which processes
crash and when; it is applied to a network before the run starts so the
whole run (including its faults) replays from the seed.

Two constructors cover the experiments:

* :meth:`CrashPlan.scripted` — exact (pid, time) pairs, for targeted
  scenarios like "crash while holding forks";
* :meth:`CrashPlan.random` — crash a given number of distinct processes at
  times drawn from a window, using a named random stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.actor import ProcessId
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.time import Instant, validate_instant


@dataclass(frozen=True)
class CrashPlan:
    """Immutable map from process id to crash instant."""

    crashes: Tuple[Tuple[ProcessId, Instant], ...]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def none() -> "CrashPlan":
        """The failure-free plan."""
        return CrashPlan(())

    @staticmethod
    def scripted(crashes: Mapping[ProcessId, Instant]) -> "CrashPlan":
        """Exact crashes: ``{pid: time}``."""
        items = tuple(sorted((int(pid), validate_instant(t, name=f"crash time of {pid}"))
                             for pid, t in crashes.items()))
        seen = set()
        for pid, _ in items:
            if pid in seen:
                raise ConfigurationError(f"process {pid} crashes twice")
            seen.add(pid)
        return CrashPlan(items)

    @staticmethod
    def random(
        candidates: Sequence[ProcessId],
        count: int,
        window: Tuple[Instant, Instant],
        streams: RandomStreams,
        *,
        stream_name: str = "crash-plan",
    ) -> "CrashPlan":
        """Crash ``count`` distinct processes at times uniform in ``window``."""
        if count < 0 or count > len(candidates):
            raise ConfigurationError(
                f"cannot crash {count} of {len(candidates)} processes"
            )
        lo = validate_instant(window[0], name="window start")
        hi = validate_instant(window[1], name="window end")
        if hi < lo:
            raise ConfigurationError("crash window end precedes its start")
        rng = streams.stream(stream_name)
        victims = rng.sample(sorted(candidates), count)
        return CrashPlan.scripted({pid: rng.uniform(lo, hi) for pid in victims})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def faulty(self) -> Tuple[ProcessId, ...]:
        """Process ids that crash under this plan, in id order."""
        return tuple(pid for pid, _ in self.crashes)

    def correct(self, all_pids: Iterable[ProcessId]) -> Tuple[ProcessId, ...]:
        """Process ids from ``all_pids`` that never crash under this plan."""
        faulty = set(self.faulty)
        return tuple(pid for pid in sorted(all_pids) if pid not in faulty)

    def crash_time(self, pid: ProcessId) -> Instant:
        """Crash instant of ``pid``; raises if ``pid`` is correct."""
        for victim, time in self.crashes:
            if victim == pid:
                return time
        raise ConfigurationError(f"process {pid} does not crash under this plan")

    def as_dict(self) -> Dict[ProcessId, Instant]:
        return dict(self.crashes)

    @property
    def last_crash_time(self) -> Instant:
        """Time of the final crash, or 0.0 for the failure-free plan."""
        return max((t for _, t in self.crashes), default=0.0)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, network: Network) -> None:
        """Schedule every crash on ``network`` (CONTROL priority)."""
        for pid, time in self.crashes:
            network.crash_at(pid, time)
