"""Event records and the deterministic pending-event queue.

The queue is a **calendar (bucket) queue** ordered by
``(time, priority, sequence)``.  The sequence number is assigned at
insertion, so two events scheduled for the same instant at the same
priority always fire in scheduling order.  This total order is what makes
whole simulations replayable from a seed: the kernel never consults
wall-clock time or iteration order of hash-based containers when choosing
the next event.

Structure
---------
Virtual time is mapped to integer ticks (``tick = int(time / bucket_width)``)
and pending entries live in one of three places:

* ``_cur`` + ``_idx`` — the tick currently being drained, as a list sorted
  once (C timsort) when the tick becomes current; draining it is an index
  increment per event, not a heap pop.  Entries scheduled *at or before*
  the current tick after that sort (guard re-evaluations at ``now``, most
  commonly) go to ``_extra``, a small binary heap merged at the front by a
  single tuple compare.
* ``_ring`` — ``span`` plain lists, one per upcoming tick.  Scheduling into
  the near future is a single ``list.append`` — no ordering discipline is
  paid until the tick actually becomes current, at which point the bucket
  is sorted wholesale.
* ``_far`` — a heap fallback for events beyond the ring's horizon
  (long timers, scripted detector flips, crash plans).  Entries migrate
  ring-ward as the front advances.

Entries are plain tuples ``(time, subkey, action, label, event_or_None)``
where ``subkey = (priority << 56) | sequence`` packs the priority-then-FIFO
tie-break into one integer compare.  Equal times therefore resolve on the
second tuple element and two entries can never compare equal (sequences are
unique), so heap comparisons never reach the (unorderable) action element.

Fire-and-forget scheduling (message deliveries, guard re-evaluations — the
overwhelming majority of traffic) uses :meth:`EventQueue.push_transient`,
which stores the bare tuple and allocates **no** :class:`Event` handle at
all.  This is the end state of the "pool Event objects" idea: recycling
exposed handles through a free list is unsound here because the contract
allows cancelling an event after it fired (a stale holder could then
cancel the handle's next incarnation), while handle-less entries make the
common case allocation-free outright.  Cancellable work (timers) still
gets a real :class:`Event`.

Cancellation marks the handle dead and the queue discards dead entries
lazily when they surface; a compaction pass bounds the garbage when mass
cancellation (10k retired timers) would otherwise leave the structures
full of dead tuples.

Priorities let infrastructure events (message deliveries) and derived
events (guard re-evaluation) interleave predictably; see
:class:`EventPriority`.
"""

from __future__ import annotations

from enum import IntEnum
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.sim.time import Instant


class EventPriority(IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Lower values fire first.  ``CONTROL`` covers crash injection and other
    environment actions: a crash scheduled at time *t* must take effect
    before a message delivery at *t*, matching the paper's fault model in
    which a crashed process sends and receives nothing from its crash time
    onward.
    """

    CONTROL = 0
    DELIVERY = 1
    TIMER = 2
    REEVALUATE = 3


# Entry subkey layout: priority in the high bits, sequence below, so one
# integer comparison implements the (priority, sequence) tie-break.
_PRIO_SHIFT = 56
_SEQ_MASK = (1 << _PRIO_SHIFT) - 1

# Entry tuple indices (documentation; the hot paths use literal ints).
_TIME, _SUBKEY, _ACTION, _LABEL, _EVENT = range(5)

Entry = Tuple[Instant, int, Optional[Callable[[], None]], str, Optional["Event"]]


class Event:
    """A scheduled callback's cancellable handle.

    Events support cancellation: :meth:`cancel` marks the event dead and
    the queue silently discards its entry when it surfaces.  This is
    cheaper than heap removal and is how actors retire timers.
    """

    __slots__ = ("time", "priority", "sequence", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: Instant,
        priority: EventPriority,
        sequence: int,
        action: Optional[Callable[[], None]],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = cancelled
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent this event from firing; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.action = None
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancelled()

    def sort_key(self) -> tuple:
        return (self.time, int(self.priority), self.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = ", cancelled" if self.cancelled else ""
        return (
            f"Event(time={self.time!r}, priority={int(self.priority)}, "
            f"sequence={self.sequence}, label={self.label!r}{state})"
        )


class EventQueue:
    """Deterministic calendar queue of scheduled callbacks.

    Parameters
    ----------
    bucket_width:
        Virtual-time width of one calendar tick.  The default suits the
        dining workloads, whose timer and latency scales sit in the
        0.001–1.0 range; correctness does not depend on the value, only
        the constant factor does.
    span:
        Number of near-future ticks kept as plain append-lists; events
        past ``span * bucket_width`` from the front fall back to the
        ``_far`` heap.
    """

    __slots__ = (
        "_width",
        "_inv",
        "_span",
        "_ring",
        "_base",
        "_cur",
        "_idx",
        "_extra",
        "_far",
        "_near",
        "_live",
        "_dead",
        "_seq",
    )

    def __init__(self, *, bucket_width: float = 0.05, span: int = 256) -> None:
        if bucket_width <= 0.0:
            raise SchedulingError(f"bucket_width must be positive, got {bucket_width!r}")
        if span < 2:
            raise SchedulingError(f"span must be at least 2, got {span!r}")
        self._width = float(bucket_width)
        self._inv = 1.0 / self._width
        self._span = int(span)
        self._ring: List[list] = [[] for _ in range(self._span)]
        self._base = 0  # tick currently owned by _cur
        self._cur: list = []  # sorted list: the current tick's entries
        self._idx = 0  # drain cursor into _cur
        self._extra: list = []  # heap: late arrivals with tick <= _base
        self._far: list = []  # heap: entries with tick >= _base + span
        self._near = 0  # entries (live or dead) stored in the ring
        self._live = 0
        self._dead = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(
        self,
        time: Instant,
        priority: EventPriority,
        action: Callable[[], None],
        *,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the (cancellable) event."""
        self._seq = sequence = self._seq + 1
        event = Event(time, priority, sequence, action, label)
        event._queue = self
        entry = (time, (priority << _PRIO_SHIFT) | sequence, action, label, event)
        tick = int(time * self._inv)
        base = self._base
        if tick <= base:
            heappush(self._extra, entry)
        elif tick < base + self._span:
            self._ring[tick % self._span].append(entry)
            self._near += 1
        else:
            heappush(self._far, entry)
        self._live += 1
        return event

    def push_transient(
        self,
        time: Instant,
        priority: EventPriority,
        action: Callable[[], None],
        label: str = "",
    ) -> None:
        """Schedule ``action`` with no cancellation handle (fire-and-forget).

        The hot path for message deliveries and guard re-evaluations:
        stores one tuple, allocates no :class:`Event`.  The insert logic
        is inlined (this is called once per message sent).
        """
        self._seq = sequence = self._seq + 1
        entry = (time, (priority << _PRIO_SHIFT) | sequence, action, label, None)
        tick = int(time * self._inv)
        base = self._base
        if tick <= base:
            heappush(self._extra, entry)
        elif tick < base + self._span:
            self._ring[tick % self._span].append(entry)
            self._near += 1
        else:
            heappush(self._far, entry)
        self._live += 1

    def _insert(self, entry: Entry) -> None:
        tick = int(entry[0] * self._inv)
        base = self._base
        if tick <= base:
            heappush(self._extra, entry)
        elif tick < base + self._span:
            self._ring[tick % self._span].append(entry)
            self._near += 1
        else:
            heappush(self._far, entry)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _settle(self) -> Optional[Entry]:
        """Advance the calendar until the overall minimum entry sits at the
        front; return it (without removing), or None when empty.

        This is the single place that skips cancelled entries, so ``pop``,
        ``pop_due`` and ``peek_time`` can never disagree about what the
        front of the queue is.  The front is either ``_cur[_idx]`` or
        ``_extra[0]``; callers discriminate by identity (see
        :meth:`_remove_front`).
        """
        while True:
            cur = self._cur
            idx = self._idx
            stop = len(cur)
            while idx < stop:
                entry = cur[idx]
                event = entry[4]
                if event is not None and event.cancelled:
                    idx += 1
                    self._dead -= 1
                    continue
                break
            self._idx = idx
            extra = self._extra
            while extra:
                event = extra[0][4]
                if event is not None and event.cancelled:
                    heappop(extra)
                    self._dead -= 1
                    continue
                break
            if idx < stop:
                entry = cur[idx]
                if extra and extra[0] < entry:
                    return extra[0]
                return entry
            if extra:
                return extra[0]
            if self._near:
                # Advance to the next populated tick and make its bucket
                # current.  _near counts stored ring entries, so a
                # populated bucket exists within the next span-1 slots.
                base = self._base
                ring = self._ring
                span = self._span
                while True:
                    base += 1
                    bucket = ring[base % span]
                    if bucket:
                        break
                self._base = base
                ring[base % span] = []
                self._near -= len(bucket)
                # Sorting once (C timsort) beats heapifying + k heap pops;
                # subkeys are unique so tuple compares never reach the
                # action element.
                bucket.sort()
                self._cur = bucket
                self._idx = 0
                if self._far:
                    self._pull_far()
                continue
            if self._far:
                # The near window is empty: jump the calendar to the
                # earliest far entry and re-window around it.
                far = self._far
                while far:
                    event = far[0][4]
                    if event is not None and event.cancelled:
                        heappop(far)
                        self._dead -= 1
                        continue
                    break
                if not far:
                    return None
                self._base = int(far[0][0] * self._inv)
                self._pull_far()
                continue
            return None

    def _remove_front(self, entry: Entry) -> None:
        """Remove the entry :meth:`_settle` just returned."""
        extra = self._extra
        if extra and extra[0] is entry:
            heappop(extra)
        else:
            self._idx += 1
        self._live -= 1

    def _pull_far(self) -> None:
        """Migrate far entries that now fall inside the near window."""
        far = self._far
        base = self._base
        limit = base + self._span
        inv = self._inv
        ring = self._ring
        span = self._span
        near = 0
        while far:
            entry = far[0]
            tick = int(entry[0] * inv)
            if tick >= limit:
                break
            heappop(far)
            event = entry[4]
            if event is not None and event.cancelled:
                self._dead -= 1
                continue
            if tick <= base:
                heappush(self._extra, entry)
            else:
                ring[tick % span].append(entry)
                near += 1
        self._near += near

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SchedulingError` when the queue holds no live events;
        callers should test truthiness first.  Transient entries are
        materialized into an :class:`Event` here (cold path — the kernel
        drains via :meth:`pop_due` instead).
        """
        entry = self._settle()
        if entry is None:
            raise SchedulingError("pop from an empty event queue")
        self._remove_front(entry)
        event = entry[4]
        if event is None:
            subkey = entry[1]
            event = Event(
                entry[0],
                EventPriority(subkey >> _PRIO_SHIFT),
                subkey & _SEQ_MASK,
                entry[2],
                entry[3],
            )
        else:
            event._queue = None
        return event

    def pop_due(self, until: Instant) -> Optional[Entry]:
        """Kernel fast path: remove and return the raw entry of the next
        live event with ``time <= until``, or None.

        Fuses the historical ``peek_time`` + ``pop`` pair into one settle
        and hands back the tuple itself, so firing a transient event
        allocates nothing.  The common case — a live entry at the drain
        cursor and no late same-tick arrivals — costs one list index, two
        compares and an increment.
        """
        cur = self._cur
        idx = self._idx
        if idx < len(cur):
            entry = cur[idx]
            event = entry[4]
            if event is None or not event.cancelled:
                extra = self._extra
                if not extra or entry < extra[0]:
                    if entry[0] > until:
                        return None
                    self._idx = idx + 1
                    self._live -= 1
                    if event is not None:
                        event._queue = None
                    return entry
        entry = self._settle()
        if entry is None or entry[0] > until:
            return None
        self._remove_front(entry)
        event = entry[4]
        if event is not None:
            event._queue = None
        return entry

    def peek_time(self) -> Optional[Instant]:
        """Return the firing time of the next live event, or None if empty."""
        entry = self._settle()
        return None if entry is None else entry[0]

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` to keep the live count honest.

        Dead entries are discarded lazily when they surface; when the
        dead outnumber the live (mass timer retirement) a compaction pass
        rebuilds the structures so garbage stays bounded by
        ``max(64, live)`` instead of growing without limit.
        """
        self._live -= 1
        self._dead = dead = self._dead + 1
        if dead > 64 and dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from every structure."""
        # Filtering the undrained tail of _cur preserves its sortedness.
        cur = [
            e for e in self._cur[self._idx :] if e[4] is None or not e[4].cancelled
        ]
        self._cur = cur
        self._idx = 0
        extra = [e for e in self._extra if e[4] is None or not e[4].cancelled]
        heapify(extra)
        self._extra = extra
        near = 0
        ring = self._ring
        for index in range(self._span):
            bucket = ring[index]
            if bucket:
                kept = [e for e in bucket if e[4] is None or not e[4].cancelled]
                ring[index] = kept
                near += len(kept)
        self._near = near
        far = [e for e in self._far if e[4] is None or not e[4].cancelled]
        heapify(far)
        self._far = far
        self._dead = 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def storage_size(self) -> int:
        """Total entries physically stored, live **and** dead.

        Regression guard for the dead-entry leak: after mass cancellation
        this must stay within the compaction bound, not grow with the
        number of cancels.
        """
        return (
            len(self._cur)
            - self._idx
            + len(self._extra)
            + self._near
            + len(self._far)
        )
