"""Event records and the deterministic pending-event queue.

The queue is a binary heap ordered by ``(time, priority, sequence)``.  The
sequence number is assigned at insertion, so two events scheduled for the
same instant at the same priority always fire in scheduling order.  This
total order is what makes whole simulations replayable from a seed: the
kernel never consults wall-clock time or iteration order of hash-based
containers when choosing the next event.

Priorities let infrastructure events (message deliveries) and derived
events (guard re-evaluation) interleave predictably; see
:class:`EventPriority`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional

from repro.errors import SchedulingError
from repro.sim.time import Instant


class EventPriority(IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Lower values fire first.  ``CONTROL`` covers crash injection and other
    environment actions: a crash scheduled at time *t* must take effect
    before a message delivery at *t*, matching the paper's fault model in
    which a crashed process sends and receives nothing from its crash time
    onward.
    """

    CONTROL = 0
    DELIVERY = 1
    TIMER = 2
    REEVALUATE = 3


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Events support cancellation: :meth:`cancel` marks the event dead and
    the queue silently discards it when popped.  This is cheaper than heap
    removal and is how actors retire timers.
    """

    time: Instant
    priority: EventPriority
    sequence: int
    action: Optional[Callable[[], None]]
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent this event from firing; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self.action = None
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None

    def sort_key(self) -> tuple:
        return (self.time, int(self.priority), self.sequence)


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: Instant,
        priority: EventPriority,
        action: Callable[[], None],
        *,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the (cancellable) event."""
        event = Event(time, priority, next(self._counter), action, label)
        event._queue = self
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises :class:`SchedulingError` when the queue holds no live events;
        callers should test truthiness first.
        """
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # already accounted for at cancellation time
            self._live -= 1
            event._queue = None
            return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[Instant]:
        """Return the firing time of the next live event, or None if empty."""
        while self._heap and self._heap[0][1].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][1].time

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` to keep the live count honest."""
        self._live -= 1
