"""Kernel adapter: drive a :class:`~repro.checks.suite.CheckSuite` from a
running discrete-event simulation.

The adapter is the only glue between the kernel and the checks
subsystem: it registers as a network monitor, as a step listener (state
probes), and as a typed trace listener (phase and doorway changes,
crashes).  Per-directed-channel sequence numbers are stamped by the
*network itself* (:meth:`repro.sim.network.Network.enable_sequencing`,
armed at attach) exactly like the live wire codec numbers every frame,
so the canonical FIFO checker judges both substrates over the identical
all-layer stream and the adapter only has to compare the consumed
number against the channel's expected position.

Checking is armed by default on every :class:`~repro.core.table.DiningTable`,
so this path has a hard wall-clock budget (see
``benchmarks/bench_checks_overhead.py``).  Four techniques keep it cheap:

* **The adapter subsumes the always-on monitors.**  A bare table counts
  channel occupancy, message statistics, and post-crash traffic through
  three registered monitors.  With a suite attached the adapter feeds
  the *same* canonical implementations
  (:class:`~repro.checks.properties.ChannelOccupancy`, the suite's
  :class:`~repro.checks.properties.QuiescenceChecker`, a
  :class:`~repro.sim.monitors.DeferredMessageStats`) exactly once and
  the monitor objects become read facades over the shared state — the
  checked run performs each count one time, not two, and registers one
  observer where the bare table registers three.
* **Allocation-free checker calls.**  Wire traffic is fed through the
  checkers' ``record_*`` fast paths instead of materializing one event
  dataclass per message and paying the suite's type dispatch — the
  checking *logic* still lives in exactly one place,
  :mod:`repro.checks.properties`.  The two highest-volume judgements
  (FIFO's in-order comparison, Lemma 2.2's outstanding-ping guard) run
  inline against the checkers' own shared state and call the canonical
  method only when the guard trips, so the common case pays no function
  call at all.  The network hooks themselves are
  closures over everything they touch (checker entry points, the dirty
  sets, the counters), built once in ``__init__`` and installed as
  instance attributes, so the per-message path does no bound-method
  creation and almost no attribute lookups.  Sends to destinations that
  never crash skip the quiescence call entirely (they can never be
  post-crash sends); sequencing lives in the network send path (one
  combined FIFO-front/seq cell per channel), so the adapter keeps a
  single consumed-position integer per channel instead of a
  message-identity map; occupancy is restricted to the checked channel
  layer (the paper's channel *bound* is about dining traffic;
  heartbeats are loss-tolerant by design) while FIFO order is judged
  for every layer, as on the wire; the per-checker ``observed``
  counters are reconciled by a suite finalizer, so verdict skip/pass
  semantics are untouched.
* **Deferred eventual-event replay.**  The eventual-property checkers
  (◇WX, progress, overtaking) never judge anything before ``finalize``,
  so the adapter does not pay the per-event suite dispatch while the
  simulation runs: phase and crash trace records are replayed to the
  suite — in trace order, so verdicts are identical to online feeding —
  by a suite finalizer when a verdict is actually requested.  The one
  online consequence of a crash, quiescence's need to recognise
  post-crash sends, is covered by
  :meth:`~repro.checks.properties.QuiescenceChecker.note_crash`.
* **Change-tracking state probes.**  Fork/token state only changes when
  a fork-carrying message arrives, and the diner-local flags (``ack``,
  ``replied``, ``inside``, the phase) only change at ping/ack traffic
  and phase/doorway transitions.  The *diners themselves* push the dirt
  (deduplicated per step): each handler reports the link or edge it
  actually mutated through the sinks :meth:`KernelCheckAdapter
  .install_diner` arms — the adapter no longer reverse-engineers dirty
  state from message kinds on the deliver path — with phase/doorway
  trace records still marking their diner, and the post-event step probe
  re-checks only the dirty slice — the same
  :func:`~repro.checks.properties.probe_violations` /
  :func:`~repro.checks.properties.diner_local_violations` predicates,
  restricted — instead of rescanning every edge of every diner after
  every event.  A full-state probe still runs once at attach, so the
  initial fork/token distribution is judged and the state-based
  properties never report ``skip`` on a kernel run.

In ``strict`` mode an immediate safety violation raises the same typed
exception the pre-refactor checkers did — :class:`ForkDuplicationError`,
:class:`ChannelCapacityError`, :class:`FifoViolationError`, or plain
:class:`InvariantViolation` — from inside the offending event, so tests
keep their teeth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.checks.events import CrashEvent, PhaseEvent
from repro.checks.properties import (
    CHANNEL_BOUND,
    DINER_LOCAL,
    FIFO,
    FORK_UNIQUENESS,
    PENDING_PING,
    QUIESCENCE,
)
from repro.checks.suite import CheckSuite
from repro.checks.verdict import Violation
from repro.errors import (
    ChannelCapacityError,
    FifoViolationError,
    ForkDuplicationError,
    InvariantViolation,
)
from repro.sim.actor import ProcessId
from repro.sim.monitors import DeferredMessageStats, message_layer
from repro.sim.network import NetworkMonitor
from repro.sim.time import Instant
from repro.trace.events import Crash, DoorwayChange, PhaseChange

_STRICT_ERRORS = {
    FORK_UNIQUENESS: ForkDuplicationError,
    CHANNEL_BOUND: ChannelCapacityError,
    FIFO: FifoViolationError,
}

# Message-kind tags precomputed per message class (see _intern).
_KIND_NONE = 0       # not dining-layer: no state to probe
_KIND_PING = 1       # dining Ping: pending-ping + replied-flag link probe
_KIND_ACK = 2        # dining Ack: ping retirement + ack-flag link probe
_KIND_FORKISH = 3    # any other dining message: fork/token edge probe


def raise_violation(violation: Violation) -> None:
    """Strict-mode reaction: re-raise as the property's typed exception."""
    raise _STRICT_ERRORS.get(violation.prop, InvariantViolation)(violation.detail)


class KernelCheckAdapter(NetworkMonitor):
    """Feeds one suite from a simulator + network + trace triple.

    ``crashing`` seeds the set of processes whose crash is scheduled (the
    crash plan's faulty pids); only sends addressed to them — or to pids
    later seen in a :class:`~repro.trace.events.Crash` record — are worth
    forwarding to the quiescence checker.

    The ``on_send``/``on_deliver``/``on_drop``/``on_step`` hooks are
    instance attributes (closures built by :meth:`_build_hooks`), not
    methods: they shadow the :class:`~repro.sim.network.NetworkMonitor`
    defaults and keep the per-event cost down to the checker calls
    themselves.
    """

    def __init__(
        self,
        suite: CheckSuite,
        diners: Dict[ProcessId, object],
        *,
        crashing: Iterable[ProcessId] = (),
    ) -> None:
        self.suite = suite
        self._diners = diners
        self._crashing = set(crashing)
        # (src, dst) -> last in-order consumed seq.  The network assigns
        # the numbers (enable_sequencing, armed at attach); consuming out
        # of order (a network-model bug) surfaces as a FIFO violation.
        self._consumed: Dict[Tuple[ProcessId, ProcessId], int] = {}
        # Filled by attach(): the network whose last_send_seq /
        # delivering_seq the hooks read (a cell for late binding).
        self._net_cell: list = [None]
        # message class -> (type name, layer, kind tag, counts toward the
        # channel bound); class attributes, so one resolution per class
        # serves every instance.
        self._type_info: Dict[type, Tuple[str, str, int, bool]] = {}
        self._dirty_edges: set = set()
        # Filled by attach(): the simulator whose one-shot ``_post_event``
        # hook the dirty-markers arm (a cell, so the closures built below
        # see the late-bound kernel).
        self._sim_cell: list = [None]
        # (pid, neighbor) links — or (pid, None) for a whole diner —
        # whose local flags may have changed since the last step probe.
        # Link-granular on purpose: under steady ping traffic almost
        # every diner is touched every step, and probing one link beats
        # re-scanning the whole diner.
        self._dirty_pairs: set = set()
        # [wire events seen, sends to never-crashing destinations,
        # in-order FIFO consumes, first-outstanding ping sends] —
        # deferred ``observed`` bookkeeping, reconciled by _flush_observed.
        self._counters = [0, 0, 0, 0]
        self._wire_flushed = 0
        self._quiet_flushed = 0
        self._fifo_flushed = 0
        self._ping_flushed = 0
        # Batched send counts per message class, settled by _flush_stats
        # into the ``stats`` facade (the table's ``message_stats``).
        self._sent_by_class: Dict[type, int] = defaultdict(int)
        self.stats = DeferredMessageStats(self._flush_stats)
        # Trace records already consumed by _replay_eventual.
        self._trace = None
        self._replayed = 0
        by_name = {checker.name: checker for checker in suite.checkers}
        self._fork = by_name.get(FORK_UNIQUENESS)
        self._local = by_name.get(DINER_LOCAL)
        self._channel = by_name.get(CHANNEL_BOUND)
        self._quiescence = by_name.get(QUIESCENCE)
        self._fifo = by_name.get(FIFO)
        self._pending_ping = by_name.get(PENDING_PING)
        self._cb_layer = self._channel.layer if self._channel is not None else "dining"
        self._build_hooks()

    def _build_hooks(self) -> None:
        """Install the hot-path hooks as closures over their dependencies.

        Everything a hook mutates is a shared mutable container (the
        dicts, the dirty lists, the ``_counters`` cell list, the
        ``_crashing`` set — updated in place, never rebound), so the
        closures and the rest of the adapter observe the same state.
        """
        suite = self.suite
        diners = self._diners
        crashing = self._crashing
        consumed = self._consumed
        net_cell = self._net_cell
        type_info = self._type_info
        dirty_edges = self._dirty_edges
        dirty_pairs = self._dirty_pairs
        sim_cell = self._sim_cell
        counters = self._counters
        sent_by_class = self._sent_by_class
        intern = self._intern
        report = self._report
        report_all = self._report_all

        channel = self._channel
        # Occupancy is maintained inline against the checker's own dicts
        # (the facades read the very same objects); the bound guard
        # delegates violation construction to ``record_level``.
        occ = channel.occupancy if channel is not None else None
        occ_current = occ.current if occ is not None else None
        occ_peak = occ.peak if occ is not None else None
        occ_peak_time = occ.peak_time if occ is not None else None
        occ_depart = occ.record_departure if occ is not None else None
        cb_bound = channel.bound if channel is not None else 0
        cb_level = channel.record_level if channel is not None else None
        fifo = self._fifo
        judge_fifo = fifo is not None
        # The in-order comparison runs inline (the canonical
        # ``record_consume`` would rebuild the channel key and repeat the
        # dict traffic the adapter just paid); the checker's own state is
        # synced and its method invoked whenever the guard trips, so the
        # violation text and resync policy stay canonical.  The number
        # itself comes from the network (``delivering_seq``): the adapter
        # pays one dict op per consume, none per send.
        fifo_consume = fifo.record_consume if judge_fifo else None
        fifo_expected = fifo._expected if judge_fifo else None
        pending_ping = self._pending_ping
        pp_ping = pending_ping.record_ping_send if pending_ping is not None else None
        pp_outstanding = (
            pending_ping._outstanding if pending_ping is not None else None
        )
        pp_ack = pending_ping.record_ack_arrival if pending_ping is not None else None
        q_send = (
            self._quiescence.record_send if self._quiescence is not None else None
        )
        fork = self._fork
        fork_probe = fork.record_probe if fork is not None else None
        local = self._local
        local_probe = local.record_probe if local is not None else None
        mark_locals = local is not None

        def on_step(now):
            if dirty_edges:
                found = fork_probe(diners, dirty_edges, now)
                if found:
                    report_all(found)
                dirty_edges.clear()
            if dirty_pairs:
                found = local_probe(diners, now, dirty_pairs)
                if found:
                    report_all(found)
                dirty_pairs.clear()

        def mark_pair(pair):
            # Arm the kernel's one-shot post-event hook alongside the
            # first mark: clean events then never call into the checker
            # at all (the kernel pays one load-and-branch), and dirty
            # events pay one probe of exactly the touched slice.
            sim = sim_cell[0]
            if sim._post_event is None:
                sim._post_event = on_step
            dirty_pairs.add(pair)

        def mark_edge(edge):
            sim = sim_cell[0]
            if sim._post_event is None:
                sim._post_event = on_step
            dirty_edges.add(edge)

        def on_send(src, dst, message, time):
            cls = type(message)
            info = type_info.get(cls)
            if info is None:
                info = intern(message)
            name, layer, kind, counted = info
            counters[0] += 1
            sent_by_class[cls] += 1
            if counted:
                # Occupancy tracks the checked channel layer; other
                # layers are invisible to the bound checker.  (Sequence
                # numbers are the network's job now — nothing to do at
                # send.)
                if occ_current is not None:
                    edge = (src, dst) if src <= dst else (dst, src)
                    level = occ_current[edge] + 1
                    occ_current[edge] = level
                    if level > occ_peak[edge]:
                        occ_peak[edge] = level
                        occ_peak_time[edge] = time
                    if level > cb_bound:
                        report(cb_level(src, dst, level, time, name))
            if kind == 1:  # _KIND_PING
                if pp_outstanding is not None:
                    # Lemma 2.2 guard: a second outstanding ping is the
                    # violation; construction (and the recount) is
                    # delegated to the canonical checker method.
                    pair = (src, dst)
                    count = pp_outstanding.get(pair, 0) + 1
                    if count > 1:
                        violation = pp_ping(src, dst, time)
                        if violation is not None:
                            report(violation)
                    else:
                        pp_outstanding[pair] = count
                        counters[3] += 1
            # (An ack send flips the sender's ``replied`` flag, but the
            # diner pushes that dirt itself — see install_diner.)
            if dst in crashing:
                if q_send is not None:
                    violation = q_send(src, dst, time, name, layer)
                    if violation is not None:
                        report(violation)
            else:
                counters[1] += 1

        def consume(src, dst, time):
            # FIFO retirement, all layers — the network numbered every
            # send on the channel, so the consumed number must be the
            # channel's next position regardless of message kind.  The
            # drop path (rare: only traffic to crashed destinations)
            # calls this; the deliver path inlines the same logic.
            seq = net_cell[0].delivering_seq
            key = (src, dst)
            position = consumed.get(key, 0)
            if seq == position + 1:
                consumed[key] = seq
                counters[2] += 1
            elif seq:
                # Guard tripped: sync the checker to the adapter's
                # channel position and let it judge canonically.
                fifo_expected[key] = position
                violation = fifo_consume(src, dst, seq, time)
                if violation is not None:
                    report(violation)
                consumed[key] = fifo_expected.get(key, position)
            else:
                # Unsequenced delivery (injected behind the network's
                # back): counted, never judged.
                fifo_consume(src, dst, None, time)

        def on_deliver(src, dst, message, time):
            info = type_info.get(type(message))
            if info is None:
                info = intern(message)
            _, layer, kind, counted = info
            counters[0] += 1
            if judge_fifo:
                seq = net_cell[0].delivering_seq
                key = (src, dst)
                position = consumed.get(key, 0)
                if seq == position + 1:
                    consumed[key] = seq
                    counters[2] += 1
                elif seq:
                    fifo_expected[key] = position
                    violation = fifo_consume(src, dst, seq, time)
                    if violation is not None:
                        report(violation)
                    consumed[key] = fifo_expected.get(key, position)
                else:
                    fifo_consume(src, dst, None, time)
            if counted and occ_current is not None:
                edge = (src, dst) if src <= dst else (dst, src)
                level = occ_current[edge]
                if level > 0:
                    occ_current[edge] = level - 1
            # Link/edge dirt is the destination diner's to report: its
            # handler pushes exactly the state it mutated through the
            # sinks install_diner armed, so nothing here branches on
            # message kinds to guess what the delivery touched.
            if kind == 2 and pp_ack is not None:  # _KIND_ACK
                pp_ack(src, dst)

        def on_drop(src, dst, message, time):
            info = type_info.get(type(message))
            if info is None:
                info = intern(message)
            _, layer, kind, counted = info
            counters[0] += 1
            if judge_fifo:
                consume(src, dst, time)
            if counted and occ_depart is not None:
                occ_depart(src, dst, layer)
            # A dropped ack still retires the pending ping (the
            # destination is crashed; its frozen state is not probed).
            if kind == 2 and pp_ack is not None:
                pp_ack(src, dst)

        def on_phase_or_doorway(record):
            if mark_locals:
                mark_pair((record.pid, None))

        self.on_send = on_send
        self.on_deliver = on_deliver
        self.on_drop = on_drop
        self.on_step = on_step
        self._on_state_record = on_phase_or_doorway
        # The sinks install_diner hands out: they arm the kernel's
        # one-shot post-event hook exactly like the adapter's own marks.
        self._mark_pair = mark_pair if mark_locals else None
        self._mark_edge = mark_edge if fork_probe is not None else None

    def install_diner(self, diner) -> None:
        """Arm the push-style dirty sinks on one diner.

        The diner reports its own mutations — ``on_dirty_link`` with the
        ``(pid, neighbor)`` whose ack/replied/deferred flags changed,
        ``on_dirty_fork`` with the sorted edge whose fork or token moved
        — replacing the old deliver-side message-kind inference.  Called
        for every diner at :meth:`attach` and for each diner spawned
        later by a membership join or rejoin.
        """
        diner.on_dirty_link = self._mark_pair
        diner.on_dirty_fork = self._mark_edge

    def attach(self, sim, network, trace) -> "KernelCheckAdapter":
        self._sim_cell[0] = sim
        self._net_cell[0] = network
        if self._fifo is not None:
            # The network stamps the numbers the FIFO hooks consume.
            network.enable_sequencing()
        network.add_monitor(self)
        trace.add_listener(
            self._on_state_record, types=(PhaseChange, DoorwayChange)
        )
        trace.add_listener(self._on_crash, types=(Crash,))
        self._trace = trace
        for diner in self._diners.values():
            self.install_diner(diner)
        self.suite.add_finalizer(self._settle)
        # Judge the initial state (fork/token seeding, clean flags) once;
        # every later change is probed via the dirty sets.
        self._full_probe(sim.now)
        return self

    def _settle(self) -> None:
        if not self.suite.profiling:
            self._replay_eventual()
            self._flush_observed()
            self._flush_stats()
            return
        # Profiled: the deferred replay routes through suite.observe,
        # whose timers book the per-property share; the adapter's own
        # settle bookkeeping is charged to a named account so the
        # attribution sums to the true cost of checking.
        from time import perf_counter

        self._replay_eventual()
        started = perf_counter()
        self._flush_observed()
        self._flush_stats()
        self.suite.profile_add("kernel-adapter.settle", perf_counter() - started)

    def _flush_stats(self) -> None:
        """Settle batched per-class send counts into the stats facade.

        Draining the batch makes the flush naturally idempotent.
        """
        counts = self._sent_by_class
        if not counts:
            return
        info = self._type_info
        stats = self.stats
        by_type = stats._by_type
        by_layer = stats._by_layer
        total = 0
        for cls, n in counts.items():
            name, layer, _, _ = info[cls]
            by_type[name] += n
            by_layer[layer] += n
            total += n
        stats._total += total
        counts.clear()

    def _replay_eventual(self) -> None:
        """Feed the suite the phase and crash events it has not seen yet.

        The eventual-property checkers (◇WX, progress, overtaking) only
        *judge* at ``finalize``, so their event diet is deferred: online,
        a phase change merely marks state dirty, and the suite sees the
        :class:`PhaseEvent`/:class:`CrashEvent` stream — in trace order,
        so verdicts and witness indices are identical to online feeding —
        in one batch when a verdict is actually requested.  Incremental:
        repeated ``finalize`` calls replay only the new trace suffix.
        """
        if self._trace is None:
            return
        observe = self.suite.observe
        skip = self._replayed
        seen = 0
        for record in self._trace:
            seen += 1
            if seen <= skip:
                continue
            rtype = type(record)
            if rtype is PhaseChange:
                observe(
                    PhaseEvent(
                        record.time, record.pid, record.old_phase, record.new_phase
                    )
                )
            elif rtype is Crash:
                observe(CrashEvent(record.time, record.pid))
        self._replayed = seen

    def _flush_observed(self) -> None:
        """Credit deferred event counts to the checkers' ``observed``.

        Wire traffic bypasses ``ChannelBoundChecker.record_*`` (the
        adapter feeds the shared occupancy directly), quiescence only
        hears about sends to crashing destinations, and the FIFO /
        pending-ping fast paths judge inline without a checker call, so
        the counters that gate a ``skip`` verdict — and the verdict's
        ``consumed_total`` / ``pings_total`` detail — are settled here.
        Delta-tracked: safe to run on every ``finalize``.
        """
        wire_events, quiet_sends, fifo_consumed, ping_sends = self._counters
        if self._channel is not None:
            self._channel.observed += wire_events - self._wire_flushed
            self._wire_flushed = wire_events
        if self._quiescence is not None:
            self._quiescence.observed += quiet_sends - self._quiet_flushed
            self._quiet_flushed = quiet_sends
        if self._fifo is not None:
            delta = fifo_consumed - self._fifo_flushed
            self._fifo.observed += delta
            self._fifo.consumed += delta
            self._fifo_flushed = fifo_consumed
        if self._pending_ping is not None:
            delta = ping_sends - self._ping_flushed
            self._pending_ping.observed += delta
            self._pending_ping.pings_total += delta
            self._ping_flushed = ping_sends

    # Violation plumbing ----------------------------------------------
    def _report(self, violation: Violation) -> None:
        suite = self.suite
        suite.violations.append(violation)
        if suite.on_violation is not None:
            suite.on_violation(violation)

    def _report_all(self, violations: List[Violation]) -> None:
        suite = self.suite
        suite.violations.extend(violations)
        if suite.on_violation is not None:
            for violation in violations:
                suite.on_violation(violation)

    # State probes -----------------------------------------------------
    def _full_probe(self, now: Instant) -> None:
        fork = self._fork
        if fork is not None:
            found = fork.record_probe(self._diners, fork._edges, now)
            if found:
                self._report_all(found)
        local = self._local
        if local is not None:
            found = local.record_probe(self._diners, now)
            if found:
                self._report_all(found)

    # Membership -------------------------------------------------------
    def note_rejoin(self, pid: ProcessId) -> None:
        """A fresh incarnation of ``pid`` replaced the departed one.

        Three pieces of adapter state are keyed to the dead incarnation
        and must not leak into the new life: the quiescence ledger (sends
        to the rejoined pid are ordinary traffic again — only checkers
        exposing ``note_rebirth``, i.e. the dynamic suite's, support
        this), the post-crash send filter, and the Lemma 2.2 outstanding
        ping table (the old incarnation's unanswered ping would make a
        survivor's first post-reset ping look like a duplicate).
        """
        self._crashing.discard(pid)
        quiescence = self._quiescence
        if quiescence is not None and hasattr(quiescence, "note_rebirth"):
            quiescence.note_rebirth(pid, self._sim_cell[0].now)
        outstanding = (
            self._pending_ping._outstanding
            if self._pending_ping is not None
            else None
        )
        if outstanding:
            for pair in [p for p in outstanding if pid in p]:
                del outstanding[pair]

    def note_edge_reset(self, a: ProcessId, b: ProcessId) -> None:
        """Edge ``(a, b)`` was torn down and rebuilt with hygienic links.

        A ping outstanding from the edge's earlier existence was retired
        by the teardown (its ack can never arrive — the channel is
        fenced), so it must not make the rebuilt link's first ping look
        like a Lemma 2.2 duplicate.
        """
        outstanding = (
            self._pending_ping._outstanding
            if self._pending_ping is not None
            else None
        )
        if outstanding:
            outstanding.pop((a, b), None)
            outstanding.pop((b, a), None)

    # Trace records ----------------------------------------------------
    def _on_crash(self, record: Crash) -> None:
        # The CrashEvent itself is deferred to _replay_eventual; quiescence
        # needs the crash instant *online* to recognise post-crash sends.
        self._crashing.add(record.pid)
        if self._quiescence is not None:
            self._quiescence.note_crash(record.pid, record.time)

    # Network traffic --------------------------------------------------
    def _intern(self, message) -> Tuple[str, str, int, bool]:
        name = type(message).__name__
        layer = message_layer(message)
        if layer != "dining":
            kind = _KIND_NONE
        elif name == "Ping":
            kind = _KIND_PING
        elif name == "Ack":
            kind = _KIND_ACK
        else:
            # Fork, ForkRequest, and any baseline-specific dining message:
            # conservatively re-probe the edge's fork/token uniqueness.
            kind = _KIND_FORKISH
        counted = self._cb_layer is None or layer == self._cb_layer
        info = (name, layer, kind, counted)
        self._type_info[type(message)] = info
        return info
