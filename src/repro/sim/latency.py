"""Channel latency models.

A latency model maps each transmission to a positive delay.  The paper's
system model is asynchronous (unbounded delays) with enough partial
synchrony to implement an eventually perfect failure detector, so the
library ships:

* :class:`FixedLatency` and :class:`UniformLatency` — simple synchronous /
  bounded-asynchronous channels for unit tests and throughput benches;
* :class:`LogNormalLatency` — heavy-ish tails for realistic jitter;
* :class:`PartialSynchronyLatency` — the Dwork-Lynch-Stockmeyer GST model:
  delays are arbitrary (up to ``pre_gst_max``) before a global
  stabilization time and bounded by ``post_gst_max`` afterwards.  This is
  the model under which the heartbeat ◇P₁ implementation in
  :mod:`repro.detectors.heartbeat` provably converges.

Models draw from a per-directed-channel random stream, so altering traffic
on one channel never perturbs delays on another.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.sim.time import Duration, Instant, validate_duration, validate_instant

ProcessId = int


class LatencyModel(Protocol):
    """Samples a transmission delay for a message sent at ``now``."""

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        ...  # pragma: no cover - protocol signature


def _channel_stream(streams: RandomStreams, src: ProcessId, dst: ProcessId):
    return streams.stream(f"latency/{src}->{dst}")


class FixedLatency:
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: Duration = 1.0) -> None:
        self.delay = validate_duration(delay, name="delay", allow_zero=False)

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        return self.delay


class UniformLatency:
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: Duration = 0.5, high: Duration = 1.5) -> None:
        self.low = validate_duration(low, name="low", allow_zero=False)
        self.high = validate_duration(high, name="high", allow_zero=False)
        if self.high < self.low:
            raise ConfigurationError(f"high ({high}) must be >= low ({low})")

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        return _channel_stream(streams, src, dst).uniform(self.low, self.high)


class LogNormalLatency:
    """Log-normally distributed delays, clipped to ``[floor, ceiling]``.

    The clip keeps runs replayable in bounded virtual time while preserving
    a realistic skew: most messages are fast, a minority straggle.
    """

    def __init__(
        self,
        median: Duration = 1.0,
        sigma: float = 0.5,
        floor: Duration = 0.05,
        ceiling: Duration = 50.0,
    ) -> None:
        import math

        self.mu = math.log(validate_duration(median, name="median", allow_zero=False))
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma!r}")
        self.sigma = float(sigma)
        self.floor = validate_duration(floor, name="floor", allow_zero=False)
        self.ceiling = validate_duration(ceiling, name="ceiling", allow_zero=False)
        if self.ceiling < self.floor:
            raise ConfigurationError("ceiling must be >= floor")

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        value = _channel_stream(streams, src, dst).lognormvariate(self.mu, self.sigma)
        return min(max(value, self.floor), self.ceiling)


class PartialSynchronyLatency:
    """GST-style partial synchrony (Dwork, Lynch & Stockmeyer 1988).

    Before the global stabilization time ``gst``, delays are adversarially
    jittered in ``[min_delay, pre_gst_max]``; from ``gst`` on, delays are
    bounded by ``post_gst_max``.  Sampling is by *send* time, which is the
    standard formulation: a message sent before GST may still be slow.
    """

    def __init__(
        self,
        gst: Instant = 100.0,
        min_delay: Duration = 0.1,
        pre_gst_max: Duration = 40.0,
        post_gst_max: Duration = 1.0,
    ) -> None:
        self.gst = validate_instant(gst, name="gst")
        self.min_delay = validate_duration(min_delay, name="min_delay", allow_zero=False)
        self.pre_gst_max = validate_duration(pre_gst_max, name="pre_gst_max", allow_zero=False)
        self.post_gst_max = validate_duration(post_gst_max, name="post_gst_max", allow_zero=False)
        if self.pre_gst_max < self.min_delay or self.post_gst_max < self.min_delay:
            raise ConfigurationError("maximum delays must be >= min_delay")

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        rng = _channel_stream(streams, src, dst)
        if now < self.gst:
            return rng.uniform(self.min_delay, self.pre_gst_max)
        return rng.uniform(self.min_delay, self.post_gst_max)


class StormLatency:
    """Periodic congestion storms over a calm base channel.

    Outside storm windows delays are uniform in ``[calm_low, calm_high]``;
    during the window ``[k·period, k·period + storm_len)`` they are
    uniform in ``[storm_low, storm_high]``.  Combined with the network's
    FIFO clamping this piles a backlog onto a channel and then releases
    it as a burst of near-simultaneous deliveries — the adversarial
    pattern the fuzz campaigns use to probe the Section 7 channel bound
    and doorway bookkeeping under reordering pressure between channels.
    """

    def __init__(
        self,
        *,
        period: Duration = 20.0,
        storm_len: Duration = 5.0,
        calm_low: Duration = 0.5,
        calm_high: Duration = 1.5,
        storm_low: Duration = 3.0,
        storm_high: Duration = 6.0,
    ) -> None:
        self.period = validate_duration(period, name="period", allow_zero=False)
        self.storm_len = validate_duration(storm_len, name="storm_len")
        if self.storm_len > self.period:
            raise ConfigurationError("storm_len must not exceed period")
        self.calm_low = validate_duration(calm_low, name="calm_low", allow_zero=False)
        self.calm_high = validate_duration(calm_high, name="calm_high", allow_zero=False)
        self.storm_low = validate_duration(storm_low, name="storm_low", allow_zero=False)
        self.storm_high = validate_duration(storm_high, name="storm_high", allow_zero=False)
        if self.calm_high < self.calm_low or self.storm_high < self.storm_low:
            raise ConfigurationError("latency range inverted")

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        rng = _channel_stream(streams, src, dst)
        if (now % self.period) < self.storm_len:
            return rng.uniform(self.storm_low, self.storm_high)
        return rng.uniform(self.calm_low, self.calm_high)


class ScriptedLatency:
    """Exact per-channel delay sequences, for adversarial interleavings.

    ``scripts[(src, dst)]`` is consumed one delay per transmission on that
    directed channel; when a script runs out (or a channel has none), the
    ``default`` model supplies the delay.  Tests use this to build precise
    schedules — e.g. four simultaneously in-transit messages on one edge —
    that distribution-based models only hit probabilistically.
    """

    def __init__(
        self,
        scripts: dict,
        *,
        default: "LatencyModel" = None,
    ) -> None:
        self._scripts = {
            (int(src), int(dst)): [
                validate_duration(d, name=f"delay[{src}->{dst}]", allow_zero=False)
                for d in delays
            ]
            for (src, dst), delays in scripts.items()
        }
        self._default: LatencyModel = default if default is not None else FixedLatency(1.0)

    def sample(self, src: ProcessId, dst: ProcessId, now: Instant, streams: RandomStreams) -> Duration:
        pending = self._scripts.get((src, dst))
        if pending:
            return pending.pop(0)
        return self._default.sample(src, dst, now, streams)

    def remaining(self, src: ProcessId, dst: ProcessId) -> int:
        """Unconsumed scripted delays on a channel (test assertions)."""
        return len(self._scripts.get((src, dst), ()))
