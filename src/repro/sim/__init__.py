"""Discrete-event simulation substrate.

This package provides the deterministic execution environment the paper's
algorithms run in: a virtual clock and event queue (:mod:`kernel`,
:mod:`events`), event-driven processes with crash semantics (:mod:`actor`),
reliable FIFO channels with pluggable latency including GST partial
synchrony (:mod:`network`, :mod:`latency`), seeded crash injection
(:mod:`crash`), named random streams (:mod:`rng`), and traffic probes
(:mod:`monitors`).
"""

from repro.sim.actor import Actor, ProcessId
from repro.sim.crash import CrashPlan
from repro.sim.events import Event, EventPriority, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.latency import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    PartialSynchronyLatency,
    ScriptedLatency,
    UniformLatency,
)
from repro.sim.monitors import (
    ChannelOccupancyMonitor,
    MessageStats,
    PostCrashSend,
    QuiescenceMonitor,
)
from repro.sim.network import Network, NetworkMonitor
from repro.sim.rng import RandomStreams
from repro.sim.time import END_OF_TIME, START_OF_TIME, Duration, Instant

__all__ = [
    "Actor",
    "ChannelOccupancyMonitor",
    "CrashPlan",
    "Duration",
    "END_OF_TIME",
    "Event",
    "EventPriority",
    "EventQueue",
    "FixedLatency",
    "Instant",
    "LatencyModel",
    "LogNormalLatency",
    "MessageStats",
    "Network",
    "NetworkMonitor",
    "PartialSynchronyLatency",
    "PostCrashSend",
    "ProcessId",
    "QuiescenceMonitor",
    "RandomStreams",
    "START_OF_TIME",
    "ScriptedLatency",
    "Simulator",
    "UniformLatency",
]
