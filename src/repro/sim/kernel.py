"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the pending-event queue and
exposes the scheduling API everything else is built on.  It deliberately
knows nothing about processes, channels, or dining — those are layered on
top (see :mod:`repro.sim.actor` and :mod:`repro.sim.network`) — which keeps
the kernel small enough to reason about and reuse for the baselines and the
failure-detector implementations alike.

Determinism contract
--------------------
Given the same master seed and the same sequence of scheduling calls, a run
is bit-for-bit reproducible.  The kernel enforces its half of the contract
by firing same-instant events in ``(priority, scheduling order)`` and by
never consulting wall-clock time.  Components uphold the other half by
drawing randomness only from :class:`repro.sim.rng.RandomStreams`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List

from repro.errors import SchedulingError
from repro.sim.events import Event, EventPriority, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.time import END_OF_TIME, START_OF_TIME, Duration, Instant, validate_duration, validate_instant


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`repro.sim.rng.RandomStreams`).
    max_events:
        Hard cap on processed events; exceeding it raises
        :class:`SchedulingError`.  This turns accidental event storms
        (for example, a zero-delay retry loop) into a crisp failure
        instead of a hang.
    """

    def __init__(self, seed: int = 0, max_events: int = 50_000_000) -> None:
        self._now: Instant = START_OF_TIME
        self._queue = EventQueue()
        self._processed = 0
        self._max_events = int(max_events)
        self._finished = False
        self.streams = RandomStreams(seed)
        self._step_listeners: List[Callable[[Instant], None]] = []
        # Optional wall-clock profiler (see repro.obs.profile): when set,
        # every fired action is timed and attributed via its event label.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> Instant:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostics and budget checks)."""
        return self._processed

    @property
    def queue_depth(self) -> int:
        """Live events currently pending (observability probes)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: Instant,
        action: Callable[[], None],
        *,
        priority: EventPriority = EventPriority.TIMER,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        Scheduling in the past is an error; scheduling exactly at ``now``
        is allowed and fires after the current event completes.
        """
        time = validate_instant(time)
        if self._finished:
            raise SchedulingError("cannot schedule on a finished simulator")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at {time} before current time {self._now}"
            )
        if time == END_OF_TIME:
            raise SchedulingError(f"cannot schedule event {label!r} at END_OF_TIME")
        return self._queue.push(time, priority, action, label=label)

    def schedule_after(
        self,
        delay: Duration,
        action: Callable[[], None],
        *,
        priority: EventPriority = EventPriority.TIMER,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay`` from now."""
        delay = validate_duration(delay, name="delay")
        return self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def add_step_listener(self, listener: Callable[[Instant], None]) -> None:
        """Register a callback invoked after every processed event.

        Used by online invariant checkers that want to observe every state
        the simulation passes through without instrumenting each actor.
        """
        self._step_listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self._processed += 1
        if self._processed > self._max_events:
            raise SchedulingError(
                f"event budget exhausted ({self._max_events} events); "
                "likely a zero-delay scheduling loop"
            )
        self._now = event.time
        action = event.action
        if action is not None:
            profiler = self.profiler
            if profiler is None:
                action()
            else:
                started = perf_counter()
                action()
                profiler.record(event.label, perf_counter() - started)
        for listener in self._step_listeners:
            listener(self._now)
        return True

    def run(self, *, until: Instant = END_OF_TIME) -> Instant:
        """Process events until the queue drains or the clock passes ``until``.

        The clock is advanced to ``until`` when it is finite and the queue
        drained earlier, so successive bounded runs compose:
        ``run(until=10); run(until=20)`` behaves like ``run(until=20)``.
        Returns the clock value at exit.
        """
        until = validate_instant(until, name="until")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > until:
                break
            self.step()
        if until != END_OF_TIME and until > self._now:
            self._now = until
        return self._now

    def run_until_quiescent(self) -> Instant:
        """Process events until no event remains; returns the final time."""
        while self.step():
            pass
        return self._now

    def finish(self) -> None:
        """Mark the simulator finished; later scheduling attempts raise."""
        self._finished = True
