"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the pending-event queue and
exposes the scheduling API everything else is built on.  It deliberately
knows nothing about processes, channels, or dining — those are layered on
top (see :mod:`repro.sim.actor` and :mod:`repro.sim.network`) — which keeps
the kernel small enough to reason about and reuse for the baselines and the
failure-detector implementations alike.

Determinism contract
--------------------
Given the same master seed and the same sequence of scheduling calls, a run
is bit-for-bit reproducible.  The kernel enforces its half of the contract
by firing same-instant events in ``(priority, scheduling order)`` and by
never consulting wall-clock time.  Components uphold the other half by
drawing randomness only from :class:`repro.sim.rng.RandomStreams`.

Hot path
--------
:meth:`Simulator.run` drains the queue through
:meth:`~repro.sim.events.EventQueue.pop_due`, which fuses the historical
``peek_time`` + ``pop`` pair and returns the raw entry tuple, so firing a
fire-and-forget event allocates nothing.  Per-event overhead beyond the
queue is three attribute loads and three branches: the profiler check, the
one-shot post-event hook, and the step-listener check.  The two observer
mechanisms are deliberately different:

* ``add_step_listener`` — persistent observers (the obs instrumentation)
  called after every event;
* ``_post_event`` — a **one-shot** hook slot armed by the invariant-check
  adapter only when an event actually dirtied checkable state, so a clean
  step costs one load-and-branch instead of a call into the checker.
"""

from __future__ import annotations

from heapq import heappush
from time import perf_counter
from typing import Callable, List, Optional

from repro.errors import SchedulingError
from repro.sim.events import _PRIO_SHIFT, Event, EventPriority, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.time import END_OF_TIME, START_OF_TIME, Duration, Instant, validate_duration, validate_instant

# Enum member lookups are surprisingly costly on the hot path; the two
# fire-and-forget priorities are resolved once at import, pre-shifted
# into entry-subkey position (see repro.sim.events).
_DELIVERY_SUBKEY_BASE = int(EventPriority.DELIVERY) << _PRIO_SHIFT
_REEVALUATE_SUBKEY_BASE = int(EventPriority.REEVALUATE) << _PRIO_SHIFT


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named random streams (see
        :class:`repro.sim.rng.RandomStreams`).
    max_events:
        Hard cap on processed events; exceeding it raises
        :class:`SchedulingError`.  This turns accidental event storms
        (for example, a zero-delay retry loop) into a crisp failure
        instead of a hang.
    """

    def __init__(self, seed: int = 0, max_events: int = 50_000_000) -> None:
        self._now: Instant = START_OF_TIME
        self._queue = EventQueue()
        self._processed = 0
        self._max_events = int(max_events)
        self._finished = False
        self.streams = RandomStreams(seed)
        self._step_listeners: List[Callable[[Instant], None]] = []
        # Optional wall-clock profiler (see repro.obs.profile): when set,
        # every fired action is timed and attributed via its event label.
        self.profiler = None
        # One-shot post-event hook (see module docstring).  Cleared before
        # each invocation; the armer re-arms it when new work appears.
        self._post_event: Optional[Callable[[Instant], None]] = None
        # Membership-delta handler (see apply_membership_delta): installed
        # by the assembly layer (DiningTable) when a run is dynamic; the
        # kernel itself stays topology-agnostic.
        self._membership_handler: Optional[Callable[[object], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> Instant:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events fired so far (diagnostics and budget checks)."""
        return self._processed

    @property
    def queue_depth(self) -> int:
        """Live events currently pending (observability probes)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: Instant,
        action: Callable[[], None],
        *,
        priority: EventPriority = EventPriority.TIMER,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        Scheduling in the past is an error; scheduling exactly at ``now``
        is allowed and fires after the current event completes.
        """
        if self._finished:
            raise SchedulingError("cannot schedule on a finished simulator")
        if not self._now <= time < END_OF_TIME:
            # Off the fast path: produce the precise historical error.
            time = validate_instant(time)
            if time < self._now:
                raise SchedulingError(
                    f"cannot schedule event {label!r} at {time} before current time {self._now}"
                )
            raise SchedulingError(f"cannot schedule event {label!r} at END_OF_TIME")
        return self._queue.push(float(time), priority, action, label=label)

    def schedule_after(
        self,
        delay: Duration,
        action: Callable[[], None],
        *,
        priority: EventPriority = EventPriority.TIMER,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay`` from now."""
        if not delay >= 0.0:  # negative or NaN: report via the validator
            delay = validate_duration(delay, name="delay")
        return self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def schedule_delivery(self, time: Instant, action: Callable[[], None], label: str = "") -> None:
        """Fire-and-forget delivery at absolute ``time`` (no handle).

        The network's fast path: deliveries are never cancelled, so no
        :class:`Event` is allocated.
        """
        if self._finished:
            raise SchedulingError("cannot schedule on a finished simulator")
        if not self._now <= time < END_OF_TIME:
            time = validate_instant(time)
            if time < self._now:
                raise SchedulingError(
                    f"cannot schedule event {label!r} at {time} before current time {self._now}"
                )
            raise SchedulingError(f"cannot schedule event {label!r} at END_OF_TIME")
        # Inlined EventQueue.push_transient: one call frame per message
        # delivery is measurable at storm scale, and the kernel and its
        # queue are one subsystem (see the module docstring).
        queue = self._queue
        queue._seq = sequence = queue._seq + 1
        entry = (time, _DELIVERY_SUBKEY_BASE | sequence, action, label, None)
        tick = int(time * queue._inv)
        base = queue._base
        if tick <= base:
            heappush(queue._extra, entry)
        elif tick < base + queue._span:
            queue._ring[tick % queue._span].append(entry)
            queue._near += 1
        else:
            heappush(queue._far, entry)
        queue._live += 1

    def schedule_reevaluation(self, action: Callable[[], None], *, label: str = "") -> None:
        """Fire-and-forget guard re-evaluation at the current instant.

        REEVALUATE priority sorts after every same-instant delivery and
        timer, so the callback observes the settled state of the step.
        """
        if self._finished:
            raise SchedulingError("cannot schedule on a finished simulator")
        # Inlined push_transient; a re-evaluation lands at the current
        # instant, which is always the current tick (or earlier), so only
        # the _extra branch of the insert can apply.
        queue = self._queue
        queue._seq = sequence = queue._seq + 1
        heappush(
            queue._extra,
            (self._now, _REEVALUATE_SUBKEY_BASE | sequence, action, label, None),
        )
        queue._live += 1

    def set_membership_handler(self, handler: Callable[[object], None]) -> None:
        """Install the callback :meth:`apply_membership_delta` delegates to.

        The kernel does not interpret membership deltas itself — the
        assembly layer owns actors, channels, and detectors — but the
        entry point lives here so scheduled churn events and external
        drivers have one substrate-level door to knock on, mirroring the
        live host's membership timers.
        """
        self._membership_handler = handler

    def apply_membership_delta(self, delta) -> None:
        """Apply one :class:`~repro.graphs.membership.MembershipDelta` now.

        Raises :class:`SchedulingError` when no handler is installed
        (i.e. the run was assembled without a membership log).
        """
        handler = self._membership_handler
        if handler is None:
            raise SchedulingError(
                "no membership handler installed; this simulation is static"
            )
        handler(delta)

    def add_step_listener(self, listener: Callable[[Instant], None]) -> None:
        """Register a callback invoked after every processed event.

        Used by observers that want to see every state the simulation
        passes through (metrics instrumentation) without instrumenting
        each actor.
        """
        self._step_listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fire(self, entry: tuple) -> None:
        """Account for and fire one popped entry (shared step/run tail)."""
        processed = self._processed + 1
        self._processed = processed
        if processed > self._max_events:
            raise SchedulingError(
                f"event budget exhausted ({self._max_events} events); "
                "likely a zero-delay scheduling loop"
            )
        self._now = now = entry[0]
        action = entry[2]
        if action is not None:
            profiler = self.profiler
            if profiler is None:
                action()
            else:
                started = perf_counter()
                action()
                profiler.record(entry[3], perf_counter() - started)
        hook = self._post_event
        if hook is not None:
            self._post_event = None
            hook(now)
        listeners = self._step_listeners
        if listeners:
            for listener in listeners:
                listener(now)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        entry = self._queue.pop_due(END_OF_TIME)
        if entry is None:
            return False
        self._fire(entry)
        return True

    def run(self, *, until: Instant = END_OF_TIME) -> Instant:
        """Process events until the queue drains or the clock passes ``until``.

        The clock is advanced to ``until`` when it is finite and the queue
        drained earlier, so successive bounded runs compose:
        ``run(until=10); run(until=20)`` behaves like ``run(until=20)``.
        Returns the clock value at exit.
        """
        until = validate_instant(until, name="until")
        queue = self._queue
        pop_due = queue.pop_due
        max_events = self._max_events
        perf = perf_counter
        # Loop-invariant hoists: the profiler and the step listeners are
        # attached before the run starts (mid-run attachment is not part
        # of their contract); the one-shot _post_event hook is re-read
        # every event because actions arm it.  The processed counter is
        # kept in a local and written back in ``finally`` so it stays
        # exact even when an action raises.
        profiler = self.profiler
        listeners = self._step_listeners if self._step_listeners else None
        processed = self._processed
        try:
            while True:
                # Inlined EventQueue.pop_due fast path: a live entry at
                # the drain cursor with no earlier late arrival.  The
                # queue's own pop_due handles every other case (bucket
                # exhausted, cancelled head, _extra front).
                cur = queue._cur
                idx = queue._idx
                if idx < len(cur):
                    entry = cur[idx]
                    event = entry[4]
                    if event is None or not event.cancelled:
                        extra = queue._extra
                        if not extra or entry < extra[0]:
                            if entry[0] > until:
                                break
                            queue._idx = idx + 1
                            queue._live -= 1
                            if event is not None:
                                event._queue = None
                        else:
                            entry = pop_due(until)
                            if entry is None:
                                break
                    else:
                        entry = pop_due(until)
                        if entry is None:
                            break
                else:
                    entry = pop_due(until)
                    if entry is None:
                        break
                # Inlined _fire: this is the simulation's innermost loop.
                processed += 1
                if processed > max_events:
                    raise SchedulingError(
                        f"event budget exhausted ({max_events} events); "
                        "likely a zero-delay scheduling loop"
                    )
                self._now = now = entry[0]
                action = entry[2]
                if action is not None:
                    if profiler is None:
                        action()
                    else:
                        started = perf()
                        action()
                        profiler.record(entry[3], perf() - started)
                hook = self._post_event
                if hook is not None:
                    self._post_event = None
                    hook(now)
                if listeners is not None:
                    for listener in listeners:
                        listener(now)
        finally:
            self._processed = processed
        if until != END_OF_TIME and until > self._now:
            self._now = until
        return self._now

    def run_until_quiescent(self) -> Instant:
        """Process events until no event remains; returns the final time."""
        return self.run(until=END_OF_TIME)

    def finish(self) -> None:
        """Mark the simulator finished; later scheduling attempts raise."""
        self._finished = True
