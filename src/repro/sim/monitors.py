"""Network probes used by the Section 7 experiments.

These monitors attach to a :class:`~repro.sim.network.Network` and observe
every send, delivery, and drop without touching algorithm code:

* :class:`ChannelOccupancyMonitor` — tracks, per undirected edge, how many
  messages are simultaneously in transit, and the all-time maximum.  The
  paper claims a bound of **4 dining-layer messages per edge** (one fork,
  one token, one ping/ack per direction).
* :class:`MessageStats` — message counts by type and by layer.
* :class:`QuiescenceMonitor` — records every send addressed to a process
  after that process's crash instant, to verify correct processes
  eventually stop messaging crashed neighbors.

The occupancy and quiescence monitors are thin adapters over the
canonical implementations in :mod:`repro.checks.properties`
(:class:`~repro.checks.properties.ChannelOccupancy`,
:class:`~repro.checks.properties.QuiescenceChecker`) — how those
quantities are counted exists exactly once, in the checks subsystem.

Messages advertise their protocol layer through a ``layer`` attribute
(``"dining"`` for Algorithm 1 traffic, ``"detector"`` for heartbeats);
monitors can filter on it so detector chatter doesn't obscure the dining
bound.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.checks.properties import ChannelOccupancy, PostCrashSend, QuiescenceChecker
from repro.sim.actor import ProcessId
from repro.sim.network import NetworkMonitor
from repro.sim.time import Instant

__all__ = [
    "ChannelOccupancyMonitor",
    "DeferredMessageStats",
    "MessageStats",
    "PostCrashSend",
    "QuiescenceMonitor",
    "message_layer",
]


def message_layer(message) -> str:
    """Return the protocol layer a message belongs to (default ``"app"``)."""
    return getattr(message, "layer", "app")


class ChannelOccupancyMonitor(NetworkMonitor):
    """Per-undirected-edge in-transit occupancy tracker.

    Parameters
    ----------
    layer:
        When given, only messages of that layer are counted; others are
        invisible to this monitor.
    occupancy:
        An existing :class:`~repro.checks.properties.ChannelOccupancy` to
        expose instead of a fresh one.  A table with an attached check
        suite passes the suite's instance so the monitor is a pure read
        facade over counts the kernel adapter maintains — register the
        monitor *or* feed the shared instance elsewhere, never both.
    """

    def __init__(
        self,
        layer: Optional[str] = None,
        *,
        occupancy: Optional[ChannelOccupancy] = None,
    ) -> None:
        self._occupancy = occupancy if occupancy is not None else ChannelOccupancy(layer=layer)
        # Shared dict objects, so reads stay plain attribute+key lookups.
        self.current: Dict[Tuple[ProcessId, ProcessId], int] = self._occupancy.current
        self.peak: Dict[Tuple[ProcessId, ProcessId], int] = self._occupancy.peak
        self.peak_time: Dict[Tuple[ProcessId, ProcessId], Instant] = self._occupancy.peak_time

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._occupancy.record_send(src, dst, message_layer(message), time)

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._occupancy.record_departure(src, dst, message_layer(message))

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._occupancy.record_departure(src, dst, message_layer(message))

    @property
    def max_occupancy(self) -> int:
        """Largest number of in-transit messages ever seen on any edge."""
        return self._occupancy.max_occupancy

    def edges_exceeding(self, bound: int) -> List[Tuple[ProcessId, ProcessId]]:
        """Edges whose peak occupancy exceeded ``bound``."""
        return self._occupancy.edges_exceeding(bound)


class MessageStats(NetworkMonitor):
    """Counts of sent messages by type name and by layer."""

    def __init__(self) -> None:
        self.by_type: Dict[str, int] = defaultdict(int)
        self.by_layer: Dict[str, int] = defaultdict(int)
        self.total = 0

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self.total += 1
        self.by_type[type(message).__name__] += 1
        self.by_layer[message_layer(message)] += 1


class DeferredMessageStats(MessageStats):
    """Read facade over send counts an adapter accumulates out-of-line.

    The kernel check adapter batches sends per message class and settles
    them through ``flush`` — every accessor flushes first, so readers
    always see up-to-date totals.  Never register this as a monitor; the
    adapter is the one counting.
    """

    def __init__(self, flush: Callable[[], None]) -> None:
        self._flush = flush
        self._by_type: Dict[str, int] = defaultdict(int)
        self._by_layer: Dict[str, int] = defaultdict(int)
        self._total = 0

    @property
    def by_type(self) -> Dict[str, int]:
        self._flush()
        return self._by_type

    @property
    def by_layer(self) -> Dict[str, int]:
        self._flush()
        return self._by_layer

    @property
    def total(self) -> int:
        self._flush()
        return self._total


class QuiescenceMonitor(NetworkMonitor):
    """Records traffic addressed to crashed processes.

    ``crash_time_of`` maps a pid to its crash instant or ``None`` when the
    process is correct (typically ``CrashPlan.as_dict().get``).  With
    ``checker`` the monitor becomes a read facade over an existing
    :class:`~repro.checks.properties.QuiescenceChecker` (the check
    suite's) instead of counting on its own — register the monitor *or*
    feed the shared checker elsewhere, never both.
    """

    def __init__(
        self,
        crash_time_of: Callable[[ProcessId], Optional[Instant]],
        *,
        checker: Optional[QuiescenceChecker] = None,
    ) -> None:
        self._checker = (
            checker
            if checker is not None
            else QuiescenceChecker(layer=None, crash_time_of=crash_time_of)
        )

    @property
    def post_crash_sends(self) -> List[PostCrashSend]:
        return self._checker.post_crash_sends

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._checker.record_send(
            src, dst, time, type(message).__name__, message_layer(message)
        )

    def sends_to(self, dst: ProcessId, *, layer: Optional[str] = None) -> List[PostCrashSend]:
        """Post-crash sends addressed to ``dst`` (optionally one layer)."""
        return self._checker.sends_to(dst, layer=layer)

    def last_send_time(self, dst: ProcessId, *, layer: Optional[str] = None) -> Optional[Instant]:
        """Time of the final post-crash send to ``dst``, or None."""
        return self._checker.last_send_time(dst, layer=layer)
