"""Network probes used by the Section 7 experiments.

These monitors attach to a :class:`~repro.sim.network.Network` and observe
every send, delivery, and drop without touching algorithm code:

* :class:`ChannelOccupancyMonitor` — tracks, per undirected edge, how many
  messages are simultaneously in transit, and the all-time maximum.  The
  paper claims a bound of **4 dining-layer messages per edge** (one fork,
  one token, one ping/ack per direction).
* :class:`MessageStats` — message counts by type and by layer.
* :class:`QuiescenceMonitor` — records every send addressed to a process
  after that process's crash instant, to verify correct processes
  eventually stop messaging crashed neighbors.

Messages advertise their protocol layer through a ``layer`` attribute
(``"dining"`` for Algorithm 1 traffic, ``"detector"`` for heartbeats);
monitors can filter on it so detector chatter doesn't obscure the dining
bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.actor import ProcessId
from repro.sim.network import NetworkMonitor
from repro.sim.time import Instant


def message_layer(message) -> str:
    """Return the protocol layer a message belongs to (default ``"app"``)."""
    return getattr(message, "layer", "app")


def _edge(a: ProcessId, b: ProcessId) -> Tuple[ProcessId, ProcessId]:
    return (a, b) if a <= b else (b, a)


class ChannelOccupancyMonitor(NetworkMonitor):
    """Per-undirected-edge in-transit occupancy tracker.

    Parameters
    ----------
    layer:
        When given, only messages of that layer are counted; others are
        invisible to this monitor.
    """

    def __init__(self, layer: Optional[str] = None) -> None:
        self._layer = layer
        self.current: Dict[Tuple[ProcessId, ProcessId], int] = defaultdict(int)
        self.peak: Dict[Tuple[ProcessId, ProcessId], int] = defaultdict(int)
        self.peak_time: Dict[Tuple[ProcessId, ProcessId], Instant] = {}

    def _counts(self, message) -> bool:
        return self._layer is None or message_layer(message) == self._layer

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        if not self._counts(message):
            return
        edge = _edge(src, dst)
        self.current[edge] += 1
        if self.current[edge] > self.peak[edge]:
            self.peak[edge] = self.current[edge]
            self.peak_time[edge] = time

    def _departed(self, src: ProcessId, dst: ProcessId, message) -> None:
        if not self._counts(message):
            return
        self.current[_edge(src, dst)] -= 1

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._departed(src, dst, message)

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self._departed(src, dst, message)

    @property
    def max_occupancy(self) -> int:
        """Largest number of in-transit messages ever seen on any edge."""
        return max(self.peak.values(), default=0)

    def edges_exceeding(self, bound: int) -> List[Tuple[ProcessId, ProcessId]]:
        """Edges whose peak occupancy exceeded ``bound``."""
        return sorted(edge for edge, peak in self.peak.items() if peak > bound)


class MessageStats(NetworkMonitor):
    """Counts of sent messages by type name and by layer."""

    def __init__(self) -> None:
        self.by_type: Dict[str, int] = defaultdict(int)
        self.by_layer: Dict[str, int] = defaultdict(int)
        self.total = 0

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        self.total += 1
        self.by_type[type(message).__name__] += 1
        self.by_layer[message_layer(message)] += 1


@dataclass(frozen=True)
class PostCrashSend:
    """One message sent to an already-crashed destination."""

    src: ProcessId
    dst: ProcessId
    time: Instant
    message_type: str
    layer: str


class QuiescenceMonitor(NetworkMonitor):
    """Records traffic addressed to crashed processes.

    ``crash_time_of`` maps a pid to its crash instant or ``None`` when the
    process is correct (typically ``CrashPlan.as_dict().get``).
    """

    def __init__(self, crash_time_of: Callable[[ProcessId], Optional[Instant]]) -> None:
        self._crash_time_of = crash_time_of
        self.post_crash_sends: List[PostCrashSend] = []

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        crash_time = self._crash_time_of(dst)
        if crash_time is None or time < crash_time:
            return
        self.post_crash_sends.append(
            PostCrashSend(src, dst, time, type(message).__name__, message_layer(message))
        )

    def sends_to(self, dst: ProcessId, *, layer: Optional[str] = None) -> List[PostCrashSend]:
        """Post-crash sends addressed to ``dst`` (optionally one layer)."""
        return [
            record
            for record in self.post_crash_sends
            if record.dst == dst and (layer is None or record.layer == layer)
        ]

    def last_send_time(self, dst: ProcessId, *, layer: Optional[str] = None) -> Optional[Instant]:
        """Time of the final post-crash send to ``dst``, or None."""
        times = [record.time for record in self.sends_to(dst, layer=layer)]
        return max(times) if times else None
