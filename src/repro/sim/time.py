"""Virtual time for the discrete-event simulation kernel.

The definitions live in :mod:`repro.timebase` (they are shared with the
live asyncio runtime, whose clock is wall seconds rather than virtual
time); this module re-exports them under their historical home so
kernel-side code keeps importing ``repro.sim.time``.
"""

from __future__ import annotations

from repro.timebase import (
    END_OF_TIME,
    START_OF_TIME,
    Duration,
    Instant,
    validate_duration,
    validate_instant,
)

__all__ = [
    "END_OF_TIME",
    "START_OF_TIME",
    "Duration",
    "Instant",
    "validate_duration",
    "validate_instant",
]
