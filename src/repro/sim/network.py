"""Reliable FIFO message-passing network.

The paper assumes reliable FIFO channels: every message sent to a correct
process is eventually delivered, in send order, without loss, duplication,
or corruption.  :class:`Network` implements exactly that on top of the
kernel:

* **Reliability** — every send schedules exactly one delivery event.
* **FIFO** — the delivery time of each message is clamped to be no earlier
  than the previously scheduled delivery on the same directed channel;
  combined with the kernel's stable tie-breaking this preserves send order
  even when a later message samples a shorter delay.
* **Crash semantics** — messages addressed to a process that has crashed
  by delivery time are dropped (counted, for quiescence analysis), and the
  network refuses sends *from* crashed processes.

Monitors (:mod:`repro.sim.monitors`) observe every send/deliver/drop, which
is how the Section 7 channel-capacity and quiescence experiments measure
in-transit occupancy without touching the algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, CrashedProcessError, SimulationError
from repro.sim.actor import Actor, ProcessId
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.time import Instant


class NetworkMonitor:
    """Observer interface for network traffic; all hooks optional."""

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message entered the channel ``src -> dst``."""

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message left the channel and was handed to the destination."""

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message was discarded because the destination had crashed."""


class Network:
    """Message fabric connecting :class:`~repro.sim.actor.Actor` objects."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self._sim = sim
        self._latency: LatencyModel = latency if latency is not None else FixedLatency(1.0)
        self._actors: Dict[ProcessId, Actor] = {}
        self._monitors: List[NetworkMonitor] = []
        # Last *scheduled* delivery instant per directed channel; clamping
        # against it is what makes channels FIFO.
        self._channel_front: Dict[tuple, Instant] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # Topology / wiring
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        """Add an actor to the network and bind it to the kernel."""
        if actor.pid in self._actors:
            raise ConfigurationError(f"duplicate process id {actor.pid}")
        self._actors[actor.pid] = actor
        actor.bind(self._sim, self)

    def actor(self, pid: ProcessId) -> Actor:
        try:
            return self._actors[pid]
        except KeyError:
            raise ConfigurationError(f"unknown process id {pid}") from None

    @property
    def pids(self) -> List[ProcessId]:
        return sorted(self._actors)

    def add_monitor(self, monitor: NetworkMonitor) -> None:
        self._monitors.append(monitor)

    def start(self) -> None:
        """Invoke every actor's ``on_start`` hook (in pid order)."""
        for pid in self.pids:
            actor = self._actors[pid]
            if not actor.crashed:
                actor.on_start()
                actor.reevaluate()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, src: ProcessId, dst: ProcessId, message) -> None:
        """Transmit ``message`` on the directed FIFO channel ``src -> dst``."""
        if src not in self._actors:
            raise ConfigurationError(f"unknown sender {src}")
        if dst not in self._actors:
            raise ConfigurationError(f"unknown destination {dst}")
        sender = self._actors[src]
        if sender.crashed:
            raise CrashedProcessError(f"crashed process {src} attempted to send")

        now = self._sim.now
        delay = self._latency.sample(src, dst, now, self._sim.streams)
        if delay <= 0:
            raise SimulationError(f"latency model produced non-positive delay {delay!r}")
        arrival = now + delay
        front = self._channel_front.get((src, dst))
        if front is not None and arrival < front:
            arrival = front
        self._channel_front[(src, dst)] = arrival

        self.sent_count += 1
        for monitor in self._monitors:
            monitor.on_send(src, dst, message, now)

        def deliver() -> None:
            receiver = self._actors[dst]
            if receiver.crashed:
                self.dropped_count += 1
                for monitor in self._monitors:
                    monitor.on_drop(src, dst, message, self._sim.now)
                return
            self.delivered_count += 1
            for monitor in self._monitors:
                monitor.on_deliver(src, dst, message, self._sim.now)
            receiver.deliver(src, message)

        self._sim.schedule_at(
            arrival,
            deliver,
            priority=EventPriority.DELIVERY,
            label=f"deliver {type(message).__name__} {src}->{dst}",
        )

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash process ``pid`` immediately."""
        self.actor(pid).crash()

    def crash_at(self, pid: ProcessId, time: Instant) -> None:
        """Schedule a crash of ``pid`` at absolute ``time`` (CONTROL priority)."""
        self._sim.schedule_at(
            time,
            lambda: self.actor(pid).crash(),
            priority=EventPriority.CONTROL,
            label=f"crash {pid}",
        )
