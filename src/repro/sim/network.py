"""Reliable FIFO message-passing network.

The paper assumes reliable FIFO channels: every message sent to a correct
process is eventually delivered, in send order, without loss, duplication,
or corruption.  :class:`Network` implements exactly that on top of the
kernel:

* **Reliability** — every send schedules exactly one delivery event.
* **FIFO** — the delivery time of each message is clamped to be no earlier
  than the previously scheduled delivery on the same directed channel;
  combined with the kernel's stable tie-breaking this preserves send order
  even when a later message samples a shorter delay.
* **Crash semantics** — messages addressed to a process that has crashed
  by delivery time are dropped (counted, for quiescence analysis), and the
  network refuses sends *from* crashed processes.

Monitors (:mod:`repro.sim.monitors`) observe every send/deliver/drop, which
is how the Section 7 channel-capacity and quiescence experiments measure
in-transit occupancy without touching the algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, CrashedProcessError, SimulationError
from repro.sim.actor import Actor, ProcessId
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.time import Instant


class NetworkMonitor:
    """Observer interface for network traffic; all hooks optional."""

    def on_send(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message entered the channel ``src -> dst``."""

    def on_deliver(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message left the channel and was handed to the destination."""

    def on_drop(self, src: ProcessId, dst: ProcessId, message, time: Instant) -> None:
        """A message was discarded because the destination had crashed."""


class _Delivery:
    """A pooled, reusable delivery record (arena-style reuse).

    One callable object per *in-flight* message instead of one closure per
    *send*: when the delivery fires it returns itself to the network's
    free list before touching the receiver, so the pool's size is bounded
    by the peak number of concurrently in-transit messages — a handful per
    channel under the paper's ≤4-per-edge regime — while a closure-based
    scheme allocates (closure + cell) on every single send.
    """

    __slots__ = ("_network", "src", "dst", "message", "seq")

    def __init__(self, network: "Network") -> None:
        self._network = network
        self.src: ProcessId = -1
        self.dst: ProcessId = -1
        self.message = None
        self.seq = 0

    def __call__(self) -> None:
        network = self._network
        src = self.src
        dst = self.dst
        message = self.message
        # Monitors read the consumed sequence number from the network
        # while their on_deliver/on_drop hook runs (see delivering_seq).
        network.delivering_seq = self.seq
        # Recycle before delivering: the queue entry referencing this
        # record is already popped, and the receiver's reaction may send
        # (and thus want a fresh record) immediately.
        self.message = None
        network._pool.append(self)
        receiver = network._actors[dst]
        now = network._sim._now
        fences = network._fences
        if fences:
            # A fenced channel (a rejoin replaced the endpoint, or the
            # edge itself was torn down and rebuilt) drops every message
            # sequenced at or before the fence: traffic from a dead
            # topology epoch must not reach the fresh incarnation.
            fence = fences.get((src, dst))
            if fence is not None and 0 < self.seq <= fence:
                network.dropped_count += 1
                for monitor in network._monitors:
                    monitor.on_drop(src, dst, message, now)
                return
        if receiver.crashed:
            network.dropped_count += 1
            for monitor in network._monitors:
                monitor.on_drop(src, dst, message, now)
            return
        network.delivered_count += 1
        monitors = network._monitors
        if monitors:
            for monitor in monitors:
                monitor.on_deliver(src, dst, message, now)
        receiver.deliver(src, message)


class Network:
    """Message fabric connecting :class:`~repro.sim.actor.Actor` objects."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self._sim = sim
        self._latency: LatencyModel = latency if latency is not None else FixedLatency(1.0)
        # Constant-latency fast path: FixedLatency validated its delay at
        # construction, so the per-send ``sample`` frame can be skipped.
        self._fixed_delay: Optional[float] = (
            self._latency.delay if type(self._latency) is FixedLatency else None
        )
        self._actors: Dict[ProcessId, Actor] = {}
        self._monitors: List[NetworkMonitor] = []
        # Per-directed-channel cell ``[front, seq]``: the last *scheduled*
        # delivery instant (clamping against it is what makes channels
        # FIFO) and the last assigned sequence number (0 until
        # :meth:`enable_sequencing`).  One dict lookup per send serves
        # both jobs.
        self._channels: Dict[tuple, list] = {}
        # Per-directed-channel drop fence: deliveries with a sequence
        # number at or below the fence are discarded (stale traffic from
        # before a rejoin or an edge rebuild).  Empty on static runs, so
        # the delivery path pays one truthiness test.
        self._fences: Dict[tuple, int] = {}
        self._sequencing = False
        #: Sequence number of the most recent send (monitors read it from
        #: their ``on_send`` hook) / of the delivery or drop currently
        #: being dispatched.  0 means unsequenced.
        self.last_send_seq = 0
        self.delivering_seq = 0
        # Free list of _Delivery records and the per-message-class label
        # cache ("deliver Fork"): the profiler aggregates labels to
        # exactly this granularity (see repro.obs.profile.normalize).
        self._pool: List[_Delivery] = []
        self._labels: Dict[type, str] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # Topology / wiring
    # ------------------------------------------------------------------
    def register(self, actor: Actor, *, replace: bool = False) -> None:
        """Add an actor to the network and bind it to the kernel.

        ``replace=True`` substitutes a fresh incarnation for an existing
        (crashed) actor — the rejoin path of dynamic membership.  Every
        channel touching the pid is fenced at its current sequence
        number, so traffic in flight to or from the dead incarnation is
        dropped at delivery instead of leaking into the new life
        (sequence numbers require :meth:`enable_sequencing`, which every
        checked run arms).
        """
        pid = actor.pid
        if pid in self._actors:
            if not replace:
                raise ConfigurationError(f"duplicate process id {pid}")
            old = self._actors[pid]
            if not old.crashed:
                raise ConfigurationError(
                    f"cannot replace live process {pid}; crash (leave) it first"
                )
            for key, cell in self._channels.items():
                if pid in key and cell[1]:
                    self._fences[key] = cell[1]
        self._actors[pid] = actor
        actor.bind(self._sim, self)

    def fence_channels(self, a: ProcessId, b: ProcessId) -> None:
        """Fence both directions of edge ``(a, b)`` at their current seq.

        Used when a previously removed conflict edge is re-added: any
        message still in flight from the edge's earlier existence is
        dropped at delivery rather than delivered into the rebuilt
        hygienic link state.
        """
        for key in ((a, b), (b, a)):
            cell = self._channels.get(key)
            if cell is not None and cell[1]:
                self._fences[key] = cell[1]

    def actor(self, pid: ProcessId) -> Actor:
        try:
            return self._actors[pid]
        except KeyError:
            raise ConfigurationError(f"unknown process id {pid}") from None

    @property
    def pids(self) -> List[ProcessId]:
        return sorted(self._actors)

    def add_monitor(self, monitor: NetworkMonitor) -> None:
        self._monitors.append(monitor)

    def enable_sequencing(self) -> None:
        """Stamp a per-directed-channel sequence number on every send.

        Mirrors the live wire codec, which numbers every frame on a
        channel regardless of layer — so the canonical FIFO checker
        judges both substrates over the identical stream.  Off by
        default: a bare unchecked run pays nothing.
        """
        self._sequencing = True

    def start(self) -> None:
        """Invoke every actor's ``on_start`` hook (in pid order)."""
        for pid in self.pids:
            actor = self._actors[pid]
            if not actor.crashed:
                actor.on_start()
                actor.reevaluate()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, src: ProcessId, dst: ProcessId, message) -> None:
        """Transmit ``message`` on the directed FIFO channel ``src -> dst``."""
        actors = self._actors
        sender = actors.get(src)
        if sender is None:
            raise ConfigurationError(f"unknown sender {src}")
        if dst not in actors:
            raise ConfigurationError(f"unknown destination {dst}")
        if sender.crashed:
            raise CrashedProcessError(f"crashed process {src} attempted to send")

        sim = self._sim
        now = sim._now
        delay = self._fixed_delay
        if delay is None:
            delay = self._latency.sample(src, dst, now, sim.streams)
            if delay <= 0:
                raise SimulationError(
                    f"latency model produced non-positive delay {delay!r}"
                )
        arrival = now + delay
        key = (src, dst)
        channels = self._channels
        cell = channels.get(key)
        if cell is None:
            cell = channels[key] = [0.0, 0]
        if arrival < cell[0]:
            arrival = cell[0]
        cell[0] = arrival
        seq = 0
        if self._sequencing:
            cell[1] = seq = cell[1] + 1
            self.last_send_seq = seq

        self.sent_count += 1
        monitors = self._monitors
        if monitors:
            for monitor in monitors:
                monitor.on_send(src, dst, message, now)

        pool = self._pool
        record = pool.pop() if pool else _Delivery(self)
        record.src = src
        record.dst = dst
        record.message = message
        record.seq = seq
        cls = type(message)
        labels = self._labels
        label = labels.get(cls)
        if label is None:
            label = labels[cls] = f"deliver {cls.__name__}"
        sim.schedule_delivery(arrival, record, label)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash process ``pid`` immediately."""
        self.actor(pid).crash()

    def crash_at(self, pid: ProcessId, time: Instant) -> None:
        """Schedule a crash of ``pid`` at absolute ``time`` (CONTROL priority)."""
        self._sim.schedule_at(
            time,
            lambda: self.actor(pid).crash(),
            priority=EventPriority.CONTROL,
            label=f"crash {pid}",
        )
