"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one base class.  Invariant violations get their own subtree
(:class:`InvariantViolation`) because experiment harnesses treat them
differently from configuration mistakes: an invariant violation is evidence
against the paper's claims, a configuration error is a bug in the caller.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation kernel reached an inconsistent internal state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished simulator."""


class CrashedProcessError(SimulationError):
    """An operation was attempted on behalf of a crashed process."""


class InvariantViolation(ReproError):
    """A checked algorithm invariant does not hold.

    Raised by the online checkers in :mod:`repro.checks` when a suite is
    armed strictly (for example fork uniqueness, channel-capacity
    bounds, or FIFO ordering).
    """


class ForkDuplicationError(InvariantViolation):
    """Both endpoints of an edge believe they hold the shared fork."""


class ChannelCapacityError(InvariantViolation):
    """More dining-layer messages in transit on one edge than Section 7 allows."""


class FifoViolationError(InvariantViolation):
    """A channel delivered messages out of send order."""


class ColoringError(ConfigurationError):
    """A node coloring is not a proper coloring of the conflict graph."""
