"""E6 — Bounded space and message size (Section 7).

Claim: each process needs ``log₂(δ) + 6δ + c`` bits of local memory
(O(n) only in the clique worst case), and every message is O(log n) bits.

Method: across topologies and sizes, account the bits of the *actual*
runtime state (the diner keeps exactly six booleans per neighbor plus the
phase, doorway flag, and color — asserted against the live objects) and
the worst-case message size under the paper's encoding.  The table makes
the scaling visible: bits/process tracks δ, not n, except on the clique
where δ = n − 1.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.core import DiningTable, local_state_bits, message_size_bits, scripted_detector
from repro.core.messages import Ack, Fork, ForkRequest, Ping
from repro.core.state import NeighborLinks
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.graphs.coloring import color_count
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows

COLUMNS = (
    "topology",
    "n",
    "delta",
    "colors",
    "bits_per_process",
    "bools_per_neighbor",
    "max_message_bits",
)

CLAIM = "Section 7: log2(δ) + 6δ + c bits per process; O(log n)-bit messages."


@register_scenario(
    "e6",
    title="E6 — Bounded space and message size",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("topology", "n"),
    spec=ScenarioSpec(
        topology=("ring", "grid", "tree", "random", "star", "clique"),
        detector="scripted",
        crashes="none",
        latency="zero",
        workload="always-hungry",
        horizon=20.0,
        seeds=(6,),
    ),
)
def run_space(
    *,
    topology_names: Sequence[str] = ("ring", "grid", "tree", "random", "star", "clique"),
    sizes: Sequence[int] = (8, 16, 32),
    seed: int = 6,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for topology_name in topology_names:
        for n in sizes:
            graph = topologies.by_name(topology_name, n, seed=seed)
            table = DiningTable(graph, seed=seed, detector=scripted_detector())
            table.run(until=20.0)  # exercise the state before measuring

            colors = color_count(table.coloring)
            # The paper counts booleans per neighbor; assert the live
            # object really has exactly six.
            bools_per_neighbor = len(dataclasses.fields(NeighborLinks))
            worst = max(
                local_state_bits(graph.degree(pid), colors) for pid in graph.nodes
            )
            messages = [Ping(0), Ack(0), Fork(0), ForkRequest(0, colors - 1)]
            max_message = max(
                message_size_bits(m, n_processes=len(graph), n_colors=colors)
                for m in messages
            )
            rows.append(
                {
                    "topology": topology_name,
                    "n": n,
                    "delta": graph.max_degree,
                    "colors": colors,
                    "bits_per_process": worst,
                    "bools_per_neighbor": bools_per_neighbor,
                    "max_message_bits": max_message,
                }
            )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e6")
    print_experiment("E6 — Bounded space and message size", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
