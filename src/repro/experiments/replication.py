"""Multi-seed replication: turn single runs into distributions.

Every experiment function in this package is deterministic per seed.
Replication reruns one across a seed list and aggregates each numeric
column into mean / min / max — the difference between "this run had 5
violations" and "runs have 4.8 ± 2 violations, never after the cutoff".

Typical use::

    from repro.experiments.replication import replicate
    from repro.experiments.e1_safety import run_safety

    rows = replicate(
        run_safety,
        seeds=range(10),
        kwargs=dict(topology_names=("ring",), n=10, convergence_times=(25.0,)),
        group_by=("topology", "T_c"),
    )

Returns one aggregated row per group with ``metric_mean`` / ``metric_min``
/ ``metric_max`` columns for every numeric metric, plus ``replicates``.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


def replicate(
    run_fn: Callable[..., List[Dict[str, object]]],
    *,
    seeds: Iterable[int],
    kwargs: Optional[dict] = None,
    group_by: Sequence[str],
    seed_param: str = "seed",
) -> List[Dict[str, object]]:
    """Run ``run_fn`` once per seed and aggregate numeric columns by group."""
    kwargs = dict(kwargs or {})
    samples: Dict[Tuple, Dict[str, List[float]]] = {}
    group_values: Dict[Tuple, Dict[str, object]] = {}
    replicate_counts: Dict[Tuple, int] = {}

    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("replicate needs at least one seed")

    for seed in seed_list:
        kwargs[seed_param] = seed
        for row in run_fn(**kwargs):
            key = tuple(row.get(col) for col in group_by)
            group_values.setdefault(key, {col: row.get(col) for col in group_by})
            replicate_counts[key] = replicate_counts.get(key, 0) + 1
            bucket = samples.setdefault(key, {})
            for column, value in row.items():
                if column in group_by:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                bucket.setdefault(column, []).append(float(value))

    aggregated: List[Dict[str, object]] = []
    for key in sorted(samples, key=lambda k: tuple(str(v) for v in k)):
        row: Dict[str, object] = dict(group_values[key])
        row["replicates"] = replicate_counts[key]
        for column, values in sorted(samples[key].items()):
            row[f"{column}_mean"] = statistics.fmean(values)
            row[f"{column}_min"] = min(values)
            row[f"{column}_max"] = max(values)
        aggregated.append(row)
    return aggregated


def columns_for(
    group_by: Sequence[str], metrics: Sequence[str], *, stats: Sequence[str] = ("mean", "min", "max")
) -> Tuple[str, ...]:
    """Column list for :func:`repro.experiments.common.format_table`."""
    derived = [f"{metric}_{stat}" for metric in metrics for stat in stats]
    return tuple(group_by) + ("replicates",) + tuple(derived)
