"""Multi-seed replication: turn single runs into distributions.

Every experiment function in this package is deterministic per seed.
Replication reruns one across a seed list and aggregates each numeric
column into mean / min / max — the difference between "this run had 5
violations" and "runs have 4.8 ± 2 violations, never after the cutoff".

Typical use::

    from repro.experiments.replication import replicate
    from repro.experiments.e1_safety import run_safety

    rows = replicate(
        run_safety,
        seeds=range(10),
        kwargs=dict(topology_names=("ring",), n=10, convergence_times=(25.0,)),
        group_by=("topology", "T_c"),
        jobs=4,                      # seeds fan out over a process pool
    )

Returns one aggregated row per group with ``metric_mean`` / ``metric_min``
/ ``metric_max`` columns for every numeric metric, plus ``replicates``.

Execution dispatches through the scenario runner
(:func:`repro.scenarios.map_seeds`), so ``jobs > 1`` parallelizes the
seed sweep; :func:`replicate_scenario` is the registry-native variant,
which additionally hits the spec-hash result cache.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.scenarios.aggregate import aggregate_rows
from repro.scenarios.runner import map_seeds, run_scenario


def replicate(
    run_fn: Callable[..., List[Dict[str, object]]],
    *,
    seeds: Iterable[int],
    kwargs: Optional[dict] = None,
    group_by: Sequence[str],
    seed_param: str = "seed",
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Run ``run_fn`` once per seed and aggregate numeric columns by group.

    Raises :class:`ValueError` if ``group_by`` names a column absent from
    the produced rows (a typo would otherwise silently collapse every row
    into one anonymous group).
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("replicate needs at least one seed")
    per_seed = map_seeds(
        run_fn, seeds=seed_list, kwargs=kwargs, seed_param=seed_param, jobs=jobs
    )
    return aggregate_rows(per_seed, group_by=group_by)


def replicate_scenario(
    name: str,
    *,
    seeds: Iterable[int],
    group_by: Optional[Sequence[str]] = None,
    overrides: Optional[dict] = None,
    jobs: int = 1,
    use_cache: bool = True,
) -> List[Dict[str, object]]:
    """Replicate a *registered* scenario across seeds via the Runner.

    Same aggregation as :func:`replicate`, but the per-seed rows go
    through the scenario result cache, so repeated sweeps are free.
    ``group_by`` defaults to the scenario's registered grouping.
    """
    result = run_scenario(
        name, seeds=seeds, jobs=jobs, use_cache=use_cache, overrides=overrides
    )
    return result.aggregate(group_by)


def columns_for(
    group_by: Sequence[str], metrics: Sequence[str], *, stats: Sequence[str] = ("mean", "min", "max")
) -> Tuple[str, ...]:
    """Column list for :func:`repro.experiments.common.format_table`."""
    derived = [f"{metric}_{stat}" for metric in metrics for stat in stats]
    return tuple(group_by) + ("replicates",) + tuple(derived)
