"""Shared scaffolding for the experiment harnesses.

Every experiment module exposes a ``run_*`` function that returns a list
of row dicts (one per configuration) and a ``main()`` that renders them
with :func:`format_table`.  Rows are plain dicts so benchmarks, tests,
and EXPERIMENTS.md generation all consume the same output.
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str], *, title: str = "") -> str:
    """Render rows as a fixed-width text table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        if value is None:
            return "-"
        return str(value)

    widths = {
        col: max(len(col), max(len(cell(row.get(col))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "-" * len(header)
    lines = [header, rule]
    for row in rows:
        lines.append("  ".join(cell(row.get(col)).ljust(widths[col]) for col in columns))
    body = "\n".join(lines)
    if title:
        return f"{title}\n{rule}\n{body}"
    return body


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / max of a sample (empty-safe)."""
    data = sorted(values)
    if not data:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": statistics.fmean(data),
        "p50": data[len(data) // 2],
        "p95": data[min(len(data) - 1, int(0.95 * len(data)))],
        "max": data[-1],
    }


def print_experiment(name: str, claim: str, rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> None:
    """Standard experiment output: banner, claim, table."""
    banner = "=" * 72
    print(banner)
    print(name)
    print(claim)
    print(banner)
    print(format_table(rows, columns))
    print()


def write_csv(rows: Sequence[Dict[str, object]], columns: Sequence[str], path: str) -> int:
    """Write experiment rows as CSV (for external plotting); returns row count.

    Cells are rendered exactly as :func:`format_table` renders them, so
    the CSV and the printed table always agree.
    """
    import csv

    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(columns)
        for row in rows:
            rendered = []
            for column in columns:
                value = row.get(column)
                if isinstance(value, float):
                    rendered.append(f"{value:.6g}")
                elif value is None:
                    rendered.append("")
                else:
                    rendered.append(str(value))
            writer.writerow(rendered)
    return len(rows)
