"""E3 — Eventual 2-bounded waiting (Theorem 3) and the fairness ablations.

Claim: every run of Algorithm 1 has a suffix in which no diner enters
eating more than **twice** during one continuous hungry session of any
live neighbor.  The bound is tight (2 is observed).  Remove the doorway
(forks-only static priority) and overtaking grows with run length; remove
only the per-session ack throttle (the Choy-Singh doorway with ◇P₁) and
overtaking stays finite but exceeds 2.

Method: the squeeze scenario — a low-color diner wedged between
high-color always-hungry neighbors (a 3-path with adversarial coloring),
plus a high-contention ring.  We sweep the horizon to expose growth: the
unfair baseline's worst overtake count scales with run length while
Algorithm 1's stays pinned at ≤ 2 after convergence.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import ChoySinghDiner, fork_priority_table
from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.latency import UniformLatency

COLUMNS = (
    "algorithm",
    "scenario",
    "horizon",
    "max_overtaking",
    "victim_meals",
    "neighbor_meals",
)

CLAIM = (
    "Theorem 3 (eventual 2-bounded waiting): after convergence no diner is "
    "overtaken more than twice per hungry session; baselines are unbounded / >2."
)

# The squeeze: pid 1 has the lowest color between two top-priority rivals.
SQUEEZE_COLORING = {0: 1, 1: 0, 2: 2}


def _squeeze_table(algorithm: str, seed: int, convergence_time: float) -> DiningTable:
    graph = topologies.path(3)
    workload = AlwaysHungry(eat_time=1.0, think_time=0.01)
    latency = UniformLatency(0.2, 0.6)
    if algorithm == "fork-priority":
        return fork_priority_table(
            graph, seed=seed, coloring=SQUEEZE_COLORING, workload=workload, latency=latency
        )
    detector = scripted_detector(
        convergence_time=convergence_time, random_mistakes=convergence_time > 0
    )
    factory = ChoySinghDiner if algorithm == "no-ack-throttle" else None
    return DiningTable(
        graph,
        seed=seed,
        coloring=SQUEEZE_COLORING,
        workload=workload,
        latency=latency,
        detector=detector,
        diner_factory=factory,
    )


def run_fairness(
    *,
    horizons: Sequence[float] = (250.0, 500.0, 1000.0),
    algorithms: Sequence[str] = ("algorithm-1", "no-ack-throttle", "fork-priority"),
    convergence_time: float = 40.0,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """Run the fairness sweep; the cutoff for overtake counting is the
    detector's convergence time (0 for the detector-free baseline)."""
    rows: List[Dict[str, object]] = []
    victim = 1
    for algorithm in algorithms:
        for horizon in horizons:
            table = _squeeze_table(algorithm, seed, convergence_time)
            table.run(until=horizon)
            cutoff = convergence_time if algorithm != "fork-priority" else 0.0
            meals = table.eat_counts()
            rows.append(
                {
                    "algorithm": algorithm,
                    "scenario": "squeeze-path3",
                    "horizon": horizon,
                    "max_overtaking": table.max_overtaking(after=cutoff),
                    "victim_meals": meals.get(victim, 0),
                    "neighbor_meals": max(meals.get(0, 0), meals.get(2, 0)),
                }
            )
    return rows


def run_ring_fairness(
    *,
    n: int = 10,
    horizon: float = 500.0,
    convergence_time: float = 40.0,
    seed: int = 5,
) -> Dict[str, object]:
    """High-contention ring: Algorithm 1's post-convergence bound holds
    on a symmetric topology too (single-row sanity companion to the
    squeeze scenario)."""
    table = DiningTable(
        topologies.ring(n),
        seed=seed,
        detector=scripted_detector(convergence_time=convergence_time, random_mistakes=True),
        workload=AlwaysHungry(eat_time=1.0, think_time=0.01),
        latency=UniformLatency(0.2, 0.6),
    )
    table.run(until=horizon)
    return {
        "algorithm": "algorithm-1",
        "scenario": f"ring-{n}",
        "horizon": horizon,
        "max_overtaking": table.max_overtaking(after=convergence_time),
        "victim_meals": min(table.eat_counts().values()),
        "neighbor_meals": max(table.eat_counts().values()),
    }


def run_throttle_ablation(
    *,
    horizon: float = 400.0,
    long_meal: float = 200.0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """The adversarial schedule that isolates the ack throttle.

    Path w—v—r: *w* takes one very long (finite!) meal, deferring the
    victim *v*'s doorway ack for its whole duration; the rival *r* cycles
    hungry→eat as fast as it can.  Without the paper's ``replied`` flag,
    *v* re-grants *r* an ack on every cycle, so *r* overtakes *v* once
    per meal — proportionally to ``long_meal``.  With the flag, *v*
    grants once per session and *r* is pinned after at most 2 entries.
    This is the modification Theorem 3 rests on, made visible.
    """
    from repro.core import ScriptedWorkload

    rows: List[Dict[str, object]] = []
    for algorithm, factory in (("algorithm-1", None), ("no-ack-throttle", ChoySinghDiner)):
        workload = ScriptedWorkload(
            think={0: [0.1], 1: [5.0], 2: [0.01] + [0.01] * int(horizon)},
            eat={0: [long_meal], 2: [1.0]},
        )
        table = DiningTable(
            topologies.path(3),
            seed=seed,
            coloring={0: 2, 1: 0, 2: 1},
            workload=workload,
            detector=scripted_detector(),
            diner_factory=factory,
        )
        table.run(until=horizon)
        meals = table.eat_counts()
        rows.append(
            {
                "algorithm": algorithm,
                "scenario": "long-meal adversary",
                "horizon": horizon,
                "max_overtaking": table.max_overtaking(),
                "victim_meals": meals.get(1, 0),
                "neighbor_meals": meals.get(2, 0),
            }
        )
    return rows


@register_scenario(
    "e3",
    title="E3 — Eventual 2-bounded waiting",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("algorithm", "scenario", "horizon"),
    spec=ScenarioSpec(
        topology=("path", "ring"),
        detector="scripted",
        crashes="none",
        latency="uniform(0.2, 0.6)",
        workload="always-hungry + scripted adversary",
        horizon=1000.0,
        seeds=(5,),
        params={"throttle_seed": 1},
    ),
)
def run_fairness_suite(*, seed: int = 5, throttle_seed: int = 1) -> List[Dict[str, object]]:
    """The full E3 table: squeeze sweep + ring companion + ack ablation.

    The throttle ablation's adversarial schedule is seed-insensitive by
    construction, so it keeps its own fixed seed rather than following
    the sweep seed.
    """
    rows = run_fairness(seed=seed)
    rows.append(run_ring_fairness(seed=seed))
    rows.extend(run_throttle_ablation(seed=throttle_seed))
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e3")
    print_experiment("E3 — Eventual 2-bounded waiting", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
