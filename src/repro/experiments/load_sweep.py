"""Load sweep — latency vs. injection rate at scale-out sizes (Section 7).

The paper's Section 7 accounting is asymptotic: O(δ) per-diner state,
O(log n)-bit messages, at most 4 dining messages in transit per edge.
The experiments E4/E6 verify those constants at toy sizes (n ≈ 12); this
sweep measures them where they matter — n = 1,000 … 10,000 — and
produces the classic saturation curve: hungry→eating latency as a
function of the hunger *injection rate*, per topology family.

* **grid** — bounded degree 4, the symmetric mesh baseline;
* **geometric** — random geometric graph (bounded expected degree,
  spatially local conflicts: the sensor-field regime);
* **scale_free** — Barabási–Albert (hub degree ~√n: the adversarial
  regime for O(δ) state and fork fan-in).

Each diner's hunger is an independent renewal process: after thinking
``1/rate`` it goes hungry, eats for ``eat_time``, and thinks again, so
``rate`` is the per-diner session injection rate.  As ``rate`` grows the
conflict graph saturates: latency climbs from the message round-trip
floor to the contention-dominated plateau while the ≤4-per-edge channel
bound must keep holding.  Every run executes under the full
:func:`repro.checks.standard_suite` (strict: a violation raises), so a
row in the output table *is* a PASS certificate at that scale.

The sweep exists because of the kernel rework (see
``docs/PERFORMANCE.md``): each row also reports raw kernel event
throughput (events per wall-second), which is what makes n=10,000 runs
feasible in minutes instead of hours.

Run it from the scenario registry::

    PYTHONPATH=src python -m repro.experiments.load_sweep

or with custom scale, e.g. the n=10,000 point, through the runner::

    Runner().run("load_sweep", overrides={"sizes": (10_000,)})
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows

COLUMNS = (
    "topology",
    "n",
    "delta",
    "inject_rate",
    "meals",
    "latency_mean",
    "latency_p95",
    "max_in_transit",
    "msgs_per_meal",
    "events_per_wall_s",
)

CLAIM = (
    "Section 7 at scale: the ≤4-per-edge channel bound and δ-tracking "
    "message cost hold at n=1,000-10,000 while latency saturates "
    "gracefully with injection rate."
)


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list (no numpy dependency)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@register_scenario(
    "load_sweep",
    title="Load sweep — saturation curves at n=1,000-10,000",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("topology", "n", "inject_rate"),
    spec=ScenarioSpec(
        topology=("grid", "geometric", "scale_free"),
        detector="scripted",
        crashes="none",
        latency="fixed(1)",
        workload="renewal hunger at swept rates",
        horizon=30.0,
        seeds=(1,),
        params={
            "topology_names": ("grid", "geometric", "scale_free"),
            "sizes": (1000,),
            "inject_rates": (0.05, 0.2, 1.0),
            "eat_time": 0.05,
            "horizon": 30.0,
        },
    ),
)
def run_load_sweep(
    *,
    topology_names: Sequence[str] = ("grid", "geometric", "scale_free"),
    sizes: Sequence[int] = (1000,),
    inject_rates: Sequence[float] = (0.05, 0.2, 1.0),
    eat_time: float = 0.05,
    horizon: float = 30.0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """One row per (topology, n, injection rate) under strict checks.

    ``inject_rate`` is sessions per time unit per diner while unblocked:
    think time is ``1/rate``.  The run aborts with a typed violation if
    any safety property (exclusion, fork uniqueness, FIFO, the channel
    bound) breaks, so returned rows certify PASS at their scale.
    """
    rows: List[Dict[str, object]] = []
    for topology_name in topology_names:
        for n in sizes:
            graph = topologies.by_name(topology_name, int(n), seed=seed)
            for rate in inject_rates:
                table = DiningTable(
                    graph,
                    seed=seed,
                    detector=scripted_detector(),
                    workload=AlwaysHungry(eat_time=eat_time, think_time=1.0 / rate),
                )
                started = time.perf_counter()
                table.run(until=horizon)
                wall = time.perf_counter() - started
                meals = sum(table.eat_counts().values())
                waits = table.response_times()
                messages = table.message_stats.by_layer.get("dining", 0)
                rows.append(
                    {
                        "topology": topology_name,
                        "n": len(graph),
                        "delta": graph.max_degree,
                        "inject_rate": rate,
                        "meals": meals,
                        "latency_mean": (
                            round(sum(waits) / len(waits), 3) if waits else None
                        ),
                        "latency_p95": (
                            round(_percentile(waits, 0.95), 3) if waits else None
                        ),
                        "max_in_transit": table.occupancy.max_occupancy,
                        "msgs_per_meal": round(messages / meals, 2) if meals else None,
                        "events_per_wall_s": int(table.sim.processed_events / wall)
                        if wall > 0
                        else None,
                    }
                )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("load_sweep")
    print_experiment(
        "Load sweep — saturation curves at n=1,000-10,000", CLAIM, rows, COLUMNS
    )
    return rows


if __name__ == "__main__":
    main()
