"""Experiment harnesses: one module per published claim (see DESIGN.md).

Each ``eN_*`` module exposes ``run_*`` functions returning row dicts and a
``main()`` that prints a paper-style table.  ``python -m
repro.experiments.run_all`` reproduces the full suite.
"""

from repro.experiments import (
    e1_safety,
    e2_progress,
    e3_fairness,
    e4_channels,
    e5_quiescence,
    e6_space,
    e7_daemon,
    e8_heartbeat,
    e9_necessity,
    e10_drinking,
    load_sweep,
)
from repro.baselines import bakeoff as dme_bakeoff  # registers dme_bakeoff
from repro.faults import scenarios as fuzz_scenarios  # registers the fuzz_* family

ALL_EXPERIMENTS = (
    e1_safety,
    e2_progress,
    e3_fairness,
    e4_channels,
    e5_quiescence,
    e6_space,
    e7_daemon,
    e8_heartbeat,
    e9_necessity,
    e10_drinking,
    load_sweep,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "e1_safety",
    "e2_progress",
    "e3_fairness",
    "e4_channels",
    "e5_quiescence",
    "e6_space",
    "e7_daemon",
    "e8_heartbeat",
    "e9_necessity",
    "e10_drinking",
    "load_sweep",
]
