"""E5 — Quiescence toward crashed processes (Section 7).

Claim: correct processes eventually stop sending dining-layer messages to
crashed neighbors.  Quantitatively, after a neighbor's crash a correct
process can send it at most one more ping (the ``pinged`` flag then pins
forever), at most one fork request (the token never returns), plus the
one-shot releases of a deferred fork and a deferred ack at its next exit.

Method: crash a batch of processes mid-run, keep the survivors
always-hungry for a long suffix, and measure (a) how many dining messages
each crashed process received after its crash, and (b) the gap between
the last such message and the crash — both must stay flat as the horizon
grows, which we check by extending the run 4× and confirming zero new
post-crash traffic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

COLUMNS = (
    "topology",
    "n",
    "crashed_pid",
    "degree",
    "post_crash_msgs",
    "last_msg_lag",
    "msgs_in_extension",
)

CLAIM = (
    "Section 7: dining traffic to a crashed process stops — bounded count, "
    "zero new messages in the extended suffix."
)


@register_scenario(
    "e5",
    title="E5 — Quiescence toward crashed processes",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("topology", "crashed_pid"),
    spec=ScenarioSpec(
        topology=("ring", "clique", "grid"),
        detector="scripted",
        crashes="3 random, mid-run",
        latency="zero",
        workload="always-hungry",
        horizon=300.0,
        seeds=(4,),
    ),
)
def run_quiescence(
    *,
    topology_names: Sequence[str] = ("ring", "clique", "grid"),
    n: int = 10,
    crash_count: int = 3,
    horizon: float = 300.0,
    seed: int = 4,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for topology_name in topology_names:
        graph = topologies.by_name(topology_name, n, seed=seed)
        crash_plan = CrashPlan.random(
            graph.nodes, crash_count, (horizon * 0.1, horizon * 0.3), RandomStreams(seed)
        )
        table = DiningTable(
            graph,
            seed=seed,
            detector=scripted_detector(convergence_time=30.0, random_mistakes=True),
            crash_plan=crash_plan,
        )
        table.run(until=horizon)
        counts_at_horizon = {
            pid: len(table.quiescence.sends_to(pid, layer="dining"))
            for pid in crash_plan.faulty
        }
        # Extend the run 4x: quiescence means nothing new arrives.
        table.run(until=horizon * 4)
        for pid in crash_plan.faulty:
            sends = table.quiescence.sends_to(pid, layer="dining")
            last = table.quiescence.last_send_time(pid, layer="dining")
            rows.append(
                {
                    "topology": topology_name,
                    "n": len(graph),
                    "crashed_pid": pid,
                    "degree": graph.degree(pid),
                    "post_crash_msgs": len(sends),
                    "last_msg_lag": (last - crash_plan.crash_time(pid)) if last is not None else None,
                    "msgs_in_extension": len(sends) - counts_at_horizon[pid],
                }
            )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e5")
    print_experiment("E5 — Quiescence toward crashed processes", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
