"""E7 — The daemon application: stabilization despite crashes.

Claim (Sections 1 and 8): because the daemon is wait-free, every correct
process of a hosted self-stabilizing protocol executes infinitely many
steps, so the protocol converges from arbitrary corruption even when
processes crash — and each pre-convergence ◇WX mistake costs at worst one
more transient fault.  A crash-oblivious daemon (Choy-Singh) loses this:
once a crash starves a correct process, corruption parked at that process
is never repaired.

Scenarios:

* **token-ring** — Dijkstra's K-state ring under transient-fault bursts
  (crash-free; the ring itself cannot survive member loss);
* **coloring** — greedy recoloring from the all-collisions state, with
  crashes and fault bursts, scheduled by Algorithm 1 vs. the baseline;
* **matching** — Hsu-Huang maximal matching, plus the crash-aware widow
  rule driven by the run's ◇P₁ modules (library extension).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import ChoySinghDiner
from repro.core import DistributedDaemon, null_detector, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams
from repro.stabilization import (
    DijkstraTokenRing,
    GreedyRecoloring,
    MaximalMatching,
    TransientFaultPlan,
)

COLUMNS = (
    "scenario",
    "daemon",
    "n",
    "crashes",
    "fault_bursts",
    "sharing_violations",
    "converged",
    "convergence_time",
)

CLAIM = (
    "Sections 1/8: hosted self-stabilizing protocols converge under the "
    "wait-free daemon despite crashes and transient faults; not under the "
    "crash-oblivious baseline."
)


def _daemon_for(kind: str, graph, protocol, seed: int, crash_plan: Optional[CrashPlan]):
    if kind == "wait-free":
        return DistributedDaemon(
            graph,
            protocol,
            seed=seed,
            detector=scripted_detector(convergence_time=20.0, random_mistakes=True),
            crash_plan=crash_plan,
        )
    if kind == "crash-oblivious":
        return DistributedDaemon(
            graph,
            protocol,
            seed=seed,
            detector=null_detector(),
            diner_factory=ChoySinghDiner,
            crash_plan=crash_plan,
        )
    raise ValueError(f"unknown daemon kind {kind!r}")


def run_token_ring(*, n: int = 7, horizon: float = 400.0, seed: int = 7) -> Dict[str, object]:
    """Token ring under two fault bursts, crash-free."""
    protocol = DijkstraTokenRing(n, initial=[(3 * i) % (n + 1) for i in range(n)])
    daemon = _daemon_for("wait-free", protocol.graph, protocol, seed, None)
    faults = TransientFaultPlan.random(
        daemon, burst_times=(horizon * 0.3, horizon * 0.55), victims_per_burst=2
    )
    faults.apply(daemon)
    daemon.run(until=horizon)
    return {
        "scenario": "token-ring",
        "daemon": "wait-free",
        "n": n,
        "crashes": 0,
        "fault_bursts": len(faults.bursts),
        "sharing_violations": daemon.sharing_violations,
        "converged": "yes" if daemon.converged() else "NO",
        "convergence_time": daemon.convergence_time(),
    }


def run_coloring(
    *,
    daemon_kind: str,
    rows_cols: tuple = (3, 4),
    crash_count: int = 2,
    horizon: float = 400.0,
    seed: int = 7,
) -> Dict[str, object]:
    """Greedy recoloring from all-zero (every edge collides), with crashes.

    The decisive transient fault is *targeted*: after the crashes, a live
    neighbor of a crashed process is corrupted to collide with another of
    its own live neighbors.  Only that neighbor can repair the collision —
    which the wait-free daemon lets it do, and the crash-oblivious
    baseline (where neighbors of crashed diners starve) does not.
    """
    graph = topologies.grid(*rows_cols)
    protocol = GreedyRecoloring(graph)
    crash_plan = CrashPlan.random(
        graph.nodes, crash_count, (horizon * 0.05, horizon * 0.25),
        RandomStreams(seed),
    )
    daemon = _daemon_for(daemon_kind, graph, protocol, seed, crash_plan)

    def targeted_fault() -> None:
        live = set(daemon.live_pids())
        for crashed_pid in crash_plan.faulty:
            for victim in graph.neighbors(crashed_pid):
                if victim not in live:
                    continue
                live_peers = [p for p in graph.neighbors(victim) if p in live]
                if live_peers:
                    daemon.corrupt_register(victim, protocol.read(live_peers[0]))
                    return

    burst_time = crash_plan.last_crash_time + horizon * 0.25
    daemon.table.sim.schedule_at(burst_time, targeted_fault, label="targeted coloring fault")
    daemon.run(until=horizon)
    return {
        "scenario": "coloring",
        "daemon": daemon_kind,
        "n": len(graph),
        "crashes": crash_count,
        "fault_bursts": 1,
        "sharing_violations": daemon.sharing_violations,
        "converged": "yes" if daemon.converged() else "NO",
        "convergence_time": daemon.convergence_time(),
    }


def run_matching(
    *,
    crash_count: int = 0,
    crash_aware: bool = False,
    n: int = 10,
    horizon: float = 400.0,
    seed: int = 7,
) -> Dict[str, object]:
    """Hsu-Huang matching; optionally with the ◇P₁-driven widow rule."""
    graph = topologies.random_graph(n, 0.35, seed=seed)
    crash_plan = CrashPlan.random(
        graph.nodes, crash_count, (horizon * 0.05, horizon * 0.2),
        RandomStreams(seed + 1),
    )

    daemon_box: List[DistributedDaemon] = []

    def suspector(pid):
        # Backed by the run's live ◇P₁ modules, once the daemon exists.
        if not daemon_box:
            return frozenset()
        return daemon_box[0].table.detector.module_for(pid).suspected_neighbors()

    protocol = MaximalMatching(graph, suspector=suspector if crash_aware else None)
    daemon = _daemon_for("wait-free", graph, protocol, seed, crash_plan)
    daemon_box.append(daemon)
    daemon.run(until=horizon)
    label = "matching+widow" if crash_aware else "matching"
    return {
        "scenario": label,
        "daemon": "wait-free",
        "n": n,
        "crashes": crash_count,
        "fault_bursts": 0,
        "sharing_violations": daemon.sharing_violations,
        "converged": "yes" if daemon.converged() else "NO",
        "convergence_time": daemon.convergence_time(),
    }


SCALING_COLUMNS = (
    "n",
    "initial_tokens",
    "steps_to_converge",
    "convergence_time",
    "steps_per_n",
)


@register_scenario(
    "e7b",
    title="E7b — Token-ring stabilization cost vs. ring size",
    claim="Dijkstra: O(n²) activations from arbitrary corruption; steps/n grows with n.",
    columns=SCALING_COLUMNS,
    group_by=("n",),
    experiment="e7",
    spec=ScenarioSpec(
        topology=("ring",),
        detector="scripted",
        crashes="none",
        latency="zero",
        workload="protocol-driven",
        horizon=1500.0,
        seeds=(7,),
    ),
)
def run_token_ring_scaling(
    *,
    sizes=(5, 9, 13),
    seed: int = 7,
    horizon: float = 1500.0,
) -> List[Dict[str, object]]:
    """Convergence cost of the K-state ring vs. size, under the daemon.

    Dijkstra's analysis bounds stabilization at O(n²) process activations;
    the shape to see is steps-to-converge growing superlinearly while
    steps/n grows roughly linearly.  The initial state is maximally
    scrambled (counters ``(3i) mod K``, many spurious tokens).
    """
    from repro.trace.events import ProtocolStep

    rows: List[Dict[str, object]] = []
    for n in sizes:
        initial = [(3 * i) % (n + 1) for i in range(n)]
        protocol = DijkstraTokenRing(n, initial=initial)
        initial_tokens = len(protocol.token_holders())
        daemon = _daemon_for("wait-free", protocol.graph, protocol, seed, None)
        daemon.run(until=horizon)
        converged_at = daemon.convergence_time()
        if converged_at is None:
            steps = None
        else:
            steps = sum(
                1
                for step in daemon.table.trace.of_type(ProtocolStep)
                if step.time <= converged_at
            )
        rows.append(
            {
                "n": n,
                "initial_tokens": initial_tokens,
                "steps_to_converge": steps,
                "convergence_time": converged_at,
                "steps_per_n": (steps / n) if steps is not None else None,
            }
        )
    return rows


@register_scenario(
    "e7",
    title="E7 — Wait-free daemons for self-stabilization",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("scenario", "daemon"),
    spec=ScenarioSpec(
        topology=("ring", "grid", "random"),
        detector="scripted vs. null (baseline)",
        crashes="per-scenario",
        latency="zero",
        workload="protocol-driven",
        horizon=400.0,
        seeds=(7,),
    ),
)
def run_daemon_suite(*, seed: int = 7) -> List[Dict[str, object]]:
    return [
        run_token_ring(seed=seed),
        run_coloring(daemon_kind="wait-free", seed=seed),
        run_coloring(daemon_kind="crash-oblivious", seed=seed),
        run_matching(crash_count=0, crash_aware=False, seed=seed),
        run_matching(crash_count=2, crash_aware=True, seed=seed),
    ]


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e7")
    print_experiment("E7 — Wait-free daemons for self-stabilization", CLAIM, rows, COLUMNS)
    scaling = run_scenario_rows("e7b")
    print_experiment(
        "E7b — Token-ring stabilization cost vs. ring size",
        "Dijkstra: O(n²) activations from arbitrary corruption; steps/n grows with n.",
        scaling,
        SCALING_COLUMNS,
    )
    return rows


if __name__ == "__main__":
    main()
