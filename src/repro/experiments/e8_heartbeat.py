"""E8 — End-to-end ◇P₁ implementability and scalability.

Claim (Sections 1, 2, 8): ◇P is "implementable in many realistic models
of partial synchrony", so the whole stack — heartbeat detector under a
GST network, Algorithm 1 on top — delivers the paper's guarantees with no
oracle scripting.  The run before GST is genuinely hostile: message
delays of up to ``pre_gst_max`` cause real false suspicions, which the
adaptive timeouts retire after finitely many mistakes.

Two sweeps:

* **GST sweep** — later stabilization ⇒ more detector mistakes and more
  (but always finitely many) exclusion violations; wait-freedom and the
  post-suffix overtaking bound hold at every GST.
* **scale sweep** — rings of growing size under the same GST: throughput
  grows with n (dining admits parallel non-adjacent meals) and response
  time stays flat — the locality the paper credits ◇P₁'s scope
  restriction for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import AlwaysHungry, DiningTable, heartbeat_detector
from repro.experiments.common import print_experiment, summarize
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.latency import PartialSynchronyLatency
from repro.sim.rng import RandomStreams

COLUMNS = (
    "sweep",
    "n",
    "gst",
    "false_suspicions",
    "violations",
    "violations_late",
    "starving",
    "max_overtaking_late",
    "mean_response",
    "throughput",
)

CLAIM = (
    "Sections 1/2/8: a heartbeat ◇P₁ under GST partial synchrony yields the "
    "same wait-free / ◇WX / ◇2-BW guarantees end-to-end."
)


def _run_one(
    *,
    sweep: str,
    n: int,
    gst: float,
    horizon: float,
    crash_count: int,
    seed: int,
) -> Dict[str, object]:
    graph = topologies.ring(n)
    latency = PartialSynchronyLatency(
        gst=gst, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
    )
    crash_plan = CrashPlan.random(
        graph.nodes, crash_count, (gst * 0.2 + 1.0, gst + 20.0), RandomStreams(seed)
    )
    table = DiningTable(
        graph,
        seed=seed,
        latency=latency,
        detector=heartbeat_detector(interval=1.0, initial_timeout=2.0, timeout_increment=1.0),
        crash_plan=crash_plan,
        workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
    )
    table.run(until=horizon)
    # The suffix cutoff: convergence is not announced by a real detector, so
    # use a generous post-GST settling margin.
    late = gst + (horizon - gst) * 0.5
    response = summarize(table.response_times())
    return {
        "sweep": sweep,
        "n": n,
        "gst": gst,
        "false_suspicions": table.detector.total_false_retractions(),
        "violations": len(table.violations()),
        "violations_late": len(table.violations_after(late)),
        "starving": len(table.starving_correct(patience=(horizon - late) * 0.8)),
        "max_overtaking_late": table.max_overtaking(after=late),
        "mean_response": response["mean"],
        "throughput": table.throughput(),
    }


def run_gst_sweep(
    *,
    n: int = 8,
    gsts: Sequence[float] = (20.0, 60.0, 120.0),
    horizon: float = 600.0,
    crash_count: int = 2,
    seed: int = 8,
) -> List[Dict[str, object]]:
    return [
        _run_one(sweep="gst", n=n, gst=gst, horizon=horizon, crash_count=crash_count, seed=seed)
        for gst in gsts
    ]


def run_scale_sweep(
    *,
    sizes: Sequence[int] = (6, 12, 24),
    gst: float = 40.0,
    horizon: float = 400.0,
    seed: int = 8,
) -> List[Dict[str, object]]:
    return [
        _run_one(sweep="scale", n=n, gst=gst, horizon=horizon, crash_count=max(1, n // 6), seed=seed)
        for n in sizes
    ]


@register_scenario(
    "e8",
    title="E8 — Heartbeat ◇P₁ end-to-end + scalability",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("sweep", "n", "gst"),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="heartbeat",
        crashes="2 (gst sweep) / n/6 (scale sweep)",
        latency="partial-synchrony",
        workload="always-hungry",
        horizon=600.0,
        seeds=(8,),
    ),
)
def run_heartbeat_suite(*, seed: int = 8) -> List[Dict[str, object]]:
    """The full E8 table: the GST sweep followed by the scale sweep."""
    return run_gst_sweep(seed=seed) + run_scale_sweep(seed=seed)


QOS_COLUMNS = (
    "initial_timeout",
    "n",
    "gst",
    "mean_detection",
    "worst_detection",
    "mistakes",
    "mistake_rate",
    "mean_mistake_duration",
)


@register_scenario(
    "e8b",
    title="E8b — Heartbeat detector QoS vs. initial timeout",
    claim="Chen-Toueg trade-off: smaller timeouts detect faster but mistake more pre-GST.",
    columns=QOS_COLUMNS,
    group_by=("initial_timeout",),
    experiment="e8",
    spec=ScenarioSpec(
        topology=("ring",),
        detector="heartbeat",
        crashes="2 random",
        latency="partial-synchrony",
        workload="always-hungry",
        horizon=400.0,
        seeds=(8,),
    ),
)
def run_qos_sweep(
    *,
    timeouts: Sequence[float] = (1.5, 3.0, 6.0),
    n: int = 8,
    gst: float = 40.0,
    horizon: float = 400.0,
    seed: int = 8,
) -> List[Dict[str, object]]:
    """Detector quality vs. initial timeout (Chen-Toueg QoS metrics).

    The fundamental trade-off: small timeouts detect crashes fast but
    mistake often before GST; large timeouts are clean but slow.  The
    dining guarantees hold at *every* point of the trade-off — only the
    pre-convergence violation budget and the response tail move.
    """
    from repro.detectors.qos import detector_qos

    rows: List[Dict[str, object]] = []
    graph = topologies.ring(n)
    for timeout in timeouts:
        crash_plan = CrashPlan.random(
            graph.nodes, 2, (gst * 0.5, gst + 20.0), RandomStreams(seed)
        )
        table = DiningTable(
            graph,
            seed=seed,
            latency=PartialSynchronyLatency(
                gst=gst, min_delay=0.1, pre_gst_max=8.0, post_gst_max=1.0
            ),
            detector=heartbeat_detector(
                interval=1.0, initial_timeout=timeout, timeout_increment=1.0
            ),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=1.0, think_time=0.05),
        )
        table.run(until=horizon)
        report = detector_qos(table.trace, graph, crash_plan, horizon=horizon)
        rows.append(
            {
                "initial_timeout": timeout,
                "n": n,
                "gst": gst,
                "mean_detection": report.mean_detection_time,
                "worst_detection": report.worst_detection_time,
                "mistakes": report.mistake_count,
                "mistake_rate": report.mistake_rate,
                "mean_mistake_duration": report.mean_mistake_duration,
            }
        )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e8")
    print_experiment("E8 — Heartbeat ◇P₁ end-to-end + scalability", CLAIM, rows, COLUMNS)
    qos = run_scenario_rows("e8b")
    print_experiment(
        "E8b — Heartbeat detector QoS vs. initial timeout",
        "Chen-Toueg trade-off: smaller timeouts detect faster but mistake more pre-GST.",
        qos,
        QOS_COLUMNS,
    )
    return rows


if __name__ == "__main__":
    main()
