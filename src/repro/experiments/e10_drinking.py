"""E10 — Drinking philosophers on the dining substrate (extension).

Dining philosophers is the paper's vehicle, but the construction — forks
for safety, an asynchronous doorway for fairness, ◇P₁ suspicion as the
crash escape hatch — lifts directly to Chandy & Misra's *drinking*
philosophers, where each session demands only a subset of the shared
bottles.  This experiment validates the lift:

* the paper's guarantees survive: wait-freedom under crashes, and a clean
  suffix for *bottle-scoped* eventual weak exclusion (two neighbors drink
  together only if their sessions' demands are disjoint);
* the payoff appears: on a clique, dining's exclusion caps concurrency at
  1, while drinking's time-averaged concurrency grows as demands thin
  out — the crossover the extension exists for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import scripted_detector
from repro.drinking import (
    RandomThirst,
    adjacent_simultaneous_drinks,
    concurrency_profile,
    drinking_table,
    drinking_violations,
    drinking_violations_after,
)
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

COLUMNS = (
    "demand",
    "n",
    "drinks",
    "mean_concurrency",
    "peak_concurrency",
    "legal_overlaps",
    "scoped_violations",
    "late_violations",
    "starving",
)

CLAIM = (
    "Extension: per-session bottle demands keep the paper's guarantees "
    "(wait-free, eventually clean scoped exclusion) while concurrency "
    "grows as demands thin out; demand = 1.0 is exactly dining."
)


@register_scenario(
    "e10",
    title="E10 — Drinking philosophers (extension)",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("demand",),
    spec=ScenarioSpec(
        topology=("clique",),
        detector="scripted",
        crashes="1 random",
        latency="zero",
        workload="random-thirst (demand sweep)",
        horizon=300.0,
        seeds=(10,),
    ),
)
def run_drinking(
    *,
    demands: Sequence[float] = (1.0, 0.6, 0.3),
    n: int = 8,
    horizon: float = 300.0,
    convergence: float = 20.0,
    seed: int = 10,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    graph = topologies.clique(n)
    for demand in demands:
        crash_plan = CrashPlan.random(
            graph.nodes, 1, (horizon * 0.1, horizon * 0.2), RandomStreams(seed)
        )
        table = drinking_table(
            graph,
            seed=seed,
            workload=RandomThirst(demand=demand, drink_time=1.0),
            detector=scripted_detector(
                convergence_time=convergence, random_mistakes=True
            ),
            crash_plan=crash_plan,
        )
        table.run(until=horizon)
        cutoff = max(convergence, crash_plan.last_crash_time + 1.0) + 1.0
        profile = concurrency_profile(table.trace, graph, horizon=horizon)
        rows.append(
            {
                "demand": demand,
                "n": n,
                "drinks": sum(table.eat_counts().values()),
                "mean_concurrency": profile["mean"],
                "peak_concurrency": profile["peak"],
                "legal_overlaps": adjacent_simultaneous_drinks(
                    table.trace, graph, horizon=horizon
                ),
                "scoped_violations": len(
                    drinking_violations(table.trace, graph, horizon=horizon)
                ),
                "late_violations": len(
                    drinking_violations_after(table.trace, graph, cutoff, horizon=horizon)
                ),
                "starving": len(table.starving_correct(patience=horizon * 0.4)),
            }
        )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e10")
    print_experiment("E10 — Drinking philosophers (extension)", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
