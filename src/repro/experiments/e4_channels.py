"""E4 — Bounded channel capacity (Section 7).

Claim: at any instant, at most **4** dining-layer messages are in transit
between each pair of neighbors — the unique fork, the unique token, and
at most one pending ping-or-ack in each direction.

Method: long, high-contention runs across topologies with the online
:class:`~repro.checks.ChannelBoundChecker` armed at bound 4 (a
fifth concurrent message raises immediately).  We report the observed
per-edge maximum and how many edges ever reached it.  Detector traffic is
excluded by layer, exactly as the paper's accounting scopes the bound to
the algorithm's own messages.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.latency import LogNormalLatency
from repro.sim.rng import RandomStreams

COLUMNS = (
    "topology",
    "n",
    "edges",
    "max_in_transit",
    "edges_at_max",
    "bound_respected",
)

CLAIM = "Section 7: at most 4 dining-layer messages in transit per edge, ever."


@register_scenario(
    "e4",
    title="E4 — Bounded-capacity channels",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("topology",),
    spec=ScenarioSpec(
        topology=("ring", "clique", "star", "grid", "random"),
        detector="scripted",
        crashes="random 25% of n",
        latency="lognormal(median=1, sigma=0.8)",
        workload="always-hungry",
        horizon=400.0,
        seeds=(3,),
    ),
)
def run_channels(
    *,
    topology_names: Sequence[str] = ("ring", "clique", "star", "grid", "random"),
    n: int = 12,
    horizon: float = 400.0,
    crash_fraction: float = 0.25,
    seed: int = 3,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for topology_name in topology_names:
        graph = topologies.by_name(topology_name, n, seed=seed)
        crash_plan = CrashPlan.random(
            graph.nodes,
            int(len(graph) * crash_fraction),
            (horizon * 0.1, horizon * 0.4),
            RandomStreams(seed),
        )
        table = DiningTable(
            graph,
            seed=seed,
            detector=scripted_detector(convergence_time=40.0, random_mistakes=True),
            crash_plan=crash_plan,
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
            latency=LogNormalLatency(median=1.0, sigma=0.8, ceiling=20.0),
            channel_bound=4,  # the checker raises on a 5th in-transit message
        )
        table.run(until=horizon)
        peak = table.occupancy.max_occupancy
        at_max = sum(1 for value in table.occupancy.peak.values() if value == peak)
        rows.append(
            {
                "topology": topology_name,
                "n": len(graph),
                "edges": len(graph.edges),
                "max_in_transit": peak,
                "edges_at_max": at_max,
                "bound_respected": "yes" if peak <= 4 else "NO",
            }
        )
    return rows


EFFICIENCY_COLUMNS = (
    "topology",
    "n",
    "delta",
    "dining_messages",
    "meals",
    "msgs_per_meal",
)


@register_scenario(
    "e4b",
    title="E4b — Message efficiency (messages per meal vs. degree)",
    claim="Constant messages per neighbor per session: msgs/meal tracks δ.",
    columns=EFFICIENCY_COLUMNS,
    group_by=("topology",),
    experiment="e4",
    spec=ScenarioSpec(
        topology=("ring", "grid", "star", "clique"),
        detector="scripted",
        crashes="none",
        latency="zero",
        workload="always-hungry",
        horizon=300.0,
        seeds=(3,),
    ),
)
def run_message_efficiency(
    *,
    topology_names: Sequence[str] = ("ring", "grid", "star", "clique"),
    n: int = 12,
    horizon: float = 300.0,
    seed: int = 3,
) -> List[Dict[str, object]]:
    """Messages per meal vs. degree.

    Each hungry session exchanges at most a constant number of messages
    per neighbor (one ping-ack and one request-fork round trip), so
    messages-per-meal tracks δ — constant on the ring, linear in n on the
    clique.  This is the practical reading of the Section 7 accounting.
    """
    from repro.core import AlwaysHungry

    rows: List[Dict[str, object]] = []
    for topology_name in topology_names:
        graph = topologies.by_name(topology_name, n, seed=seed)
        table = DiningTable(
            graph,
            seed=seed,
            detector=scripted_detector(),
            workload=AlwaysHungry(eat_time=0.5, think_time=0.01),
        )
        table.run(until=horizon)
        meals = sum(table.eat_counts().values())
        messages = table.message_stats.by_layer.get("dining", 0)
        rows.append(
            {
                "topology": topology_name,
                "n": len(graph),
                "delta": graph.max_degree,
                "dining_messages": messages,
                "meals": meals,
                "msgs_per_meal": messages / meals if meals else None,
            }
        )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e4")
    print_experiment("E4 — Bounded-capacity channels", CLAIM, rows, COLUMNS)
    efficiency = run_scenario_rows("e4b")
    print_experiment(
        "E4b — Message efficiency (messages per meal vs. degree)",
        "Constant messages per neighbor per session: msgs/meal tracks δ.",
        efficiency,
        EFFICIENCY_COLUMNS,
    )
    return rows


if __name__ == "__main__":
    main()
