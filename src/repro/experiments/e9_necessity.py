"""E9 — Necessity probes: break one ◇P₁ property, watch a guarantee fall.

Section 8 composes this paper's sufficiency result with the parallel
necessity result [21]: ◇P is the weakest detector for wait-free ◇k-BW
daemons.  Necessity itself is a reduction, not a program, but its
operational footprint is checkable: run the *same* Algorithm 1 over
oracles that violate exactly one ◇P₁ property, and the matching
guarantee — and only that guarantee — collapses.

| oracle | broken property | predicted collapse |
|---|---|---|
| ◇P₁ (control) | none | none |
| incomplete | local strong completeness | wait-freedom (a blind observer waits on a dead neighbor forever) |
| inaccurate | local eventual strong accuracy | ◇WX (recurring false suspicion authorizes forkless meals forever) |

The inaccurate oracle's violations are *recurring*: doubling the horizon
roughly doubles the violation count, i.e. no finite suffix is clean.
Wait-freedom survives under it — suspicion only ever unblocks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import AlwaysHungry, DiningTable, scripted_detector
from repro.core.table import inaccurate_detector, incomplete_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan

COLUMNS = (
    "oracle",
    "broken_property",
    "horizon",
    "starving_correct",
    "violations",
    "late_violations",
    "wait_free",
    "eventual_wx",
)

CLAIM = (
    "Section 8 / [21]: strip one ◇P₁ property from the oracle and the "
    "matching guarantee of Algorithm 1 collapses — completeness ↔ "
    "wait-freedom, eventual accuracy ↔ eventual weak exclusion."
)


def _run(
    oracle: str,
    *,
    horizon: float,
    seed: int,
) -> Dict[str, object]:
    graph = topologies.ring(6)
    crash_plan = CrashPlan.scripted({2: 20.0})
    broken = "none"
    workload = AlwaysHungry(eat_time=1.0, think_time=0.01)
    if oracle == "control":
        detector = scripted_detector(convergence_time=10.0, random_mistakes=True)
    elif oracle == "incomplete":
        # Both neighbors of the crashed diner are blind to its crash.
        detector = incomplete_detector(blind_pairs=[(1, 2), (3, 2)])
        broken = "completeness"
    elif oracle == "inaccurate":
        # 4 and 5 (both correct) suspect each other in episodes forever.
        # The adversarial schedule isolates that edge: only 4 and 5 are
        # ever hungry, so every episode lets both eat simultaneously.
        # (Under full ring contention the rotation happens to serialize
        # them — a lucky schedule, not a guarantee.)
        detector = inaccurate_detector(
            recurring_pairs=[(4, 5), (5, 4)], period=12.0, episode=6.0
        )
        broken = "eventual accuracy"
        from repro.core import ScriptedWorkload

        sessions = int(horizon)
        workload = ScriptedWorkload(
            {4: [0.01] * sessions, 5: [0.01] * sessions}, default_eat=2.0
        )
    else:
        raise ValueError(oracle)

    table = DiningTable(
        graph,
        seed=seed,
        detector=detector,
        crash_plan=crash_plan,
        workload=workload,
    )
    table.run(until=horizon)
    starving = table.starving_correct(patience=horizon * 0.4)
    violations = table.violations()
    late = table.violations_after(horizon * 0.5)
    return {
        "oracle": oracle,
        "broken_property": broken,
        "horizon": horizon,
        "starving_correct": len(starving),
        "violations": len(violations),
        "late_violations": len(late),
        "wait_free": "yes" if not starving else "NO",
        "eventual_wx": "yes" if not late else "NO",
    }


@register_scenario(
    "e9",
    title="E9 — Necessity probes (which property buys which guarantee)",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("oracle", "horizon"),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="scripted / incomplete / inaccurate",
        crashes="scripted (pid 2 at t=20)",
        latency="zero",
        workload="always-hungry + scripted adversary",
        horizon=600.0,
        seeds=(9,),
    ),
)
def run_necessity(
    *,
    horizons=(300.0, 600.0),
    seed: int = 9,
) -> List[Dict[str, object]]:
    rows = []
    for oracle in ("control", "incomplete", "inaccurate"):
        for horizon in horizons:
            rows.append(_run(oracle, horizon=horizon, seed=seed))
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e9")
    print_experiment("E9 — Necessity probes (which property buys which guarantee)", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
