"""Run every experiment and print the full results suite.

Usage: ``python -m repro.experiments.run_all``
"""

from __future__ import annotations

from repro.experiments import ALL_EXPERIMENTS


def main() -> None:
    for module in ALL_EXPERIMENTS:
        module.main()


if __name__ == "__main__":
    main()
