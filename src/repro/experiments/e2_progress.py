"""E2 — Wait-free progress (Theorem 2) vs. the crash-oblivious baseline.

Claim: with ◇P₁, every correct hungry process eventually eats, no matter
how many neighbors crash.  Without a detector (Choy & Singh's original
asynchronous doorway), the first crash already starves correct neighbors:
they wait forever for an ack or a fork from the dead process.  The two
phase-specific ablations show that *both* suspicion substitutions are
required — disabling either one reintroduces starvation.

Method: ring of ``n`` always-hungry diners; sweep crash count
f ∈ {0, …, n−1} (arbitrarily many crashes, as the theorem allows).  For
each algorithm, report the number of starving correct processes at the
horizon (hungry longer than a patience threshold far above the wait-free
algorithm's worst observed response time) and the minimum meal count among
correct diners.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import (
    NoDoorwaySuspicionDiner,
    NoForkSuspicionDiner,
    choy_singh_table,
    edge_reversal_table,
)
from repro.core import DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

COLUMNS = (
    "algorithm",
    "n",
    "crashes",
    "starving_correct",
    "min_meals_correct",
    "wait_free",
)

CLAIM = (
    "Theorem 2 (wait-freedom): Algorithm 1 starves nobody at any crash count; "
    "the oracle-free baseline and both suspicion ablations starve once crashes occur."
)

ALGORITHMS = (
    "algorithm-1",
    "choy-singh",
    "edge-reversal",
    "no-doorway-suspicion",
    "no-fork-suspicion",
)


def _build_table(
    algorithm: str,
    graph,
    seed: int,
    crash_plan: CrashPlan,
    convergence_time: float,
):
    detector = scripted_detector(
        convergence_time=convergence_time, random_mistakes=convergence_time > 0
    )
    if algorithm == "algorithm-1":
        return DiningTable(graph, seed=seed, detector=detector, crash_plan=crash_plan)
    if algorithm == "choy-singh":
        return choy_singh_table(graph, seed=seed, crash_plan=crash_plan)
    if algorithm == "edge-reversal":
        return edge_reversal_table(graph, seed=seed, crash_plan=crash_plan)
    if algorithm == "no-doorway-suspicion":
        return DiningTable(
            graph,
            seed=seed,
            detector=detector,
            crash_plan=crash_plan,
            diner_factory=NoDoorwaySuspicionDiner,
        )
    if algorithm == "no-fork-suspicion":
        return DiningTable(
            graph,
            seed=seed,
            detector=detector,
            crash_plan=crash_plan,
            diner_factory=NoForkSuspicionDiner,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


@register_scenario(
    "e2",
    title="E2 — Wait-free progress under crash faults",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("algorithm", "crashes"),
    spec=ScenarioSpec(
        topology=("ring",),
        detector="scripted",
        crashes="sweep f in {0, 1, n/2, n-1}",
        latency="zero",
        workload="always-hungry",
        horizon=500.0,
        seeds=(2,),
    ),
)
def run_progress(
    *,
    n: int = 8,
    crash_counts: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = ALGORITHMS,
    horizon: float = 500.0,
    patience: float = 200.0,
    convergence_time: float = 30.0,
    seed: int = 2,
) -> List[Dict[str, object]]:
    """Run the progress sweep and return one row per (algorithm, f)."""
    if crash_counts is None:
        crash_counts = (0, 1, n // 2, n - 1)
    rows: List[Dict[str, object]] = []
    graph = topologies.ring(n)
    for f in crash_counts:
        crash_plan = CrashPlan.random(
            graph.nodes, f, (horizon * 0.05, horizon * 0.2), RandomStreams(seed + f)
        )
        for algorithm in algorithms:
            table = _build_table(algorithm, graph, seed, crash_plan, convergence_time)
            table.run(until=horizon)
            starving = table.starving_correct(patience=patience)
            correct = table.correct_pids
            meals = table.eat_counts()
            min_meals = min((meals.get(pid, 0) for pid in correct), default=0)
            rows.append(
                {
                    "algorithm": algorithm,
                    "n": n,
                    "crashes": f,
                    "starving_correct": len(starving),
                    "min_meals_correct": min_meals,
                    "wait_free": "yes" if not starving else "NO",
                }
            )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e2")
    print_experiment("E2 — Wait-free progress under crash faults", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
