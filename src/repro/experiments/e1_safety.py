"""E1 — Safety: eventual weak exclusion (Theorem 1).

Claim: every run has at most finitely many exclusion violations, all of
which end by the time ◇P₁ converges; after convergence, no two live
neighbors ever eat simultaneously.

Method: sweep topologies and detector convergence times T_c.  Each run
uses a randomly scripted mistake history (false positives before T_c) and
a random crash plan.  We report the total violation count, the end of the
last violation, and the number of violations touching the suffix after
``max(T_c, last crash detection)`` — Theorem 1 predicts the last column
is identically zero, and that the violation count grows with T_c (a
longer mistake window means more opportunities to misschedule).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import DiningTable, scripted_detector
from repro.experiments.common import print_experiment
from repro.graphs import topologies
from repro.scenarios import ScenarioSpec, register_scenario, run_scenario_rows
from repro.sim.crash import CrashPlan
from repro.sim.rng import RandomStreams

COLUMNS = (
    "topology",
    "n",
    "T_c",
    "crashes",
    "violations",
    "last_violation_end",
    "violations_after_cutoff",
)

CLAIM = "Theorem 1 (eventual weak exclusion): zero violations after detector convergence."


@register_scenario(
    "e1",
    title="E1 — Safety under eventual weak exclusion",
    claim=CLAIM,
    columns=COLUMNS,
    group_by=("topology", "T_c"),
    spec=ScenarioSpec(
        topology=("ring", "clique", "grid", "random"),
        detector="scripted",
        crashes="random 25% of n",
        latency="zero",
        workload="always-hungry",
        horizon=400.0,
        seeds=(1,),
    ),
)
def run_safety(
    *,
    topology_names: Sequence[str] = ("ring", "clique", "grid", "random"),
    n: int = 12,
    convergence_times: Sequence[float] = (0.0, 25.0, 75.0),
    horizon: float = 400.0,
    crash_fraction: float = 0.25,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Run the safety sweep and return one row per configuration."""
    rows: List[Dict[str, object]] = []
    detection_delay = 1.0
    for topology_name in topology_names:
        graph = topologies.by_name(topology_name, n, seed=seed)
        for t_c in convergence_times:
            crash_count = int(len(graph) * crash_fraction)
            crash_plan = CrashPlan.random(
                graph.nodes,
                crash_count,
                (horizon * 0.1, horizon * 0.5),
                RandomStreams(seed + int(t_c)),
            )
            table = DiningTable(
                graph,
                seed=seed,
                detector=scripted_detector(
                    convergence_time=t_c,
                    detection_delay=detection_delay,
                    random_mistakes=t_c > 0,
                    mistakes_per_edge=2.0,
                ),
                crash_plan=crash_plan,
            )
            table.run(until=horizon)
            violations = table.violations()
            # Settling margin: one max eating duration past convergence and
            # crash detection (a meal begun under a final mistake may still
            # be in progress at the convergence instant).
            eat_time = 1.0  # AlwaysHungry default used by DiningTable
            cutoff = max(t_c, crash_plan.last_crash_time + detection_delay) + eat_time
            rows.append(
                {
                    "topology": topology_name,
                    "n": len(graph),
                    "T_c": t_c,
                    "crashes": crash_count,
                    "violations": len(violations),
                    "last_violation_end": max((v.end for v in violations), default=None),
                    "violations_after_cutoff": len(table.violations_after(cutoff)),
                }
            )
    return rows


def main() -> List[Dict[str, object]]:
    rows = run_scenario_rows("e1")
    print_experiment("E1 — Safety under eventual weak exclusion", CLAIM, rows, COLUMNS)
    return rows


if __name__ == "__main__":
    main()
