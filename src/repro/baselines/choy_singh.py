"""Baseline: Choy & Singh's asynchronous doorway algorithm (1995).

Algorithm 1 is built from this algorithm by (a) substituting ◇P₁ suspicion
for missing acks and forks, and (b) throttling acks to one per hungry
session.  The faithful original therefore differs from
:class:`~repro.core.diner.DinerActor` in exactly two ways:

* **no failure detector** — run it with
  :func:`~repro.core.table.null_detector` (the purely asynchronous
  system).  One crashed neighbor then blocks the doorway and/or a fork
  forever, and correct neighbors starve: the impossibility side of the
  paper's story [8], and the contrast for the E2 progress experiment.
* **no ack throttle** — a process outside the doorway grants every ping
  (the original ping-ack protocol), so a fast neighbor can overtake a slow
  hungry one finitely many but *unboundedly* many times; the paper's
  ``replied`` flag is what sharpens this to eventual 2-bounded waiting.

The class keeps the detector hook so the E3 *ablation* can run it with a
◇P₁ detector: that configuration isolates design decision 1 of DESIGN.md
(wait-free, but only finite — not 2-bounded — overtaking).
"""

from __future__ import annotations

from repro.core.diner import DinerActor
from repro.core.messages import Ack
from repro.core.table import DiningTable, null_detector
from repro.graphs.conflict import ConflictGraph, ProcessId


class ChoySinghDiner(DinerActor):
    """Algorithm 1 minus the per-session ack throttle.

    Combined with :func:`~repro.core.table.null_detector`, this is the
    original asynchronous doorway algorithm; combined with a ◇P₁ detector
    it is the no-throttle ablation of Algorithm 1.
    """

    def _on_ping(self, src: ProcessId) -> None:
        """Original Action 3: grant whenever outside the doorway."""
        link = self.links[src]
        if self.inside:
            link.deferred = True
        else:
            self.send(src, Ack(self.pid))
            # No ``replied`` bookkeeping: unlimited acks per hungry session.


def choy_singh_table(graph: ConflictGraph, **table_kwargs) -> DiningTable:
    """A DiningTable running the faithful (oracle-free) Choy-Singh baseline.

    Accepts the same keyword arguments as
    :class:`~repro.core.table.DiningTable` except ``diner_factory`` and
    ``detector``, which are fixed to the baseline's definition.
    """
    for forbidden in ("diner_factory", "detector"):
        if forbidden in table_kwargs:
            raise TypeError(f"choy_singh_table fixes {forbidden!r}; do not pass it")
    return DiningTable(
        graph,
        diner_factory=ChoySinghDiner,
        detector=null_detector(),
        **table_kwargs,
    )
