"""The classical-DME bake-off: the whole zoo under one verdict pipeline.

Every scheduler this repo can run — Algorithm 1 over ◇P₁ (the paper's),
Algorithm 1 over P, Choy–Singh, fork-priority, edge reversal, Lamport's
bakery, Ricart–Agrawala, and Lehmann–Rabin — is driven through the *same*
fault plans, the same strict check suite, and the same verdict pipeline,
on both the kernel and the live loopback substrates.  One comparative
table falls out: throughput, message complexity (count *and* bits under
the Section 7 accounting), fairness, and the per-property verdict map.

The table doubles as a regression oracle.  Each algorithm records an
:class:`~repro.checks.expectations.ExpectedStatuses` per cell regime —
partial maps where **FAIL is a correct answer**: Ricart–Agrawala is
*supposed* to fail progress when a neighbor crashes; the bakery is
*supposed* to blow the Section 7 bit budget under contention; the
paper's algorithm is supposed to do neither.  :func:`run_bakeoff` exits
green iff every cell matches its recorded map, so "the classical
baselines still fail in exactly the ways the paper says they do" is a
checked property of the repo, not prose.

Cell grid:

* regimes — ``clean`` (crash-free), ``crash`` (one state-triggered
  ``when="eating"`` crash of a max-degree victim), ``churn`` (one
  ``leave`` of a max-degree resident, kernel-only: membership verbs ride
  the epoched suite);
* topologies — default ``ring``, ``geometric``, ``scale_free``;
* substrates — the kernel judges eventual properties against explicit
  horizon-scaled windows; the live loopback host runs informationally
  (``judge=False``), pinning the safety half of each map (heartbeat
  convergence on a compressed wall clock would otherwise convict ◇P₁ of
  slowness the plan never granted it time to overcome).

``repro bakeoff`` is the CLI face; the ``dme_bakeoff`` scenario wraps
the same engine for the experiments runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.baselines.bakery import BakeryDiner
from repro.baselines.choy_singh import ChoySinghDiner
from repro.baselines.edge_reversal import EdgeReversalDiner
from repro.baselines.fork_priority import ForkPriorityDiner
from repro.baselines.lehmann_rabin import LehmannRabinDiner
from repro.baselines.ricart_agrawala import RicartAgrawalaDiner
from repro.checks.expectations import ExpectedStatuses, Mismatch, describe_mismatches
from repro.core.messages import ForkRequest, message_size_bits
from repro.core.table import null_detector, perfect_detector
from repro.detectors import NullDetector
from repro.errors import ConfigurationError
from repro.faults.engine import JudgeWindows, run_plan_kernel, run_plan_live
from repro.faults.plan import (
    CrashSpec,
    FaultPlan,
    FlapSpec,
    LatencySpec,
    MembershipSpec,
    WorkloadSpec,
)
from repro.graphs import topologies
from repro.graphs.coloring import greedy_coloring
from repro.obs.instrument import MessageBitsInstrument

#: Default cell grid.
TOPOLOGIES = ("ring", "geometric", "scale_free")
REGIMES = ("clean", "crash", "churn")
SUBSTRATES = ("kernel", "live")

#: The safety floor every algorithm in the zoo must clear, everywhere.
_SAFE = {"fork-uniqueness": "pass", "fifo": "pass", "wx-safety": "pass"}


# ----------------------------------------------------------------------
# The zoo
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmSpec:
    """One zoo entry: how to build it, and what verdicts it must earn.

    ``diner_factory`` is ``None`` for Algorithm 1 itself (the engines
    default to :class:`~repro.core.diner.DinerActor`).
    ``kernel_detector`` maps the plan to a kernel-table detector factory
    (``None`` = the engine's plan-scripted ◇P₁); ``live_detector`` is an
    :class:`~repro.net.host.AsyncHost` detector factory (``None`` = the
    real heartbeat ◇P₁).  ``expected`` maps cell keys — ``clean`` /
    ``crash`` / ``churn`` for kernel cells, ``live-clean`` /
    ``live-crash`` for live — to partial expected-status maps.
    """

    key: str
    title: str
    guarantees: str
    diner_factory: Optional[Callable] = None
    kernel_detector: Optional[Callable[[FaultPlan], object]] = None
    live_detector: Optional[Callable] = None
    expected: Mapping[str, ExpectedStatuses] = field(default_factory=dict)

    def expectation(self, cell_key: str) -> ExpectedStatuses:
        return self.expected.get(cell_key, ExpectedStatuses())


def _oblivious_detector(plan: FaultPlan):
    return null_detector()


def _expected(**regime_maps: Dict[str, str]) -> Dict[str, ExpectedStatuses]:
    return {key: ExpectedStatuses(statuses) for key, statuses in regime_maps.items()}


def _crash_aware_maps(*, overtaking: bool) -> Dict[str, ExpectedStatuses]:
    """Expectation set for the two detector-armed Algorithm 1 variants."""
    clean = {**_SAFE, "channel-bound": "pass", "progress": "pass"}
    if overtaking:
        clean["overtaking"] = "pass"
    return _expected(
        clean=clean,
        crash={**_SAFE, "channel-bound": "pass", "progress": "pass"},
        churn={**_SAFE, "edge-exclusion": "pass", "progress": "pass"},
        **{"live-clean": _SAFE, "live-crash": _SAFE},
    )


def _oblivious_maps(
    *, clean_progress: Optional[str] = "pass", churn_progress: Optional[str] = "fail"
) -> Dict[str, ExpectedStatuses]:
    """Expectation set for the six crash-oblivious classics.

    ``clean_progress=None`` leaves crash-free progress unpinned
    (Lehmann–Rabin: probabilistic, judged over seed ensembles in the
    oracle tests instead).  ``churn_progress=None`` leaves the churn
    cell's progress unpinned (fork-based schedulers: whether a leaver's
    neighborhood starves depends on where the shared forks sat at
    departure).
    """
    clean = dict(_SAFE)
    if clean_progress is not None:
        clean["progress"] = clean_progress
    churn = {**_SAFE, "edge-exclusion": "pass"}
    if churn_progress is not None:
        churn["progress"] = churn_progress
    return _expected(
        clean=clean,
        crash={**_SAFE, "progress": "fail"},
        churn=churn,
        **{"live-clean": _SAFE, "live-crash": _SAFE},
    )


ZOO: Dict[str, AlgorithmSpec] = {
    spec.key: spec
    for spec in (
        AlgorithmSpec(
            key="dsn",
            title="Algorithm 1 (◇P₁)",
            guarantees="◇WX safety, wait-free progress, eventual k-bounded fairness",
            expected=_crash_aware_maps(overtaking=True),
        ),
        AlgorithmSpec(
            key="perfect_dining",
            title="Algorithm 1 (P)",
            guarantees="perpetual WX from t=0; quantifies what the stronger oracle adds",
            kernel_detector=lambda plan: perfect_detector(
                detection_delay=_detection_delay(plan)
            ),
            expected=_crash_aware_maps(overtaking=True),
        ),
        AlgorithmSpec(
            key="choy_singh",
            title="Choy–Singh",
            guarantees="doorway fairness, crash-free progress; crash-oblivious",
            diner_factory=ChoySinghDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            # Inherits DinerActor's membership hooks, so a *leave* (unlike
            # a crash) releases its waiters: churn progress stays unpinned.
            expected=_oblivious_maps(churn_progress=None),
        ),
        AlgorithmSpec(
            key="fork_priority",
            title="Fork-priority",
            guarantees="safety only; unbounded overtaking starves under saturation",
            diner_factory=ForkPriorityDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            # Static priorities + always-hungry saturation: whether the
            # low-priority diner ever eats is a contention accident, so
            # crash-free progress stays unpinned alongside churn.
            expected=_oblivious_maps(clean_progress=None, churn_progress=None),
        ),
        AlgorithmSpec(
            key="edge_reversal",
            title="Edge reversal (SER)",
            guarantees="perpetual WX, zero request traffic; crash freezes the orientation",
            diner_factory=EdgeReversalDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            expected=_oblivious_maps(churn_progress=None),
        ),
        AlgorithmSpec(
            key="bakery",
            title="Lamport bakery",
            guarantees="FCFS in ticket order; unbounded tickets ⇒ unbounded bits",
            diner_factory=BakeryDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            expected=_oblivious_maps(),
        ),
        AlgorithmSpec(
            key="ricart_agrawala",
            title="Ricart–Agrawala",
            guarantees="timestamp-order fairness, 2 msgs/edge/session; starves on crash",
            diner_factory=RicartAgrawalaDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            expected=_oblivious_maps(),
        ),
        AlgorithmSpec(
            key="lehmann_rabin",
            title="Lehmann–Rabin",
            guarantees="symmetric, oracle-free; progress only with probability 1",
            diner_factory=LehmannRabinDiner,
            kernel_detector=_oblivious_detector,
            live_detector=NullDetector,
            expected=_oblivious_maps(clean_progress=None, churn_progress=None),
        ),
    )
}


# ----------------------------------------------------------------------
# Cell construction
# ----------------------------------------------------------------------
def _detection_delay(plan: FaultPlan) -> float:
    return min(1.0, 0.1 * plan.horizon)


def _max_degree_pid(graph) -> int:
    """The busiest process: crash/churn it and the blast radius is maximal."""
    return max(graph.nodes, key=lambda pid: (graph.degree(pid), -pid))


def bakeoff_windows(plan: FaultPlan) -> JudgeWindows:
    """Judgement windows scaled to the cell horizon.

    :meth:`JudgeWindows.for_plan`'s generous derivation can exceed a
    short bake-off horizon entirely (progress would never be judged), so
    cells bind fractions of the horizon instead: faults land by ``0.2 h``
    (see :func:`bakeoff_plans`), patience is ``0.7 h`` — above the
    post-fault recovery the crash-aware algorithms need, and far below
    the ``0.8 h`` of starvation a crash-oblivious victim's neighborhood
    accumulates by the end of the run.
    """
    h = plan.horizon
    return JudgeWindows(settle=0.3 * h, patience=0.7 * h, after=0.3 * h, grace=0.7 * h)


def bakeoff_plans(
    *, topology: str, n: int, duration: float, seed: int
) -> Dict[str, FaultPlan]:
    """The three fault plans (one per regime) for one topology cell."""
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration!r}")
    graph = topologies.by_name(topology, n, seed=seed)
    victim = _max_degree_pid(graph)
    base = dict(
        topology=topology,
        n=n,
        seed=seed,
        horizon=float(duration),
        latency=LatencySpec.of("fixed", delay=0.02),
        workload=WorkloadSpec.of("always", eat_time=0.15, think_time=0.05),
        flaps=FlapSpec(detection_delay=min(1.0, 0.1 * duration)),
    )
    return {
        "clean": FaultPlan(**base),
        "crash": FaultPlan(
            **base,
            crashes=(
                CrashSpec(
                    pid=victim,
                    when="eating",
                    after=0.05 * duration,
                    deadline=0.2 * duration,
                ),
            ),
        ),
        "churn": FaultPlan(
            **base,
            membership=(
                MembershipSpec(time=0.2 * duration, verb="leave", pid=victim),
            ),
        ),
    }


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One (algorithm × topology × regime × substrate) run, judged."""

    algorithm: str
    topology: str
    regime: str
    substrate: str
    statuses: Dict[str, str]
    expected: Dict[str, str]
    mismatches: List[Mismatch]
    meals: int
    throughput: float  # meals per virtual time unit
    fairness: float  # Jain index over correct diners' meals
    messages: Optional[int]  # dining-layer sends (kernel cells)
    total_bits: Optional[int]
    max_bits: Optional[int]  # largest single frame, Section 7 accounting
    budget_bits: int  # the O(log n) per-message budget for this graph
    crash_times: Dict[int, float]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "regime": self.regime,
            "substrate": self.substrate,
            "statuses": dict(sorted(self.statuses.items())),
            "expected": dict(sorted(self.expected.items())),
            "mismatches": [m.describe() for m in self.mismatches],
            "meals": self.meals,
            "throughput": round(self.throughput, 4),
            "fairness": round(self.fairness, 4),
            "messages": self.messages,
            "total_bits": self.total_bits,
            "max_bits": self.max_bits,
            "budget_bits": self.budget_bits,
            "crash_times": {str(k): v for k, v in sorted(self.crash_times.items())},
            "ok": self.ok,
        }


def _jain_index(meals: Mapping[int, int], exclude: Sequence[int]) -> float:
    counts = [c for pid, c in sorted(meals.items()) if pid not in set(exclude)]
    if not counts or not any(counts):
        return 0.0
    return (sum(counts) ** 2) / (len(counts) * sum(c * c for c in counts))


def section7_budget_bits(graph) -> int:
    """The paper's per-message bit ceiling on this graph.

    The largest Algorithm 1 frame is the fork request (tag + sender id +
    color), so this is the O(log n) budget every zoo message is measured
    against.  Bakery/Lamport-clock frames exceed it once their counters
    outgrow the color domain — that excess is the Section 7 contrast.
    """
    coloring = greedy_coloring(graph)
    n_colors = max(coloring.values()) + 1
    n = len(graph.nodes)
    return message_size_bits(
        ForkRequest(0, n_colors - 1), n_processes=n, n_colors=n_colors
    )


def run_cell(
    spec: AlgorithmSpec,
    plan: FaultPlan,
    regime: str,
    *,
    substrate: str = "kernel",
    time_scale: float = 0.02,
) -> CellResult:
    """Run one algorithm through one plan on one substrate and judge it."""
    graph = topologies.by_name(plan.topology, plan.n, seed=plan.seed)
    coloring = greedy_coloring(graph)
    n_colors = max(coloring.values()) + 1
    budget = section7_budget_bits(graph)
    faulty = [c.pid for c in plan.crashes] + [m.pid for m in plan.membership]

    if substrate == "kernel":
        bits = MessageBitsInstrument(n_processes=plan.n, n_colors=n_colors)
        result = run_plan_kernel(
            plan,
            diner_factory=spec.diner_factory,
            detector=spec.kernel_detector(plan) if spec.kernel_detector else None,
            windows=bakeoff_windows(plan),
            stop_on_violation=False,
            monitors=(bits,),
        )
        messages: Optional[int] = bits.total_messages()
        total_bits: Optional[int] = bits.total_bits()
        max_bits: Optional[int] = bits.max_bits()
        cell_key = regime
    elif substrate == "live":
        result = run_plan_live(
            plan,
            time_scale=time_scale,
            judge=False,
            diner_factory=spec.diner_factory,
            detector=spec.live_detector,
        )
        messages = total_bits = max_bits = None
        cell_key = f"live-{regime}"
    else:
        raise ConfigurationError(f"unknown substrate {substrate!r}")

    statuses = result.verdict.statuses()
    expectation = spec.expectation(cell_key)
    meals_total = sum(result.meals.values())
    return CellResult(
        algorithm=spec.key,
        topology=plan.topology,
        regime=regime,
        substrate=substrate,
        statuses=statuses,
        expected=expectation.as_dict(),
        mismatches=expectation.mismatches(statuses),
        meals=meals_total,
        throughput=meals_total / plan.horizon,
        fairness=_jain_index(result.meals, exclude=faulty),
        messages=messages,
        total_bits=total_bits,
        max_bits=max_bits,
        budget_bits=budget,
        crash_times=dict(result.crash_times),
    )


# ----------------------------------------------------------------------
# The bake-off
# ----------------------------------------------------------------------
@dataclass
class BakeoffReport:
    """Every cell of one bake-off, plus the gate verdict."""

    cells: List[CellResult]
    config: Dict[str, object]

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def failing(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def to_json(self) -> dict:
        return {
            "config": dict(self.config),
            "zoo": {
                key: {
                    "title": spec.title,
                    "guarantees": spec.guarantees,
                    "expected": {
                        cell: exp.as_dict() for cell, exp in sorted(spec.expected.items())
                    },
                }
                for key, spec in ZOO.items()
                if key in {c.algorithm for c in self.cells}
            },
            "cells": [cell.to_json() for cell in self.cells],
            "ok": self.ok,
        }

    def render_table(self) -> str:
        """The flagship comparison table, one row per cell."""
        headers = (
            "algorithm",
            "topology",
            "regime",
            "substrate",
            "meals",
            "thr",
            "fair",
            "msgs",
            "bits",
            "max/budget",
            "progress",
            "verdict",
        )
        rows = []
        for cell in self.cells:
            rows.append(
                (
                    cell.algorithm,
                    cell.topology,
                    cell.regime,
                    cell.substrate,
                    str(cell.meals),
                    f"{cell.throughput:.2f}",
                    f"{cell.fairness:.2f}",
                    "-" if cell.messages is None else str(cell.messages),
                    "-" if cell.total_bits is None else str(cell.total_bits),
                    "-"
                    if cell.max_bits is None
                    else f"{cell.max_bits}/{cell.budget_bits}",
                    cell.statuses.get("progress", "-"),
                    "ok" if cell.ok else "MISMATCH",
                )
            )
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
        for cell in self.failing():
            lines.append(
                f"MISMATCH {cell.algorithm}/{cell.topology}/{cell.regime}"
                f"/{cell.substrate}: {describe_mismatches(cell.mismatches)}"
            )
        return "\n".join(lines)


def run_bakeoff(
    *,
    topologies_list: Sequence[str] = TOPOLOGIES,
    n: int = 5,
    duration: float = 20.0,
    seed: int = 1,
    substrates: Sequence[str] = SUBSTRATES,
    algorithms: Optional[Sequence[str]] = None,
    time_scale: float = 0.02,
) -> BakeoffReport:
    """Run the full grid and judge every cell against its recorded map.

    Kernel cells cover every regime on every topology; live cells run
    ``clean`` and ``crash`` on the *first* listed topology (wall-clock
    bounded — the substrate-agnosticism claim needs one topology, not
    nine more minutes of loopback sockets).
    """
    keys = list(algorithms) if algorithms else list(ZOO)
    unknown = [k for k in keys if k not in ZOO]
    if unknown:
        raise ConfigurationError(f"unknown algorithms {unknown}; zoo: {sorted(ZOO)}")
    for substrate in substrates:
        if substrate not in SUBSTRATES:
            raise ConfigurationError(
                f"unknown substrate {substrate!r}; known: {SUBSTRATES}"
            )

    cells: List[CellResult] = []
    for topology in topologies_list:
        plans = bakeoff_plans(topology=topology, n=n, duration=duration, seed=seed)
        for key in keys:
            spec = ZOO[key]
            if "kernel" in substrates:
                for regime in REGIMES:
                    cells.append(run_cell(spec, plans[regime], regime))
            if "live" in substrates and topology == topologies_list[0]:
                for regime in ("clean", "crash"):
                    cells.append(
                        run_cell(
                            spec,
                            plans[regime],
                            regime,
                            substrate="live",
                            time_scale=time_scale,
                        )
                    )
    return BakeoffReport(
        cells=cells,
        config={
            "topologies": list(topologies_list),
            "n": n,
            "duration": duration,
            "seed": seed,
            "substrates": list(substrates),
            "algorithms": keys,
        },
    )


# ----------------------------------------------------------------------
# Scenario registration
# ----------------------------------------------------------------------
def _register() -> None:
    from repro.scenarios import ScenarioSpec, register_scenario

    @register_scenario(
        "dme_bakeoff",
        title="DME bake-off — the classical zoo under one verdict pipeline",
        claim=(
            "Every classical baseline matches its recorded expected "
            "property-status map: the paper's algorithm passes where the "
            "classics are supposed to fail, and nothing fails anywhere "
            "a map pins a pass."
        ),
        columns=(
            "algorithm",
            "topology",
            "regime",
            "substrate",
            "meals",
            "throughput",
            "messages",
            "total_bits",
            "max_bits",
            "ok",
        ),
        group_by=("algorithm",),
        spec=ScenarioSpec(
            topology=TOPOLOGIES,
            detector="scripted ◇P₁ / P / null (per algorithm)",
            crashes="one eating-triggered + one leave (per regime)",
            latency="fixed 0.02",
            workload="always-hungry",
            horizon=20.0,
            seeds=(1,),
            params={"topology": "ring", "n": 5, "duration": 20.0, "substrate": "kernel"},
        ),
        experiment="bakeoff",
    )
    def run_dme_bakeoff(
        *,
        topology: str = "ring",
        n: int = 5,
        duration: float = 20.0,
        substrate: str = "kernel",
        seed: int = 1,
    ) -> List[Dict[str, object]]:
        substrates = SUBSTRATES if substrate == "both" else (substrate,)
        report = run_bakeoff(
            topologies_list=(topology,),
            n=n,
            duration=duration,
            seed=seed,
            substrates=substrates,
        )
        return [
            {
                "algorithm": cell.algorithm,
                "topology": cell.topology,
                "regime": cell.regime,
                "substrate": cell.substrate,
                "meals": cell.meals,
                "throughput": round(cell.throughput, 3),
                "messages": cell.messages,
                "total_bits": cell.total_bits,
                "max_bits": cell.max_bits,
                "ok": cell.ok,
            }
            for cell in report.cells
        ]


_register()
