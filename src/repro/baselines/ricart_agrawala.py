"""Baseline: Ricart–Agrawala request/reply deferral with Lamport clocks.

The classic permission-based DME (Ricart & Agrawala 1981; see Aspnes,
*Notes on Theory of Distributed Systems*), localized to the conflict
graph: a hungry diner stamps one
:class:`~repro.baselines.messages.RaRequest` with its Lamport clock and
sends it to every neighbor; it eats once every neighbor has answered
:class:`~repro.baselines.messages.RaReply`.  A neighbor replies
immediately unless it is itself eating, or hungry with an earlier
``(timestamp, pid)`` stamp — then the reply is deferred to its exit.
Lamport clocks merge ``max(local, received) + 1`` on every receive, so
concurrent requests are totally ordered and the deferral decision is
consistent on both ends of an edge.

Guarantees (crash-free): mutual exclusion on every conflict edge (two
neighbors cannot both hold each other's reply for overlapping sessions
— their stamps are totally ordered, and the later one is deferred) and
starvation-freedom in timestamp order, with exactly two messages per
edge per session — the lowest message *count* in the zoo.

Failure mode, by construction: **crash-oblivious**.  No failure detector
is consulted (the constructor takes one only to fit the common diner
signature); a crashed neighbor never sends its reply, so every hungry
neighbor of a crashed process starves forever.  This is the textbook
liveness gap the paper's ◇P₁ suspicion substitution closes, and the
bake-off pins it as the expected ``progress: fail`` under a single
crash.

Clock growth note: Lamport stamps grow with session count, so
``RaRequest`` frames grow O(log t) over time — slower than the bakery's
contention-coupled tickets, but still beyond the paper's fixed O(log n)
budget on an infinite run.  The bake-off's bit instruments surface both.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.baselines.messages import RaReply, RaRequest
from repro.core.diner import EatCallback
from repro.core.state import DinerState
from repro.core.table import DiningTable, null_detector
from repro.core.workload import Workload
from repro.detectors.base import FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.trace.recorder import TraceRecorder


class RicartAgrawalaDiner(Actor):
    """One Ricart–Agrawala participant on the conflict graph."""

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,  # unused: RA is crash-oblivious
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
        neighbors: Optional[tuple] = None,
    ) -> None:
        super().__init__(pid)
        if pid not in graph:
            raise ConfigurationError(f"process {pid} is not in the conflict graph")
        self.graph = graph
        self.workload = workload
        self.trace = trace
        self.on_eat = on_eat
        self.state = DinerState.THINKING
        if neighbors is None:
            self.neighbors: Set[ProcessId] = set(graph.neighbors(pid))
        else:
            self.neighbors = {int(n) for n in neighbors}
        self.clock = 0
        self.request_stamp: Optional[Tuple[int, int]] = None  # (clock, pid)
        self.meals_eaten = 0
        self._pending_replies: Set[ProcessId] = set()
        self._deferred: Set[ProcessId] = set()

    # -- introspection (invariant checkers, experiments, tests) ---------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def is_hungry(self) -> bool:
        return self.state is DinerState.HUNGRY

    @property
    def is_eating(self) -> bool:
        return self.state is DinerState.EATING

    def holds_fork(self, neighbor: ProcessId) -> bool:
        return False  # RA has no forks

    def holds_token(self, neighbor: ProcessId) -> bool:
        return False

    # -- lifecycle -------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_next_hunger()

    def on_crash(self) -> None:
        self.trace.crash(self.now, self.pid)

    def _schedule_next_hunger(self) -> None:
        duration = self.workload.think_duration(self.pid, self.streams)
        if duration is None:
            return
        self.set_timer(duration, self._become_hungry, label=f"hunger@{self.pid}")

    def _become_hungry(self) -> None:
        if self.state is not DinerState.THINKING:
            return
        self._set_state(DinerState.HUNGRY)
        self.clock += 1
        self.request_stamp = (self.clock, self.pid)
        self._pending_replies = set(self.neighbors)
        for neighbor in sorted(self._pending_replies):
            self.send(neighbor, RaRequest(self.pid, self.request_stamp[0]))
        if not self._pending_replies:
            self._eat()

    # -- the RA rule -----------------------------------------------------
    def on_message(self, src: ProcessId, message) -> None:
        if isinstance(message, RaRequest):
            self.clock = max(self.clock, message.clock) + 1
            if self.is_eating:
                self._deferred.add(src)
            elif (
                self.request_stamp is not None
                and self.request_stamp < (message.clock, src)
            ):
                # We are hungry with the earlier stamp: they wait for us.
                self._deferred.add(src)
            else:
                self.send(src, RaReply(self.pid))
        elif isinstance(message, RaReply):
            if self._pending_replies:
                self._pending_replies.discard(src)
                if not self._pending_replies and self.is_hungry:
                    self._eat()
        else:
            raise ConfigurationError(
                f"ricart-agrawala diner {self.pid} got unexpected {message!r} from {src}"
            )

    def _eat(self) -> None:
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)

    def _exit(self) -> None:
        if not self.is_eating:
            return
        self._set_state(DinerState.THINKING)
        self.request_stamp = None
        deferred, self._deferred = self._deferred, set()
        for neighbor in sorted(deferred):
            self.send(neighbor, RaReply(self.pid))
        self._schedule_next_hunger()

    # -- membership (crash-oblivious: observe, never adapt) --------------
    def neighbor_left(self, neighbor: ProcessId) -> None:
        """A neighbor departed.  RA does not adapt: any outstanding
        request to it waits for a reply forever — the honest churn
        failure mode."""

    def neighbor_rejoined(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)

    def add_neighbor(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)

    def remove_neighbor(self, neighbor: ProcessId) -> None:
        # A removed *edge* removes the conflict itself, so dropping the
        # neighbor from every wait set is sound (unlike a leave).
        self.neighbors.discard(neighbor)
        self._pending_replies.discard(neighbor)
        self._deferred.discard(neighbor)
        if self.is_hungry and not self._pending_replies:
            self._eat()

    # -- internals -------------------------------------------------------
    def _set_state(self, new_state: DinerState) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        self.trace.phase_change(self.now, self.pid, old.phase, new_state.phase)


def ricart_agrawala_table(graph: ConflictGraph, **table_kwargs) -> DiningTable:
    """A DiningTable scheduled by Ricart–Agrawala request/reply deferral."""
    for forbidden in ("diner_factory", "detector"):
        if forbidden in table_kwargs:
            raise TypeError(f"ricart_agrawala_table fixes {forbidden!r}; do not pass it")
    return DiningTable(
        graph,
        diner_factory=RicartAgrawalaDiner,
        detector=null_detector(),
        **table_kwargs,
    )
