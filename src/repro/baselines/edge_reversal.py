"""Baseline: scheduling by edge reversal (Barbosa & Gafni 1989).

The classic crash-oblivious distributed scheduler, and the paper's
"purely asynchronous daemon" contrast on a different axis than
Choy-Singh: SER is *perfectly* safe and spends no request traffic at all,
but a single crash freezes part of the precedence graph forever.

The conflict graph carries an acyclic orientation; a process is a *sink*
when every incident edge points at it.  Sinks may enter the critical
section; on exit they reverse all their edges (become sources).  In the
message-passing realization the orientation IS fork possession: "edge
points at me" = "I hold that fork", so

* initially forks sit at the higher-color endpoint (same placement as
  Algorithm 1) — orientation by color is acyclic, and the initial sinks
  are the local color maxima;
* a hungry sink eats; at exit it sends *every* fork away (reversal);
* nobody ever requests anything: forks only flow at reversals.

Guarantees (crash-free): perpetual weak exclusion (the unique fork is
held by at most one endpoint, with no suspicion override) and, under an
always-hungry workload, every process becomes a sink infinitely often —
which is why SER is a standard daemon for self-stabilizing protocols.

Failure mode: a crashed process never reverses, so every neighbor
waiting on its fork starves, and the starvation propagates outward as
the dead region pins more of the orientation.  No failure detector is
consulted (the constructor accepts one only to fit the common diner
signature).

Scope note: SER schedules processes that perpetually want steps.  With
sparse hunger a *thinking* sink simply sits on its forks until it gets
hungry — still safe, but neighbors wait on the thinker, so fairness
claims here assume the daemon workload (always hungry).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.diner import EatCallback
from repro.core.messages import Fork
from repro.core.state import DinerState
from repro.core.table import DiningTable, null_detector
from repro.core.workload import Workload
from repro.detectors.base import FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.trace.recorder import TraceRecorder


class EdgeReversalDiner(Actor):
    """One node of the scheduling-by-edge-reversal graph."""

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,  # unused: SER is crash-oblivious
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
        neighbors: Optional[tuple] = None,
    ) -> None:
        super().__init__(pid)
        if pid not in graph:
            raise ConfigurationError(f"process {pid} is not in the conflict graph")
        self.graph = graph
        self.color = int(coloring[pid])
        self.workload = workload
        self.trace = trace
        self.on_eat = on_eat
        self.state = DinerState.THINKING
        if neighbors is None:
            initial = graph.neighbors(pid)
        else:
            initial = tuple(sorted(int(n) for n in neighbors))
        # Edge orientation as fork possession: toward the higher color.
        self.forks: Dict[ProcessId, bool] = {
            nbr: self.color > int(coloring[nbr]) for nbr in initial
        }
        self.meals_eaten = 0

    # -- introspection (invariant checkers, experiments) ----------------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def is_hungry(self) -> bool:
        return self.state is DinerState.HUNGRY

    @property
    def is_eating(self) -> bool:
        return self.state is DinerState.EATING

    @property
    def is_sink(self) -> bool:
        return all(self.forks.values())

    def holds_fork(self, neighbor: ProcessId) -> bool:
        return self.forks[neighbor]

    def holds_token(self, neighbor: ProcessId) -> bool:
        return False  # SER has no request tokens

    # -- lifecycle -------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_next_hunger()

    def on_crash(self) -> None:
        self.trace.crash(self.now, self.pid)

    def _schedule_next_hunger(self) -> None:
        duration = self.workload.think_duration(self.pid, self.streams)
        if duration is None:
            return
        self.set_timer(duration, self._become_hungry, label=f"hunger@{self.pid}")

    def _become_hungry(self) -> None:
        if self.state is not DinerState.THINKING:
            return
        self._set_state(DinerState.HUNGRY)

    # -- the SER rule ------------------------------------------------------
    def reevaluate(self) -> None:
        if self.crashed:
            return
        if self.is_hungry and self.is_sink:
            self._set_state(DinerState.EATING)
            self.meals_eaten += 1
            duration = self.workload.eat_duration(self.pid, self.streams)
            self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
            if self.on_eat is not None:
                self.on_eat(self)

    def _exit(self) -> None:
        if not self.is_eating:
            return
        self._set_state(DinerState.THINKING)
        for neighbor in sorted(self.forks):
            # Reverse every edge: relinquish all forks.
            if self.forks[neighbor]:
                self.send(neighbor, Fork(self.pid))
                self.forks[neighbor] = False
        self._schedule_next_hunger()

    def on_message(self, src: ProcessId, message) -> None:
        if not isinstance(message, Fork) or src not in self.forks:
            raise ConfigurationError(
                f"edge-reversal node {self.pid} got unexpected {message!r} from {src}"
            )
        self.forks[src] = True

    # -- membership (crash-oblivious: observe, never adapt) --------------
    def neighbor_left(self, neighbor: ProcessId) -> None:
        """A neighbor departed.  SER does not adapt: if the dead node
        held the shared fork the edge is pinned forever — the honest
        churn failure mode."""

    def neighbor_rejoined(self, neighbor: ProcessId) -> None:
        self.forks.setdefault(neighbor, False)

    def add_neighbor(self, neighbor: ProcessId) -> None:
        # Hygienic placement for a fresh edge: higher pid holds the fork
        # (colors may collide across epochs; pids never do).
        self.forks.setdefault(neighbor, self.pid > neighbor)

    def remove_neighbor(self, neighbor: ProcessId) -> None:
        # A removed *edge* removes the conflict itself; forget the fork.
        self.forks.pop(neighbor, None)
        self.reevaluate()

    # -- internals -------------------------------------------------------
    def _set_state(self, new_state: DinerState) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        self.trace.phase_change(self.now, self.pid, old.phase, new_state.phase)


def edge_reversal_table(graph: ConflictGraph, **table_kwargs) -> DiningTable:
    """A DiningTable scheduling by edge reversal (no detector, no requests)."""
    for forbidden in ("diner_factory", "detector"):
        if forbidden in table_kwargs:
            raise TypeError(f"edge_reversal_table fixes {forbidden!r}; do not pass it")
    return DiningTable(
        graph,
        diner_factory=EdgeReversalDiner,
        detector=null_detector(),
        **table_kwargs,
    )
