"""Comparison point: Algorithm 1 over the perfect detector P.

With P, the detector never wrongly suspects a live neighbor, so every
suspicion that substitutes for an ack or fork is justified — the run has
*zero* exclusion violations and satisfies perpetual weak exclusion from
time zero.  The paper's point is that the weaker, implementable ◇P
suffices for the eventual guarantees; this configuration quantifies what
the stronger (and in pure asynchrony unimplementable) oracle would add:
only the pre-convergence mistake window disappears.
"""

from __future__ import annotations

from repro.core.table import DiningTable, perfect_detector
from repro.graphs.conflict import ConflictGraph
from repro.sim.time import Duration


def perfect_dining_table(
    graph: ConflictGraph, *, detection_delay: Duration = 1.0, **table_kwargs
) -> DiningTable:
    """A DiningTable running Algorithm 1 over the perfect detector P."""
    if "detector" in table_kwargs:
        raise TypeError("perfect_dining_table fixes detector; do not pass it")
    return DiningTable(
        graph,
        detector=perfect_detector(detection_delay=detection_delay),
        **table_kwargs,
    )
