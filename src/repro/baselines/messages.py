"""Wire messages of the classical-DME baseline zoo.

The three message-passing classics added by ROADMAP item 4 each speak
their own small vocabulary on the ``dining`` layer (so the channel
checkers and the Section 7 occupancy accounting see them exactly like
Algorithm 1's traffic):

* **Lamport bakery** — :class:`BakeryQuery` / :class:`BakeryNumber`
  (the ticket-choosing round: "what is your number?" / "here it is"),
  then :class:`BakeryRequest` / :class:`BakeryOk` (the number-comparison
  round: "I hold ticket k" / "you precede me, go ahead").
* **Ricart–Agrawala** — :class:`RaRequest` (a Lamport-clock-stamped
  entry request) and :class:`RaReply` (the deferred-or-immediate grant).
* **Lehmann–Rabin** — :class:`LrRequest` (a fork request, blocking for
  the randomly drawn first fork, non-blocking *test* for the rest) and
  :class:`LrBusy` (the immediate refusal a non-blocking test receives);
  the fork itself travels as the ordinary
  :class:`~repro.core.messages.Fork`, so fork-uniqueness probing and
  ``holds_fork`` introspection mean the same thing they mean everywhere
  else.

Every value-carrying type implements ``payload_bits()`` — the extra bits
beyond the common "type tag + sender id" budget that
:func:`repro.core.messages.message_size_bits` accounts.  This is where
the paper's O(log n) contrast becomes measurable: bakery tickets grow
without bound under contention, so ``BakeryNumber``/``BakeryRequest``
frames grow with *time*, not with *n*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import value_bits

__all__ = [
    "BAKEOFF_MESSAGE_TYPES",
    "BakeryNumber",
    "BakeryOk",
    "BakeryQuery",
    "BakeryRequest",
    "LrBusy",
    "LrRequest",
    "RaReply",
    "RaRequest",
]


@dataclass(frozen=True, slots=True)
class BakeryQuery:
    """Ask a neighbor for its current ticket number (choosing round)."""

    sender: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class BakeryNumber:
    """The neighbor's current ticket (0 = not competing)."""

    sender: int
    number: int
    layer = "dining"

    def payload_bits(self) -> int:
        return value_bits(self.number)


@dataclass(frozen=True, slots=True)
class BakeryRequest:
    """Announce the chosen ticket and request entry."""

    sender: int
    number: int
    layer = "dining"

    def payload_bits(self) -> int:
        return value_bits(self.number)


@dataclass(frozen=True, slots=True)
class BakeryOk:
    """Yield to the requester: its ``(number, pid)`` precedes ours."""

    sender: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class RaRequest:
    """Ricart–Agrawala entry request, stamped with the sender's clock."""

    sender: int
    clock: int
    layer = "dining"

    def payload_bits(self) -> int:
        return value_bits(self.clock)


@dataclass(frozen=True, slots=True)
class RaReply:
    """Ricart–Agrawala grant (sent immediately or after our exit)."""

    sender: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class LrRequest:
    """Lehmann–Rabin fork request.

    ``blocking=True`` is the wait-for-it request for the randomly drawn
    first fork: the holder answers with a :class:`~repro.core.messages.Fork`
    as soon as the fork is uncommitted, however long that takes.
    ``blocking=False`` is the *test* for every subsequent fork: the
    holder answers immediately, with the fork or with :class:`LrBusy`.
    """

    sender: int
    blocking: bool
    layer = "dining"

    def payload_bits(self) -> int:
        return 1

@dataclass(frozen=True, slots=True)
class LrBusy:
    """Immediate refusal of a non-blocking Lehmann–Rabin test."""

    sender: int
    layer = "dining"


BAKEOFF_MESSAGE_TYPES = (
    BakeryQuery,
    BakeryNumber,
    BakeryRequest,
    BakeryOk,
    RaRequest,
    RaReply,
    LrRequest,
    LrBusy,
)
