"""Baseline: Lamport's bakery, localized to the conflict graph.

The bakery algorithm (Lamport 1974; message-passing rendition after the
shared-register formulation in Aspnes' *Notes on Theory of Distributed
Systems*) as a dining scheduler: each hungry session runs two explicit
message rounds against the conflict-graph neighbors —

1. **Choosing** — :class:`~repro.baselines.messages.BakeryQuery` to every
   neighbor; each replies :class:`~repro.baselines.messages.BakeryNumber`
   with its current ticket (0 when not competing).  The chooser takes
   ``1 + max`` over the replies (and over its own previous ticket, so a
   diner's tickets are strictly increasing — the monotone local clock
   most message-passing bakeries keep).
2. **Comparison** — :class:`~repro.baselines.messages.BakeryRequest`
   carrying the chosen ticket to every neighbor; a neighbor yields with
   :class:`~repro.baselines.messages.BakeryOk` iff it is not competing,
   or the requester's ``(number, pid)`` lexicographically precedes its
   own.  Otherwise the Ok is deferred to the neighbor's exit.  A
   neighbor still *choosing* defers the decision itself until its own
   ticket is fixed, which is what makes concurrent choosing safe.

Guarantees (crash-free): mutual exclusion on every conflict edge — two
neighbors can never hold each other's Ok for overlapping sessions,
because ``(number, pid)`` is a total order and an eating or competing
neighbor always forces later choosers above its own ticket — and
first-come-first-served fairness in ticket order.

Failure modes, by construction:

* **Unbounded tickets.**  Under contention every session reads the
  competitors' tickets and goes one higher, so numbers grow without
  bound and :class:`BakeryNumber`/:class:`BakeryRequest` frames grow
  with *time* — the measurable contrast with the paper's O(log n)-bit
  Section 7 budget (see ``message_size_bits`` and the bake-off's bit
  instruments).
* **Crash-oblivious.**  No failure detector is consulted (the
  constructor accepts one only to fit the common diner signature): a
  crashed neighbor never answers a query and never sends its Ok, so its
  whole neighborhood starves.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.baselines.messages import BakeryNumber, BakeryOk, BakeryQuery, BakeryRequest
from repro.core.diner import EatCallback
from repro.core.state import DinerState
from repro.core.table import DiningTable, null_detector
from repro.core.workload import Workload
from repro.detectors.base import FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.trace.recorder import TraceRecorder


def bakery_precedes(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """The bakery priority order: ``(number, pid)`` lexicographically.

    ``a`` and ``b`` are ``(number, pid)`` tickets; lower wins.  Exposed
    as a named function so the property tests pin the comparison the
    actors actually use.
    """
    return a < b


class BakeryDiner(Actor):
    """One bakery customer on the conflict graph."""

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,  # unused: the bakery is crash-oblivious
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
        neighbors: Optional[tuple] = None,
    ) -> None:
        super().__init__(pid)
        if pid not in graph:
            raise ConfigurationError(f"process {pid} is not in the conflict graph")
        self.graph = graph
        self.workload = workload
        self.trace = trace
        self.on_eat = on_eat
        self.state = DinerState.THINKING
        if neighbors is None:
            self.neighbors: Set[ProcessId] = set(graph.neighbors(pid))
        else:
            self.neighbors = {int(n) for n in neighbors}
        self.choosing = False
        self.number = 0
        self.last_number = 0
        self.meals_eaten = 0
        self._pending_numbers: Set[ProcessId] = set()
        self._max_seen = 0
        self._pending_oks: Set[ProcessId] = set()
        self._deferred: Set[ProcessId] = set()
        # Requests that arrived mid-choosing: requester -> its ticket.
        # They cannot be compared until our own ticket is fixed.
        self._undecided: Dict[ProcessId, int] = {}

    # -- introspection (invariant checkers, experiments, tests) ---------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def is_hungry(self) -> bool:
        return self.state is DinerState.HUNGRY

    @property
    def is_eating(self) -> bool:
        return self.state is DinerState.EATING

    @property
    def ticket(self) -> Tuple[int, int]:
        """This diner's current bakery priority, as ``(number, pid)``."""
        return (self.number, self.pid)

    def holds_fork(self, neighbor: ProcessId) -> bool:
        return False  # the bakery has no forks

    def holds_token(self, neighbor: ProcessId) -> bool:
        return False

    # -- lifecycle -------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_next_hunger()

    def on_crash(self) -> None:
        self.trace.crash(self.now, self.pid)

    def _schedule_next_hunger(self) -> None:
        duration = self.workload.think_duration(self.pid, self.streams)
        if duration is None:
            return
        self.set_timer(duration, self._become_hungry, label=f"hunger@{self.pid}")

    def _become_hungry(self) -> None:
        if self.state is not DinerState.THINKING:
            return
        self._set_state(DinerState.HUNGRY)
        self.choosing = True
        self._max_seen = 0
        self._pending_numbers = set(self.neighbors)
        for neighbor in sorted(self._pending_numbers):
            self.send(neighbor, BakeryQuery(self.pid))
        if not self._pending_numbers:
            self._finish_choosing()

    # -- the two bakery rounds -------------------------------------------
    def _finish_choosing(self) -> None:
        self.number = 1 + max(self._max_seen, self.last_number)
        self.last_number = self.number
        self.choosing = False
        self._pending_oks = set(self.neighbors)
        for neighbor in sorted(self._pending_oks):
            self.send(neighbor, BakeryRequest(self.pid, self.number))
        # Requests that queued up while we were choosing are decidable now.
        undecided, self._undecided = self._undecided, {}
        for requester, number in sorted(undecided.items()):
            self._decide(requester, number)
        if not self._pending_oks:
            self._eat()

    def _decide(self, requester: ProcessId, number: int) -> None:
        """Grant or defer one BakeryRequest against our fixed state."""
        if self.is_eating:
            self._deferred.add(requester)
        elif self.choosing:
            self._undecided[requester] = number
        elif self.number and not bakery_precedes((number, requester), self.ticket):
            self._deferred.add(requester)
        else:
            self.send(requester, BakeryOk(self.pid))

    def on_message(self, src: ProcessId, message) -> None:
        if isinstance(message, BakeryQuery):
            # Unconditional and immediate, even mid-meal: an eating or
            # competing diner answering its live ticket is what forces
            # later choosers above it (the safety argument needs this).
            self.send(src, BakeryNumber(self.pid, self.number))
        elif isinstance(message, BakeryNumber):
            if message.number > self._max_seen:
                self._max_seen = message.number
            if self.choosing and src in self._pending_numbers:
                self._pending_numbers.discard(src)
                if not self._pending_numbers:
                    self._finish_choosing()
        elif isinstance(message, BakeryRequest):
            self._decide(src, message.number)
        elif isinstance(message, BakeryOk):
            if self._pending_oks:
                self._pending_oks.discard(src)
                if not self._pending_oks and not self.choosing and self.is_hungry:
                    self._eat()
        else:
            raise ConfigurationError(
                f"bakery diner {self.pid} got unexpected {message!r} from {src}"
            )

    def _eat(self) -> None:
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)

    def _exit(self) -> None:
        if not self.is_eating:
            return
        self._set_state(DinerState.THINKING)
        self.number = 0
        deferred, self._deferred = self._deferred, set()
        for neighbor in sorted(deferred):
            self.send(neighbor, BakeryOk(self.pid))
        self._schedule_next_hunger()

    # -- membership (crash-oblivious: observe, never adapt) --------------
    def neighbor_left(self, neighbor: ProcessId) -> None:
        """A neighbor departed.  The bakery does not adapt: we keep
        waiting on its replies forever — the honest churn failure mode."""

    def neighbor_rejoined(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)

    def add_neighbor(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)

    def remove_neighbor(self, neighbor: ProcessId) -> None:
        # A removed *edge* removes the conflict itself, so dropping the
        # neighbor from every wait set is sound (unlike a leave).
        self.neighbors.discard(neighbor)
        self._pending_numbers.discard(neighbor)
        self._pending_oks.discard(neighbor)
        self._deferred.discard(neighbor)
        self._undecided.pop(neighbor, None)
        if self.choosing and not self._pending_numbers:
            self._finish_choosing()
        elif self.is_hungry and not self.choosing and not self._pending_oks:
            self._eat()

    # -- internals -------------------------------------------------------
    def _set_state(self, new_state: DinerState) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        self.trace.phase_change(self.now, self.pid, old.phase, new_state.phase)


def bakery_table(graph: ConflictGraph, **table_kwargs) -> DiningTable:
    """A DiningTable scheduled by the message-passing bakery."""
    for forbidden in ("diner_factory", "detector"):
        if forbidden in table_kwargs:
            raise TypeError(f"bakery_table fixes {forbidden!r}; do not pass it")
    return DiningTable(
        graph,
        diner_factory=BakeryDiner,
        detector=null_detector(),
        **table_kwargs,
    )
