"""Baseline: Lehmann–Rabin randomized dining, generalized to the graph.

The free-philosophers algorithm of Lehmann & Rabin (1981), in the
conflict-graph generalization studied by Herescu & Palamidessi (*On the
generalized dining philosophers problem*, PAPERS.md): symmetric,
deterministic-adversary-proof dining with no priorities, no doorway and
no oracle — progress comes from coin flips alone.

Message-passing realization.  Each conflict edge carries one physical
fork, initially at the higher-color endpoint (the repo's standard
placement); ``holds_fork`` means the fork is at our end, and the fork
itself travels as the ordinary :class:`~repro.core.messages.Fork`.  A
hungry diner runs attempts:

1. Draw a uniformly random order over its edges from its seeded private
   stream (``streams.stream("lehmann-rabin/<pid>")`` — threaded from the
   scenario seed, so every run is deterministic and golden-pinnable).
2. **Commit** the first fork, waiting as long as it takes: a local
   uncommitted fork is committed in place, otherwise a *blocking*
   :class:`~repro.baselines.messages.LrRequest` is sent and the holder
   answers with the fork as soon as it is uncommitted.
3. **Test** the remaining forks one at a time in the drawn order: a
   non-blocking request is answered immediately, with the fork or with
   :class:`~repro.baselines.messages.LrBusy`.  On the first Busy the
   whole attempt aborts — every committed fork is released (it stays at
   our end but becomes grantable, and deferred blocking requests are
   granted on the spot) — and a fresh attempt starts after a short
   random backoff.
4. All forks committed → eat.  Exit releases everything.

Guarantees: mutual exclusion is *deterministic* (one fork per edge, two
neighbors can never both have it committed), on every seed.  Progress is
only probabilistic — with probability 1 over the coin flips, but no
finite bound — so the bake-off judges it over seed ensembles rather
than pinning a single-run expectation.

Failure mode, by construction: **crash-oblivious**.  A diner crashed
mid-meal holds all its forks committed forever; every neighbor's
attempt eventually blocks on (or endlessly retests) a dead fork, so the
neighborhood starves.  No detector is consulted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.messages import LrBusy, LrRequest
from repro.core.diner import EatCallback
from repro.core.messages import Fork
from repro.core.state import DinerState
from repro.core.table import DiningTable, null_detector
from repro.core.workload import Workload
from repro.detectors.base import FailureDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.actor import Actor
from repro.trace.recorder import TraceRecorder

#: Default retry backoff window (virtual seconds): an aborted attempt
#: redraws after a uniform delay from this range, so two symmetric
#: neighbors don't re-collide in lockstep forever.
RETRY_BACKOFF = (0.01, 0.05)


class LehmannRabinDiner(Actor):
    """One randomized Lehmann–Rabin philosopher."""

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,  # unused: LR is oracle-free
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
        neighbors: Optional[tuple] = None,
        retry_backoff: Tuple[float, float] = RETRY_BACKOFF,
    ) -> None:
        super().__init__(pid)
        if pid not in graph:
            raise ConfigurationError(f"process {pid} is not in the conflict graph")
        self.graph = graph
        self.color = int(coloring[pid])
        self.workload = workload
        self.trace = trace
        self.on_eat = on_eat
        self.retry_backoff = retry_backoff
        self.state = DinerState.THINKING
        if neighbors is None:
            initial = graph.neighbors(pid)
        else:
            initial = tuple(sorted(int(n) for n in neighbors))
        self.neighbors: Set[ProcessId] = set(initial)
        # Fork placement follows Section 3.1: at the higher-color end.
        self.forks: Dict[ProcessId, bool] = {
            nbr: self.color > int(coloring[nbr]) for nbr in initial
        }
        self.committed: Set[ProcessId] = set()
        self.meals_eaten = 0
        # Attempt state: the drawn order, the index of the next fork to
        # secure, and the single neighbor (if any) we await a reply from.
        self._order: List[ProcessId] = []
        self._cursor = 0
        self._awaiting: Optional[ProcessId] = None
        self._deferred: Set[ProcessId] = set()  # blocking requests on hold

    @property
    def _rng(self):
        return self.streams.stream(f"lehmann-rabin/{self.pid}")

    # -- introspection (invariant checkers, experiments, tests) ---------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def is_hungry(self) -> bool:
        return self.state is DinerState.HUNGRY

    @property
    def is_eating(self) -> bool:
        return self.state is DinerState.EATING

    def holds_fork(self, neighbor: ProcessId) -> bool:
        return self.forks.get(neighbor, False)

    def holds_token(self, neighbor: ProcessId) -> bool:
        return False  # LR has no request tokens

    # -- lifecycle -------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_next_hunger()

    def on_crash(self) -> None:
        self.trace.crash(self.now, self.pid)

    def _schedule_next_hunger(self) -> None:
        duration = self.workload.think_duration(self.pid, self.streams)
        if duration is None:
            return
        self.set_timer(duration, self._become_hungry, label=f"hunger@{self.pid}")

    def _become_hungry(self) -> None:
        if self.state is not DinerState.THINKING:
            return
        self._set_state(DinerState.HUNGRY)
        self._start_attempt()

    # -- one randomized attempt ------------------------------------------
    def _start_attempt(self) -> None:
        if not self.is_hungry:
            return
        order = sorted(self.neighbors)
        self._rng.shuffle(order)
        self._order = order
        self._cursor = 0
        self._awaiting = None
        if not order:
            self._eat()
            return
        first = order[0]
        if self.forks[first]:
            self.committed.add(first)
            self._cursor = 1
            self._advance()
        else:
            self._awaiting = first
            self.send(first, LrRequest(self.pid, True))

    def _advance(self) -> None:
        """Secure forks past the cursor with non-blocking tests."""
        while self._cursor < len(self._order):
            target = self._order[self._cursor]
            if self.forks[target]:
                self.committed.add(target)
                self._cursor += 1
                continue
            self._awaiting = target
            self.send(target, LrRequest(self.pid, False))
            return
        self._awaiting = None
        self._eat()

    def _abort_attempt(self) -> None:
        self._order = []
        self._cursor = 0
        self._awaiting = None
        self.committed.clear()
        self._grant_deferred()
        low, high = self.retry_backoff
        delay = low + self._rng.random() * (high - low)
        self.set_timer(delay, self._start_attempt, label=f"lr-retry@{self.pid}")

    def _grant_deferred(self) -> None:
        """Hand every deferred blocking request its now-free fork."""
        ready = sorted(n for n in self._deferred if self.forks.get(n) and n not in self.committed)
        for neighbor in ready:
            self._deferred.discard(neighbor)
            self.forks[neighbor] = False
            self.send(neighbor, Fork(self.pid))

    # -- message handling ------------------------------------------------
    def on_message(self, src: ProcessId, message) -> None:
        if isinstance(message, LrRequest):
            if not self.forks.get(src, False):
                raise ConfigurationError(
                    f"lehmann-rabin diner {self.pid} asked for a fork it does "
                    f"not hold (edge {src}-{self.pid}): FIFO channels make "
                    "every request arrive at the current holder"
                )
            if src in self.committed or self.is_eating:
                if message.blocking:
                    self._deferred.add(src)
                else:
                    self.send(src, LrBusy(self.pid))
            else:
                self.forks[src] = False
                self.send(src, Fork(self.pid))
        elif isinstance(message, Fork):
            self.forks[src] = True
            if self._awaiting == src and self.is_hungry:
                self._awaiting = None
                self.committed.add(src)
                self._cursor += 1
                self._advance()
        elif isinstance(message, LrBusy):
            if self._awaiting == src and self.is_hungry:
                self._abort_attempt()
        else:
            raise ConfigurationError(
                f"lehmann-rabin diner {self.pid} got unexpected {message!r} from {src}"
            )

    def _eat(self) -> None:
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)

    def _exit(self) -> None:
        if not self.is_eating:
            return
        self._set_state(DinerState.THINKING)
        self._order = []
        self._cursor = 0
        self.committed.clear()
        self._grant_deferred()
        self._schedule_next_hunger()

    # -- membership (crash-oblivious: observe, never adapt) --------------
    def neighbor_left(self, neighbor: ProcessId) -> None:
        """A neighbor departed.  LR does not adapt: a dead edge's fork
        stays wherever it was, and attempts that need it stall — the
        honest churn failure mode."""

    def neighbor_rejoined(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)
        self.forks.setdefault(neighbor, False)

    def add_neighbor(self, neighbor: ProcessId) -> None:
        self.neighbors.add(neighbor)
        # Hygienic placement for a fresh edge: higher pid holds the fork
        # (colors may collide across epochs; pids never do).
        self.forks.setdefault(neighbor, self.pid > neighbor)

    def remove_neighbor(self, neighbor: ProcessId) -> None:
        # A removed *edge* removes the conflict itself; forget the fork.
        self.neighbors.discard(neighbor)
        self.forks.pop(neighbor, None)
        self.committed.discard(neighbor)
        self._deferred.discard(neighbor)
        if neighbor in self._order and self.is_hungry:
            # The drawn order is stale; abort and redraw over live edges.
            self._abort_attempt()

    # -- internals -------------------------------------------------------
    def _set_state(self, new_state: DinerState) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        self.trace.phase_change(self.now, self.pid, old.phase, new_state.phase)


def lehmann_rabin_table(graph: ConflictGraph, **table_kwargs) -> DiningTable:
    """A DiningTable scheduled by randomized Lehmann–Rabin dining."""
    for forbidden in ("diner_factory", "detector"):
        if forbidden in table_kwargs:
            raise TypeError(f"lehmann_rabin_table fixes {forbidden!r}; do not pass it")
    return DiningTable(
        graph,
        diner_factory=LehmannRabinDiner,
        detector=null_detector(),
        **table_kwargs,
    )
