"""Baseline: forks-only static-priority dining (no doorway).

Strip the asynchronous doorway out of Algorithm 1 and what remains is the
classic static-priority fork protocol: a hungry process immediately
competes for its forks, conflicts resolve toward the higher color, eating
requires holding every fork (or, when a detector is supplied, suspecting
the neighbor).

This baseline exists to show what the doorway buys (design decision 3 in
DESIGN.md): without it, a low-color diner squeezed between always-hungry
high-color neighbors is overtaken without bound — whenever it receives a
fork while still missing another, the higher-priority neighbor's next
request takes the fork straight back.  The E3 fairness experiment
measures exactly that: max overtaking grows with run length here, but is
≤ 2 (after convergence) for Algorithm 1.

Implementation note: the diner rides the phase-2 machinery of
:class:`~repro.core.diner.DinerActor` by treating the doorway as always
open — ``inside`` becomes "actively competing" and flips to true the
moment the diner is hungry.  Fork-request handling (Action 7) is then
literally the static-priority rule: grant when thinking, grant when
hungry with lower color, defer when eating or hungry with higher color.
"""

from __future__ import annotations

from repro.core.diner import DinerActor
from repro.core.table import DiningTable, null_detector
from repro.graphs.conflict import ConflictGraph, ProcessId


class ForkPriorityDiner(DinerActor):
    """Dining with forks and static priorities only — no doorway."""

    def reevaluate(self) -> None:
        if self.crashed:
            return
        progress = True
        while progress:
            progress = False
            if self.is_hungry and not self.inside:
                # No doorway: begin competing immediately.  The doorway
                # trace record keeps analysis tooling uniform.
                self.inside = True
                self.trace.doorway_change(self.now, self.pid, True)
                progress = True
            if self.is_hungry and self.inside:
                progress |= self._request_missing_forks()
                progress |= self._try_eat()

    def _on_ping(self, src: ProcessId) -> None:  # pragma: no cover - defensive
        raise AssertionError("fork-priority baseline never sends pings")


def fork_priority_table(graph: ConflictGraph, *, detector=None, **table_kwargs) -> DiningTable:
    """A DiningTable running the forks-only baseline.

    ``detector`` defaults to none (purely asynchronous).  Passing a ◇P₁
    factory yields the "wait-free but unfair" ablation: suspicion restores
    progress under crashes while the unbounded overtaking remains.
    """
    if "diner_factory" in table_kwargs:
        raise TypeError("fork_priority_table fixes diner_factory; do not pass it")
    return DiningTable(
        graph,
        diner_factory=ForkPriorityDiner,
        detector=detector if detector is not None else null_detector(),
        **table_kwargs,
    )
