"""Ablations of Algorithm 1: disable one mechanism at a time.

The paper weaves ◇P₁ suspicion into *both* phases — doorway entry
(Action 5) and fork collection (Action 9).  These variants disable each
substitution independently, to show both are necessary for wait-freedom
(design decision 2 of DESIGN.md):

* :class:`NoDoorwaySuspicionDiner` — Action 5 requires actual acks from
  every neighbor; a crashed neighbor that owes an ack blocks the doorway
  forever, starving the waiter in phase 1.
* :class:`NoForkSuspicionDiner` — Action 9 requires actually holding
  every fork; a neighbor that crashed holding a shared fork starves the
  waiter in phase 2.

(The third ablation — removing the per-session ack throttle, which costs
the 2-bounded-waiting guarantee — is
:class:`repro.baselines.choy_singh.ChoySinghDiner` run with a ◇P₁
detector.)
"""

from __future__ import annotations

from repro.core.diner import DinerActor


class NoDoorwaySuspicionDiner(DinerActor):
    """Action 5 without the suspicion substitute: acks only."""

    def _try_enter_doorway(self) -> bool:
        for _, link in self._links_in_order():
            if not link.ack:
                return False
        self.inside = True
        self.trace.doorway_change(self.now, self.pid, True)
        for _, link in self._links_in_order():
            link.ack = False
            link.replied = False
        return True


class NoForkSuspicionDiner(DinerActor):
    """Action 9 without the suspicion substitute: forks only."""

    def _try_eat(self) -> bool:
        for _, link in self._links_in_order():
            if not link.fork:
                return False
        # Delegate the shared entry bookkeeping to the real Action 9; with
        # every fork in hand its guard passes regardless of suspicion.
        return super()._try_eat()
