"""Baseline and comparison algorithms — the classical-DME zoo.

* :mod:`choy_singh` — the original asynchronous doorway algorithm
  (crash-oblivious; starves once anything crashes) and the no-ack-throttle
  ablation of Algorithm 1;
* :mod:`fork_priority` — forks-only static priority (no doorway;
  unbounded overtaking, starves under saturation);
* :mod:`edge_reversal` — Chandy–Misra acyclic-orientation scheduling
  (perpetual exclusion with zero request traffic; a crash freezes the
  orientation in its neighborhood);
* :mod:`perfect_dining` — Algorithm 1 over the perfect detector P
  (perpetual weak exclusion; the stronger-oracle comparison point);
* :mod:`bakery` — Lamport's bakery over message passing (FCFS in ticket
  order, but unbounded ticket numbers ⇒ unbounded message bits under the
  Section 7 accounting);
* :mod:`ricart_agrawala` — request/reply deferral with Lamport clocks
  (2 messages per edge per session; crash-oblivious by construction);
* :mod:`lehmann_rabin` — randomized fork-order dining (symmetric and
  oracle-free; progress only with probability 1, judged over seed
  ensembles);
* :mod:`messages` — the wire vocabulary the bakery / Ricart–Agrawala /
  Lehmann–Rabin diners speak;
* :mod:`bakeoff` — the comparative harness racing the whole zoo through
  one verdict pipeline (``repro bakeoff``; imported on demand, not here).
"""

from repro.baselines.ablations import NoDoorwaySuspicionDiner, NoForkSuspicionDiner
from repro.baselines.bakery import BakeryDiner, bakery_table
from repro.baselines.choy_singh import ChoySinghDiner, choy_singh_table
from repro.baselines.edge_reversal import EdgeReversalDiner, edge_reversal_table
from repro.baselines.fork_priority import ForkPriorityDiner, fork_priority_table
from repro.baselines.lehmann_rabin import LehmannRabinDiner, lehmann_rabin_table
from repro.baselines.perfect_dining import perfect_dining_table
from repro.baselines.ricart_agrawala import RicartAgrawalaDiner, ricart_agrawala_table

__all__ = [
    "BakeryDiner",
    "ChoySinghDiner",
    "EdgeReversalDiner",
    "ForkPriorityDiner",
    "LehmannRabinDiner",
    "NoDoorwaySuspicionDiner",
    "NoForkSuspicionDiner",
    "RicartAgrawalaDiner",
    "bakery_table",
    "choy_singh_table",
    "edge_reversal_table",
    "fork_priority_table",
    "lehmann_rabin_table",
    "perfect_dining_table",
    "ricart_agrawala_table",
]
