"""Baseline and comparison algorithms.

* :mod:`choy_singh` — the original asynchronous doorway algorithm
  (crash-oblivious; starves once anything crashes) and the no-ack-throttle
  ablation of Algorithm 1;
* :mod:`fork_priority` — forks-only static priority (no doorway;
  unbounded overtaking);
* :mod:`perfect_dining` — Algorithm 1 over the perfect detector P
  (perpetual weak exclusion; the stronger-oracle comparison point).
"""

from repro.baselines.ablations import NoDoorwaySuspicionDiner, NoForkSuspicionDiner
from repro.baselines.choy_singh import ChoySinghDiner, choy_singh_table
from repro.baselines.edge_reversal import EdgeReversalDiner, edge_reversal_table
from repro.baselines.fork_priority import ForkPriorityDiner, fork_priority_table
from repro.baselines.perfect_dining import perfect_dining_table

__all__ = [
    "ChoySinghDiner",
    "EdgeReversalDiner",
    "ForkPriorityDiner",
    "NoDoorwaySuspicionDiner",
    "NoForkSuspicionDiner",
    "choy_singh_table",
    "edge_reversal_table",
    "fork_priority_table",
    "perfect_dining_table",
]
