"""Thirst workloads: per-session bottle demands.

Drinking philosophers (Chandy & Misra 1984) generalize dining: each
session needs only a *subset* of the shared resources ("bottles", one per
conflict edge), and neighbors whose current demands don't intersect may
drink simultaneously.  A :class:`ThirstWorkload` extends the dining
workload contract with :meth:`bottles`, sampled once per session.

Dining is the special case where every session demands every incident
bottle (:class:`AlwaysAllBottles`).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.core.workload import Workload
from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.rng import RandomStreams
from repro.sim.time import Duration, validate_duration


class ThirstWorkload(Workload):
    """Workload contract for drinking sessions."""

    def bottles(
        self, pid: ProcessId, graph: ConflictGraph, streams: RandomStreams
    ) -> FrozenSet[ProcessId]:
        """Neighbors whose shared bottle this session needs.

        Called exactly once per thirsty session, at its start.
        """
        raise NotImplementedError


class RandomThirst(ThirstWorkload):
    """Each session wants each incident bottle independently with ``demand``.

    ``demand = 1.0`` degenerates to dining; small values create the sparse
    conflicts where drinking's extra concurrency shows.
    """

    def __init__(
        self,
        *,
        demand: float = 0.5,
        drink_time: Duration = 1.0,
        think_time: Duration = 0.01,
    ) -> None:
        if not 0.0 <= demand <= 1.0:
            raise ConfigurationError(f"demand must be in [0, 1], got {demand!r}")
        self.demand = float(demand)
        self.drink_time = validate_duration(drink_time, name="drink_time", allow_zero=False)
        self.think_time = validate_duration(think_time, name="think_time", allow_zero=False)

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        return self.think_time

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self.drink_time

    def bottles(
        self, pid: ProcessId, graph: ConflictGraph, streams: RandomStreams
    ) -> FrozenSet[ProcessId]:
        rng = streams.stream(f"thirst/{pid}")
        return frozenset(
            nbr for nbr in graph.neighbors(pid) if rng.random() < self.demand
        )


class AlwaysAllBottles(ThirstWorkload):
    """Dining-as-drinking: every session needs every incident bottle."""

    def __init__(self, *, drink_time: Duration = 1.0, think_time: Duration = 0.01) -> None:
        self.drink_time = validate_duration(drink_time, name="drink_time", allow_zero=False)
        self.think_time = validate_duration(think_time, name="think_time", allow_zero=False)

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        return self.think_time

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self.drink_time

    def bottles(
        self, pid: ProcessId, graph: ConflictGraph, streams: RandomStreams
    ) -> FrozenSet[ProcessId]:
        return frozenset(graph.neighbors(pid))


class ScriptedThirst(ThirstWorkload):
    """Exact bottle sets per session, recycling the last entry.

    ``demands[pid]`` is a sequence of iterables of neighbor ids.  Processes
    absent from the script think forever.
    """

    def __init__(
        self,
        demands,
        *,
        drink_time: Duration = 1.0,
        think_time: Duration = 0.01,
        sessions_per_process: Optional[int] = None,
    ) -> None:
        self._demands = {
            pid: [frozenset(group) for group in groups] for pid, groups in demands.items()
        }
        for pid, groups in self._demands.items():
            if not groups:
                raise ConfigurationError(f"empty demand script for process {pid}")
        self._cursor = {pid: 0 for pid in self._demands}
        self._sessions_left = (
            {pid: sessions_per_process for pid in self._demands}
            if sessions_per_process is not None
            else None
        )
        self.drink_time = validate_duration(drink_time, name="drink_time", allow_zero=False)
        self.think_time = validate_duration(think_time, name="think_time", allow_zero=False)

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        if pid not in self._demands:
            return None
        if self._sessions_left is not None:
            if self._sessions_left[pid] <= 0:
                return None
            self._sessions_left[pid] -= 1
        return self.think_time

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self.drink_time

    def bottles(
        self, pid: ProcessId, graph: ConflictGraph, streams: RandomStreams
    ) -> FrozenSet[ProcessId]:
        groups = self._demands.get(pid)
        if groups is None:
            return frozenset()
        index = min(self._cursor[pid], len(groups) - 1)
        self._cursor[pid] += 1
        chosen = groups[index]
        unknown = chosen - set(graph.neighbors(pid))
        if unknown:
            raise ConfigurationError(
                f"session demand of {pid} names non-neighbors {sorted(unknown)}"
            )
        return chosen
