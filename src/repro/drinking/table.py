"""Assembly helper for drinking runs."""

from __future__ import annotations

from typing import Optional

from repro.core.table import DiningTable
from repro.drinking.diner import DrinkingDiner
from repro.drinking.workload import RandomThirst, ThirstWorkload
from repro.graphs.conflict import ConflictGraph


def drinking_table(
    graph: ConflictGraph,
    *,
    workload: Optional[ThirstWorkload] = None,
    **table_kwargs,
) -> DiningTable:
    """A DiningTable whose diners are drinking philosophers.

    Accepts the usual :class:`~repro.core.table.DiningTable` keyword
    arguments except ``diner_factory`` and ``workload`` (which must be a
    :class:`~repro.drinking.workload.ThirstWorkload`; default
    :class:`~repro.drinking.workload.RandomThirst`).
    """
    if "diner_factory" in table_kwargs:
        raise TypeError("drinking_table fixes diner_factory; do not pass it")
    return DiningTable(
        graph,
        diner_factory=DrinkingDiner,
        workload=workload if workload is not None else RandomThirst(),
        **table_kwargs,
    )
