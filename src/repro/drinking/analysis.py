"""Analysis for drinking-philosopher traces.

Drinking scopes exclusion per bottle: two neighbors drinking
simultaneously is a violation only when **both** of their active sessions
demanded the shared bottle.  These helpers reconstruct per-meal demands
from the :class:`~repro.drinking.diner.ThirstDeclared` records and
measure both the scoped violations and the concurrency payoff
(time-averaged simultaneous drinkers), which is drinking's reason to
exist.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Tuple

from repro.drinking.diner import ThirstDeclared
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.time import Instant
from repro.trace.analysis import ExclusionViolation, eating_intervals
from repro.trace.recorder import TraceRecorder


def demand_at(
    trace: TraceRecorder, pid: ProcessId, time: Instant
) -> FrozenSet[ProcessId]:
    """Bottle demand of the session ``pid`` started at or before ``time``."""
    demand: FrozenSet[ProcessId] = frozenset()
    for record in trace.of_type(ThirstDeclared):
        if record.pid != pid or record.time > time:
            continue
        demand = record.bottles
    return demand


def drinking_violations(
    trace: TraceRecorder, graph: ConflictGraph, *, horizon: Instant = math.inf
) -> List[ExclusionViolation]:
    """Overlapping meals of neighbors that both demanded the shared bottle."""
    meals = {pid: eating_intervals(trace, pid, horizon=horizon) for pid in graph.nodes}
    violations: List[ExclusionViolation] = []
    for a, b in sorted(graph.edges):
        for meal_a in meals[a]:
            if b not in demand_at(trace, a, meal_a.start):
                continue
            for meal_b in meals[b]:
                if a not in demand_at(trace, b, meal_b.start):
                    continue
                start = max(meal_a.start, meal_b.start)
                end = min(meal_a.end, meal_b.end)
                if start < end:
                    violations.append(ExclusionViolation(a, b, start, end))
    violations.sort(key=lambda v: (v.start, v.a, v.b))
    return violations


def drinking_violations_after(
    trace: TraceRecorder,
    graph: ConflictGraph,
    cutoff: Instant,
    *,
    horizon: Instant = math.inf,
) -> List[ExclusionViolation]:
    """Scoped violations overlapping ``[cutoff, horizon)`` (cf. Theorem 1)."""
    return [
        v
        for v in drinking_violations(trace, graph, horizon=horizon)
        if v.end > cutoff
    ]


def concurrency_profile(
    trace: TraceRecorder, graph: ConflictGraph, *, horizon: Instant
) -> Dict[str, float]:
    """Time-averaged and peak number of simultaneous drinkers.

    The payoff metric: with sparse demands, drinking admits adjacent
    simultaneous drinkers and the average rises above dining's
    independent-set ceiling on dense graphs.
    """
    deltas: List[Tuple[Instant, int]] = []
    for pid in graph.nodes:
        for meal in eating_intervals(trace, pid, horizon=horizon):
            deltas.append((meal.start, +1))
            deltas.append((min(meal.end, horizon), -1))
    if not deltas:
        return {"mean": 0.0, "peak": 0.0}
    deltas.sort()
    area = 0.0
    peak = 0
    current = 0
    last_time = 0.0
    for time, delta in deltas:
        area += current * (time - last_time)
        current += delta
        peak = max(peak, current)
        last_time = time
    area += current * max(0.0, horizon - last_time)
    return {"mean": area / horizon if horizon > 0 else 0.0, "peak": float(peak)}


def adjacent_simultaneous_drinks(
    trace: TraceRecorder, graph: ConflictGraph, *, horizon: Instant = math.inf
) -> int:
    """Count neighbor meal overlaps regardless of demand.

    For dining this equals the violation count; for drinking it is the
    *legal concurrency* drinking unlocked (minus any scoped violations).
    """
    meals = {pid: eating_intervals(trace, pid, horizon=horizon) for pid in graph.nodes}
    count = 0
    for a, b in sorted(graph.edges):
        for meal_a in meals[a]:
            for meal_b in meals[b]:
                if max(meal_a.start, meal_b.start) < min(meal_a.end, meal_b.end):
                    count += 1
    return count
