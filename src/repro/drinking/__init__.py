"""Drinking philosophers: the paper's dining layer lifted to per-session
resource subsets (library extension; see :mod:`repro.drinking.diner`)."""

from repro.drinking.analysis import (
    adjacent_simultaneous_drinks,
    concurrency_profile,
    demand_at,
    drinking_violations,
    drinking_violations_after,
)
from repro.drinking.diner import DrinkingDiner, ThirstDeclared
from repro.drinking.table import drinking_table
from repro.drinking.workload import (
    AlwaysAllBottles,
    RandomThirst,
    ScriptedThirst,
    ThirstWorkload,
)

__all__ = [
    "AlwaysAllBottles",
    "DrinkingDiner",
    "RandomThirst",
    "ScriptedThirst",
    "ThirstDeclared",
    "ThirstWorkload",
    "adjacent_simultaneous_drinks",
    "concurrency_profile",
    "demand_at",
    "drinking_table",
    "drinking_violations",
    "drinking_violations_after",
]
