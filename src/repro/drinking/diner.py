"""Wait-free drinking philosophers on top of Algorithm 1.

The classic dining→drinking lift: keep the doorway and ping-ack machinery
verbatim (they carry fairness and wait-freedom), but let each session
declare which incident bottles it actually needs and quantify the
fork-collection guards (Actions 6 and 9) over that subset only:

* a session that doesn't need the bottle shared with *j* neither requests
  *j*'s fork nor waits for it — so neighbors with disjoint demands drink
  simultaneously, which is the whole point of drinking philosophers;
* the safety carrier is unchanged: per contested bottle, the unique fork
  still arbitrates, so two neighbors *both demanding* the shared bottle
  never drink together (after ◇P₁ converges — the same eventual weak
  exclusion as dining, now scoped per bottle);
* fork *granting* (Action 7) and deferred releases (Action 10) are
  untouched: a drinker still hands non-needed forks to whoever asks,
  which keeps the phase-2 induction (and hence wait-freedom) intact.

Sessions record their demand in the trace (:class:`ThirstDeclared`), and
:mod:`repro.drinking.analysis` scopes the exclusion check accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.diner import DinerActor, EatCallback
from repro.core.messages import Fork, ForkRequest
from repro.core.workload import Workload
from repro.detectors.base import FailureDetector
from repro.drinking.workload import ThirstWorkload
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.time import Instant
from repro.trace.recorder import TraceRecorder


@dataclass(frozen=True)
class ThirstDeclared:
    """Trace record: a thirsty session began, demanding ``bottles``."""

    time: Instant
    pid: ProcessId
    bottles: FrozenSet[ProcessId]


class DrinkingDiner(DinerActor):
    """Algorithm 1 with per-session bottle demands."""

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
    ) -> None:
        if not isinstance(workload, ThirstWorkload):
            raise ConfigurationError(
                "DrinkingDiner needs a ThirstWorkload (it samples per-session bottles)"
            )
        super().__init__(pid, graph, coloring, detector, workload, trace, on_eat=on_eat)
        self.current_bottles: FrozenSet[ProcessId] = frozenset()

    # ------------------------------------------------------------------
    # Session start: sample the demand
    # ------------------------------------------------------------------
    def _become_hungry(self) -> None:
        if not self.is_thinking:
            return
        self.current_bottles = self.workload.bottles(self.pid, self.graph, self.streams)
        self.trace.record(ThirstDeclared(self.now, self.pid, self.current_bottles))
        super()._become_hungry()

    # ------------------------------------------------------------------
    # Phase 2, scoped to the session's demand
    # ------------------------------------------------------------------
    def _request_missing_forks(self) -> bool:
        """Action 6, restricted: spend tokens only on needed bottles."""
        fired = False
        for neighbor, link in self._links_in_order():
            if neighbor in self.current_bottles and link.token and not link.fork:
                self.send(neighbor, ForkRequest(self.pid, self.color))
                link.token = False
                fired = True
        return fired

    def _on_fork_request(self, src: ProcessId, requester_color: int) -> None:
        """Action 7, refined: bottles outside the current demand are granted.

        A session only insists on the bottles it declared; deferring the
        others (as dining does) would serialize neighbors with disjoint
        demands through the doorway for nothing.  Safety is untouched —
        for a *contested* bottle both sessions demand, the dining rule
        (grant only when outside, or hungry with lower color) still
        arbitrates.
        """
        link = self.links[src]
        if not link.fork:
            from repro.errors import ForkDuplicationError

            raise ForkDuplicationError(
                f"t={self.now}: fork request from {src} reached {self.pid}, "
                "which does not hold the fork (Lemma 1.1 violated)"
            )
        link.token = True
        uncontested = self.inside and src not in self.current_bottles
        if not self.inside or uncontested or (self.is_hungry and self.color < requester_color):
            self.send(src, Fork(self.pid))
            link.fork = False

    def _try_eat(self) -> bool:
        """Action 9, restricted: hold-or-suspect only the needed bottles."""
        for neighbor, link in self._links_in_order():
            if neighbor not in self.current_bottles:
                continue
            if not link.fork and not self.module.suspects(neighbor):
                return False
        # Reuse the dining entry bookkeeping (state change, timers, hook);
        # the full-guard parent check passes because every *needed* fork is
        # accounted for and it never re-examines the others here.
        return self._enter_drinking()

    def _enter_drinking(self) -> bool:
        from repro.core.state import DinerState

        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self._exit_timer = self.set_timer(duration, self._exit, label=f"exit@{self.pid}")
        if self.on_eat is not None:
            self.on_eat(self)
        return True
