"""Exhaustive small-scope exploration of the real diner implementation.

The discrete-event simulator samples *one* schedule per seed; the proofs
quantify over *all* admissible asynchronous schedules.  This module
closes that gap for small configurations: it drives the actual
:class:`~repro.core.diner.DinerActor` objects (no model twin that could
drift from the code) through **every** reachable interleaving of message
deliveries and timer firings, subject only to the paper's channel
assumption (per-channel FIFO delivery), and checks in every reachable
state that

* **fork/token uniqueness** holds (Lemma 1.2),
* **no two neighbors eat simultaneously** — with a crash-free run and the
  null detector, Algorithm 1's weak exclusion is *perpetual*, so this is
  a safety property of every state, not just a suffix,
* **no deadlock**: a state with no enabled event leaves no diner hungry.

State space is made finite by bounding hungry sessions per diner
(``max_sessions``); exploration is DFS with canonical-state
deduplication.  Branching is **replay-based**: each node stores only its
choice path and is rebuilt from the root by re-firing it — world
construction and firing are deterministic, and replay sidesteps the
classic ``copy.deepcopy`` trap where copied timer closures still point at
the original actors.  Mutation tests in the suite confirm the explorer
detects seeded bugs (an eager fork grant, a dropped doorway reset), so
"0 violations" is a meaningful verdict, not a silent pass.

This is bounded model checking of the implementation itself — small
scopes only (two to four diners), which is exactly where interleaving
bugs live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.checks.properties import FORK_UNIQUENESS, WX_SAFETY, probe_violations
from repro.checks.verdict import FAIL, PASS, PropertyVerdict
from repro.checks.verdict import Verdict as CheckVerdict
from repro.checks.verdict import Violation as CheckViolation
from repro.core.diner import DinerActor
from repro.core.workload import AlwaysHungry
from repro.detectors.base import NullDetector
from repro.errors import ConfigurationError, ForkDuplicationError, InvariantViolation
from repro.graphs.coloring import Coloring, greedy_coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.rng import RandomStreams
from repro.trace.recorder import TraceRecorder

#: checks-property name -> the explorer's historical violation kinds.
_KIND_OF_PROP = {WX_SAFETY: "exclusion", FORK_UNIQUENESS: "fork-duplication"}
_PROP_OF_KIND = {
    "exclusion": WX_SAFETY,
    "fork-duplication": FORK_UNIQUENESS,
    "deadlock": "deadlock-freedom",
}


# ----------------------------------------------------------------------
# Minimal pluggable world: a choice-driven kernel and FIFO micro-network
# ----------------------------------------------------------------------
class _Handle:
    """Cancellable stand-in for a kernel event handle."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class _Timer:
    label: str
    action: Callable[[], None]
    handle: _Handle = field(default_factory=_Handle)


class _ChoiceKernel:
    """Duck-typed Simulator: scheduling queues choices instead of times.

    Virtual time is meaningless under pure asynchrony; ``now`` is frozen
    at 0 and every scheduled callback becomes an explorable choice.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.timers: List[_Timer] = []
        self.streams = RandomStreams(0)  # drawn only by workload durations

    def schedule_after(self, delay, action, *, priority=None, label=""):
        timer = _Timer(label=label, action=action)
        self.timers.append(timer)
        return timer.handle

    def schedule_at(self, time, action, *, priority=None, label=""):
        return self.schedule_after(0.0, action, priority=priority, label=label)


class _FifoMicroNet:
    """Per-directed-channel FIFO queues; delivery is an explorable choice."""

    def __init__(self) -> None:
        self.actors: Dict[ProcessId, DinerActor] = {}
        self.channels: Dict[Tuple[ProcessId, ProcessId], List[object]] = {}

    def register(self, actor: DinerActor) -> None:
        self.actors[actor.pid] = actor

    def send(self, src: ProcessId, dst: ProcessId, message) -> None:
        self.channels.setdefault((src, dst), []).append(message)

    def deliver_head(self, channel: Tuple[ProcessId, ProcessId]) -> None:
        message = self.channels[channel].pop(0)
        if not self.channels[channel]:
            del self.channels[channel]
        src, dst = channel
        self.actors[dst].deliver(src, message)


@dataclass(frozen=True)
class Violation:
    """One property failure, with the path of event labels reaching it."""

    kind: str  # "exclusion" | "fork-duplication" | "deadlock" | ...
    detail: str
    path: Tuple[str, ...]


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    states_visited: int
    events_fired: int
    terminal_states: int
    max_depth: int
    violations: List[Violation]
    truncated: bool  # hit the max_states budget before exhausting

    @property
    def clean(self) -> bool:
        return not self.violations and not self.truncated

    def verdict(self) -> CheckVerdict:
        """This exploration as a standard checks Verdict.

        Exploration judges state properties over *all* schedules, so the
        verdict carries the three explored properties (perpetual weak
        exclusion, fork/token uniqueness, deadlock freedom) with each
        counterexample's choice path as the witness detail.
        """
        properties = {}
        for prop in sorted(set(_PROP_OF_KIND.values())):
            found = [
                CheckViolation(
                    prop=prop,
                    time=0.0,
                    detail=f"{v.detail} (path: {' ; '.join(v.path) or '<initial>'})",
                    subject=v.path,
                )
                for v in self.violations
                if _PROP_OF_KIND.get(v.kind) == prop
            ]
            properties[prop] = PropertyVerdict(
                prop=prop,
                status=FAIL if found else PASS,
                violations=found,
                counters={"violations_total": float(len(found))},
            )
        verdict = CheckVerdict(properties=properties, events_observed=self.events_fired)
        for prop_verdict in verdict.properties.values():
            prop_verdict.counters["states_visited"] = float(self.states_visited)
        return verdict


class _World:
    """One exploration node: the full object graph plus the path to it."""

    def __init__(
        self,
        graph: ConflictGraph,
        coloring: Coloring,
        max_sessions: int,
        crashable: Tuple[ProcessId, ...] = (),
    ) -> None:
        self.graph = graph
        self.kernel = _ChoiceKernel()
        self.net = _FifoMicroNet()
        self.path: Tuple[str, ...] = ()
        self.detector = NullDetector(graph)
        # Crash exploration: each pid in `crashable` MAY crash — the crash
        # is one more nondeterministic choice, available at every state,
        # so the search covers a crash at every possible point of every
        # schedule.  Detection is modeled as the perfect detector: one
        # one-shot choice per correct neighbor, enabled from the crash on
        # (strong completeness = DFS covers the branches where it fires;
        # strong accuracy = no suspicion choice exists before the crash).
        self.crashable: Tuple[ProcessId, ...] = tuple(crashable)
        self.crashed_set: set = set()
        self.pending_detections: List[Tuple[ProcessId, ProcessId]] = []
        workload = AlwaysHungry(eat_time=1.0, think_time=1.0, max_sessions=max_sessions)
        trace = TraceRecorder()
        self.diners: Dict[ProcessId, DinerActor] = {}
        for pid in graph.nodes:
            diner = DinerActor(pid, graph, coloring, self.detector, workload, trace)
            diner.bind(self.kernel, self.net)
            self.net.register(diner)
            self.diners[pid] = diner
        for pid in graph.nodes:
            self.diners[pid].on_start()
            self.diners[pid].reevaluate()

    # -- choices ---------------------------------------------------------
    def enabled_choices(self) -> List[Tuple[str, str]]:
        """(kind, key) of every explorable event, deterministic order."""
        choices: List[Tuple[str, str]] = []
        for index, timer in enumerate(self.kernel.timers):
            if not timer.handle.cancelled:
                choices.append(("timer", str(index)))
        for channel in sorted(self.net.channels):
            choices.append(("deliver", f"{channel[0]}->{channel[1]}"))
        for pid in self.crashable:
            if pid not in self.crashed_set:
                choices.append(("crash", str(pid)))
        for observer, subject in self.pending_detections:
            choices.append(("detect", f"{observer}~{subject}"))
        return choices

    def fire(self, kind: str, key: str) -> str:
        """Apply one choice; returns a human-readable label."""
        if kind == "timer":
            timer = self.kernel.timers.pop(int(key))
            label = timer.label
            if not timer.handle.cancelled:
                timer.action()
            return label
        if kind == "crash":
            pid = int(key)
            self.crashed_set.add(pid)
            self.diners[pid].crash()
            for neighbor in self.graph.neighbors(pid):
                if neighbor not in self.crashed_set:
                    self.pending_detections.append((neighbor, pid))
            # A neighbor that crashes later never gets to detect.
            self.pending_detections = [
                (obs, sub)
                for obs, sub in self.pending_detections
                if obs not in self.crashed_set
            ]
            return f"crash@{pid}"
        if kind == "detect":
            observer, subject = (int(part) for part in key.split("~"))
            self.pending_detections.remove((observer, subject))
            if observer not in self.crashed_set:
                self.detector.module_for(observer).set_suspicion(subject, True)
                # The module listener requests re-evaluation through the
                # kernel; drain the resulting reevaluation timers inline so
                # suspicion effects are atomic with the detection event.
                self._drain_reevaluations()
            return f"detect {subject} at {observer}"
        src, dst = key.split("->")
        channel = (int(src), int(dst))
        message = self.net.channels[channel][0]
        self.net.deliver_head(channel)
        return f"deliver {type(message).__name__} {key}"

    def _drain_reevaluations(self) -> None:
        """Fire any reeval@ timers scheduled by request_reevaluation."""
        while True:
            pending = [
                i
                for i, t in enumerate(self.kernel.timers)
                if t.label.startswith("reeval@") and not t.handle.cancelled
            ]
            if not pending:
                return
            timer = self.kernel.timers.pop(pending[0])
            timer.action()

    # -- canonical state --------------------------------------------------
    def state_key(self) -> str:
        parts: List[str] = []
        for pid in self.graph.nodes:
            diner = self.diners[pid]
            flags = ",".join(
                f"{nbr}:{int(link.pinged)}{int(link.ack)}{int(link.deferred)}"
                f"{int(link.replied)}{int(link.fork)}{int(link.token)}"
                for nbr, link in diner._links_in_order()
            )
            suspicion = ",".join(
                str(nbr) for nbr in sorted(diner.module.suspected_neighbors())
            )
            crashed = int(diner.crashed)
            parts.append(
                f"{pid}|{diner.phase}|{int(diner.inside)}|{crashed}|{flags}|s:{suspicion}"
            )
        # Remaining session budget shapes the future: include it.
        workload = next(iter(self.diners.values())).workload
        sessions = ",".join(
            f"{pid}:{workload._sessions.get(pid, 0)}" for pid in self.graph.nodes
        )
        timers = "&".join(
            sorted(t.label for t in self.kernel.timers if not t.handle.cancelled)
        )
        channels = "&".join(
            f"{a}->{b}:" + ",".join(type(m).__name__ for m in queue)
            for (a, b), queue in sorted(self.net.channels.items())
        )
        fates = (
            ",".join(str(pid) for pid in sorted(self.crashed_set))
            + "!"
            + ",".join(f"{o}~{s}" for o, s in sorted(self.pending_detections))
        )
        return "||".join(parts) + f"##{sessions}##{timers}##{channels}##{fates}"

    # -- invariants --------------------------------------------------------
    def check(self) -> Optional[Violation]:
        """Safety in the current state, judged over live processes.

        Delegates to the canonical state check
        (:func:`repro.checks.properties.probe_violations`) with its
        perpetual-exclusion clause enabled: with a crash-free run and the
        null detector, weak exclusion is a property of every state, not
        just a suffix.  Crashed endpoints are skipped there — a crashed
        diner's frozen state is unobservable to the system.
        """
        found = probe_violations(
            sorted(self.graph.edges), self.diners, exclusion=True
        )
        if not found:
            return None
        first = found[0]
        return Violation(
            _KIND_OF_PROP.get(first.prop, first.prop),
            first.detail.replace("t=0.0: ", ""),
            self.path,
        )

    def deadlock_violation(self) -> Optional[Violation]:
        hungry = [
            pid
            for pid, diner in self.diners.items()
            if diner.is_hungry and not diner.crashed
        ]
        if hungry:
            return Violation(
                "deadlock", f"no enabled event while {hungry} are hungry", self.path
            )
        return None


def explore_dining(
    graph: ConflictGraph,
    *,
    coloring: Optional[Coloring] = None,
    max_sessions: int = 1,
    max_states: int = 200_000,
    crashable: Tuple[ProcessId, ...] = (),
    diner_mutator: Optional[Callable[[DinerActor], None]] = None,
    stop_at_first_violation: bool = True,
) -> ExplorationReport:
    """Exhaustively explore every FIFO-respecting schedule.

    ``crashable`` names processes that *may* crash: the crash becomes one
    more nondeterministic choice available at every state, and detection
    by each correct neighbor (perfect-detector semantics) becomes a
    one-shot choice from the crash on — so the search covers a crash at
    every point of every schedule, detected at every later point.

    ``diner_mutator`` is applied to every diner of the initial world —
    the hook the mutation tests use to seed a bug and confirm detection.
    """
    if len(graph) > 4:
        raise ConfigurationError(
            "exhaustive exploration is for small scopes (≤ 4 diners); "
            f"got {len(graph)}"
        )
    for pid in crashable:
        if pid not in graph:
            raise ConfigurationError(f"crashable process {pid} is not in the graph")
    chosen_coloring = coloring or greedy_coloring(graph)

    def rebuild(choice_path: Tuple[Tuple[str, str], ...]) -> Tuple["_World", Tuple[str, ...]]:
        """Deterministically reconstruct the world at a choice path."""
        world = _World(graph, chosen_coloring, max_sessions, crashable=tuple(crashable))
        if diner_mutator is not None:
            for diner in world.diners.values():
                diner_mutator(diner)
                diner.reevaluate()
        labels: List[str] = []
        for kind, choice_key in choice_path:
            labels.append(world.fire(kind, choice_key))
        return world, tuple(labels)

    report = ExplorationReport(
        states_visited=0,
        events_fired=0,
        terminal_states=0,
        max_depth=0,
        violations=[],
        truncated=False,
    )
    visited = set()
    stack: List[Tuple[Tuple[str, str], ...]] = [()]
    while stack:
        choice_path = stack.pop()
        try:
            world, labels = rebuild(choice_path)
        except InvariantViolation as exc:
            # A runtime assert (Lemma 1.1's ForkDuplicationError, a
            # channel/FIFO raise) fired mid-replay — under a seeded
            # mutant that *is* the finding, not a crash of the search.
            kind = (
                "fork-duplication"
                if isinstance(exc, ForkDuplicationError)
                else type(exc).__name__
            )
            report.violations.append(
                Violation(kind, str(exc), tuple(f"{k}:{c}" for k, c in choice_path))
            )
            report.events_fired += len(choice_path)
            if stop_at_first_violation:
                break
            continue
        report.events_fired += len(choice_path)
        key = world.state_key()
        if key in visited:
            continue
        visited.add(key)
        report.states_visited += 1
        report.max_depth = max(report.max_depth, len(choice_path))
        if report.states_visited > max_states:
            report.truncated = True
            break

        violation = world.check()
        if violation is not None:
            report.violations.append(
                Violation(violation.kind, violation.detail, labels)
            )
            if stop_at_first_violation:
                break
            continue

        choices = world.enabled_choices()
        if not choices:
            deadlock = world.deadlock_violation()
            if deadlock is not None:
                report.violations.append(
                    Violation(deadlock.kind, deadlock.detail, labels)
                )
                if stop_at_first_violation:
                    break
            else:
                report.terminal_states += 1
            continue

        for kind, choice_key in choices:
            stack.append(choice_path + ((kind, choice_key),))
    return report
