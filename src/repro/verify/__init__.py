"""Small-scope verification: exhaustive exploration of the real diners."""

from repro.verify.explore import ExplorationReport, Violation, explore_dining

__all__ = ["ExplorationReport", "Violation", "explore_dining"]
