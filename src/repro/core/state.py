"""Diner-local state (Section 3.1).

Each process keeps a trivalent dining phase, a doorway flag, a static
color, and six booleans per neighbor:

========== =====================================================
``pinged``   a ping to that neighbor is pending (sent, unanswered)
``ack``      an ack was received this hungry session, pre-doorway
``deferred`` a ping from that neighbor awaits our doorway exit
``replied``  an ack was already granted this hungry session
``fork``     we hold the shared fork
``token``    we hold the request token
========== =====================================================

:func:`local_state_bits` reproduces the Section 7 space bound
``log₂(δ) + 6δ + c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.trace.events import EATING, HUNGRY, THINKING


class DinerState(Enum):
    """The trivalent dining phase; values match the trace phase names."""

    THINKING = THINKING
    HUNGRY = HUNGRY
    EATING = EATING

    @property
    def phase(self) -> str:
        return self.value


@dataclass(slots=True)
class NeighborLinks:
    """The six per-neighbor booleans of Algorithm 1.

    ``fork``/``token`` initial placement follows Section 3.1: the fork
    starts at the higher-color endpoint, the token at the lower-color one
    (so exactly one of the two booleans is initially true on each side).
    """

    pinged: bool = False
    ack: bool = False
    deferred: bool = False
    replied: bool = False
    fork: bool = False
    token: bool = False

    @staticmethod
    def initial(own_color: int, neighbor_color: int) -> "NeighborLinks":
        if own_color == neighbor_color:
            raise ValueError(
                f"neighbors share color {own_color}; priorities must differ"
            )
        higher = own_color > neighbor_color
        return NeighborLinks(fork=higher, token=not higher)

    def deferring_fork_request(self) -> bool:
        """True when a fork request from this neighbor awaits our exit.

        The paper encodes a deferred fork request as ``token ∧ fork``: we
        hold both the fork and the (received) token.
        """
        return self.token and self.fork


def local_state_bits(degree: int, n_colors: int) -> int:
    """Section 7 space accounting: ``log₂(δ) + 6δ + c`` bits per process.

    ``n_colors`` is the number of distinct colors in use (O(δ) for the
    provided coloring algorithms); the constant covers the 2-bit phase and
    the doorway flag.
    """
    color_bits = max(1, math.ceil(math.log2(max(n_colors, 2))))
    return color_bits + 6 * degree + 3
