"""Algorithm 1: wait-free, eventually 2-bounded dining under ◇WX.

This is the paper's contribution, implemented action-for-action from the
pseudocode in Section 3.  Each :class:`DinerActor` is one philosopher; its
guarded commands are re-evaluated whenever local state can have changed
(message receipt, timer, detector output flip), which gives the weak
fairness the proofs assume.

Mapping from the pseudocode:

========  ==========================================================
Action 1  :meth:`_become_hungry` (driven by the workload)
Action 2  :meth:`_request_missing_acks`  — ping for each missing ack
Action 3  :meth:`_on_ping`  — grant, throttle (``replied``), or defer
Action 4  :meth:`_on_ack`   — record ack if still hungry and outside
Action 5  :meth:`_try_enter_doorway` — acks/suspicion for all neighbors
Action 6  :meth:`_request_missing_forks` — spend tokens on requests
Action 7  :meth:`_on_fork_request` — grant by doorway/priority, else defer
Action 8  :meth:`_on_fork`  — receive a fork
Action 9  :meth:`_try_eat`  — forks/suspicion for all neighbors
Action 10 :meth:`_exit`     — exit, release deferred forks and acks
========  ==========================================================

Two notes on fidelity:

* Action 5's guard is written in the paper as
  ``hungry ∧ ∀j (ack ∨ suspect)``; we additionally require ``¬inside``,
  which is implicit in the paper's phase structure (acks are only
  collected outside and are reset on entry, but a diner whose neighbors
  are *all* suspected would otherwise re-trigger the entry bookkeeping).
* Lemma 1.1 (a fork request only ever arrives at the current fork holder)
  is asserted at runtime in :meth:`_on_fork_request`; a violation raises
  :class:`~repro.errors.ForkDuplicationError` immediately rather than
  silently duplicating a fork.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.messages import Ack, Fork, ForkRequest, Ping
from repro.core.state import DinerState, NeighborLinks
from repro.core.substrate import Actor
from repro.core.workload import Workload
from repro.detectors.base import DetectorModule, FailureDetector
from repro.errors import ConfigurationError, ForkDuplicationError
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.trace.recorder import TraceRecorder

EatCallback = Callable[["DinerActor"], None]


class DinerActor(Actor):
    """One philosopher of Algorithm 1.

    Parameters
    ----------
    pid, graph, coloring:
        The diner's identity, its conflict graph, and the static priority
        coloring (higher color wins fork conflicts).
    detector:
        The ◇P₁ family; this diner uses (and subscribes to) its own
        module.  A :class:`~repro.detectors.base.NullDetector` yields the
        purely asynchronous behaviour.
    workload:
        Supplies think and eat durations (Action 1 and the finite-eating
        assumption).
    trace:
        Run-wide event log.
    on_eat:
        Optional callback invoked at the start of every eating session —
        the hook the distributed daemon uses to run one step of a hosted
        protocol inside the critical section.
    """

    def __init__(
        self,
        pid: ProcessId,
        graph: ConflictGraph,
        coloring: Coloring,
        detector: FailureDetector,
        workload: Workload,
        trace: TraceRecorder,
        *,
        on_eat: Optional[EatCallback] = None,
        neighbors: Optional[tuple] = None,
    ) -> None:
        super().__init__(pid)
        if pid not in graph:
            raise ConfigurationError(f"process {pid} is not in the conflict graph")
        self.graph = graph
        self.color = int(coloring[pid])
        self.coloring = coloring
        self.detector = detector
        self.module: DetectorModule = detector.module_for(pid)
        self.workload = workload
        self.trace = trace
        self.on_eat = on_eat
        # Push-style dirty sinks, installed by a check adapter (None =
        # no checks attached, the branch costs one load).  The diner
        # reports exactly the state it mutated — ``on_dirty_link`` with
        # the ``(pid, neighbor)`` whose ack/replied/deferred flags
        # changed, ``on_dirty_fork`` with the sorted edge whose fork or
        # token moved — so the adapter never has to reverse-engineer
        # dirt from message kinds on the wire.
        self.on_dirty_link: Optional[Callable] = None
        self.on_dirty_fork: Optional[Callable] = None

        self.state = DinerState.THINKING
        self.inside = False
        # ``neighbors`` overrides the graph's adjacency: dynamic runs
        # wire diners against the *current topology view* while the
        # ``graph`` they carry is the union over all epochs (so colors
        # and detector scopes cover every edge that will ever exist).
        # Static runs pass nothing and behave exactly as before.
        if neighbors is None:
            initial_neighbors = graph.neighbors(pid)
        else:
            initial_neighbors = tuple(sorted(int(n) for n in neighbors))
            for neighbor in initial_neighbors:
                if neighbor not in graph:
                    raise ConfigurationError(
                        f"diner {pid} wired to unknown neighbor {neighbor}"
                    )
        self.links: Dict[ProcessId, NeighborLinks] = {}
        for neighbor in initial_neighbors:
            neighbor_color = int(coloring[neighbor])
            self.links[neighbor] = NeighborLinks.initial(self.color, neighbor_color)
        # Neighbor iteration order is fixed for the life of the actor;
        # materializing it once replaces a generator + two dict lookups on
        # every guard scan (Actions 2/5/6/9 walk this list constantly).
        self._ordered_links = [
            (neighbor, self.links[neighbor]) for neighbor in initial_neighbors
        ]
        # Dynamic-membership bookkeeping, both empty for a static run:
        # ``_departed`` holds neighbors that left the system (their
        # missing acks/forks are substituted in Actions 5/9 exactly like
        # suspicion — the ◇P₁ path — until they rejoin); ``_former``
        # holds pids whose conflict edge to us was removed, so their
        # stale in-flight traffic is dropped instead of rejected.
        self._departed: set = set()
        self._former: set = set()
        # Messages carry only static fields (sender id, static color), so
        # each diner sends the *same* four frozen instances for its entire
        # life — interning them removes one allocation per send.
        self._msg_ping = Ping(pid)
        self._msg_ack = Ack(pid)
        self._msg_fork = Fork(pid)
        self._msg_fork_request = ForkRequest(pid, self.color)
        # Timer labels are as static as the messages; the fire wrappers
        # are bound methods instead of per-call closures (Actor.set_timer
        # builds a fresh closure every call — twice per meal here).
        self._hunger_label = f"hunger@{pid}"
        self._exit_label = f"exit@{pid}"

        self._detector_agent = detector.agent_for(pid)
        self._exit_timer = None
        self.hungry_sessions_started = 0
        self.meals_eaten = 0

    # ------------------------------------------------------------------
    # Introspection (used by invariant checkers and experiments)
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def is_thinking(self) -> bool:
        return self.state is DinerState.THINKING

    @property
    def is_hungry(self) -> bool:
        return self.state is DinerState.HUNGRY

    @property
    def is_eating(self) -> bool:
        return self.state is DinerState.EATING

    def holds_fork(self, neighbor: ProcessId) -> bool:
        link = self.links.get(neighbor)
        return link is not None and link.fork

    def holds_token(self, neighbor: ProcessId) -> bool:
        link = self.links.get(neighbor)
        return link is not None and link.token

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.module.subscribe(self._on_suspicion_change)
        if self._detector_agent is not None:
            self._detector_agent.start(self)
        self._schedule_next_hunger()

    def on_crash(self) -> None:
        self.trace.crash(self.now, self.pid)

    def _on_suspicion_change(self, neighbor: ProcessId, suspected: bool) -> None:
        self.trace.suspicion_change(self.now, self.pid, neighbor, suspected)
        # Suspicion feeds the guards of Actions 5 and 9.
        self.request_reevaluation()

    def _schedule_next_hunger(self) -> None:
        duration = self.workload.think_duration(self.pid, self.streams)
        if duration is None:
            return  # thinks forever (permitted by the dining spec)
        self.substrate.set_timer(duration, self._hunger_fire, label=self._hunger_label)

    def _hunger_fire(self) -> None:
        # Pre-built timer body (what Actor.set_timer would wrap on the fly).
        if self.crashed:
            return
        self._become_hungry()
        self.reevaluate()

    def _exit_fire(self) -> None:
        if self.crashed:
            return
        self._exit()
        self.reevaluate()

    # ------------------------------------------------------------------
    # External service hooks (hosted services, e.g. repro.locks)
    # ------------------------------------------------------------------
    def become_hungry_now(self) -> None:
        """Drive Action 1 on demand: a hosted service has work queued.

        Action 1 is external by specification ("a thinking process may
        become hungry at any time"), so a service nudging it preserves
        the algorithm exactly; the guard still applies and this is a
        no-op unless the diner is thinking.  Must be called from the
        substrate's event context (a timer/soon callback), never from
        inside another action of this diner.
        """
        if self.crashed:
            return
        self._become_hungry()
        self.reevaluate()

    def finish_eating_early(self) -> bool:
        """Run Action 10 now, ahead of the eat timer.

        Used by hosted services when the critical section's client work
        completes before the scheduled eat duration (a lease released
        before its TTL).  Cancels the pending exit timer and exits
        eating; returns ``False`` (doing nothing) unless eating.
        """
        if self.crashed or not self.is_eating:
            return False
        timer = self._exit_timer
        if timer is not None:
            timer.cancel()
            self._exit_timer = None
        self._exit()
        self.reevaluate()
        return True

    # ------------------------------------------------------------------
    # Dynamic membership hooks (driven by the assembly layer's
    # membership-delta application, never by the algorithm itself)
    # ------------------------------------------------------------------
    def _reset_link(self, neighbor: ProcessId, link: NeighborLinks) -> None:
        """Rewind one link to its hygienic Section 3.1 initial state."""
        fresh = NeighborLinks.initial(self.color, int(self.coloring[neighbor]))
        link.pinged = fresh.pinged
        link.ack = fresh.ack
        link.deferred = fresh.deferred
        link.replied = fresh.replied
        link.fork = fresh.fork
        link.token = fresh.token

    def neighbor_left(self, neighbor: ProcessId) -> None:
        """A neighbor left the system: substitute for it like a suspect.

        The link state is kept (the neighbor may rejoin); Actions 5 and 9
        treat the departed pid exactly as a permanently suspected one, so
        any fork stranded at the leaver is reclaimed through the same
        substitution path a crash uses.
        """
        if neighbor not in self.links:
            return
        self._departed.add(neighbor)
        self.request_reevaluation()

    def neighbor_rejoined(self, neighbor: ProcessId) -> None:
        """A departed neighbor came back: rebuild the edge hygienically.

        Both endpoints reset the shared link to its initial fork/token
        placement at the same instant (the delta's CONTROL event), so the
        edge again holds exactly one fork and one token.
        """
        self._departed.discard(neighbor)
        self._former.discard(neighbor)
        link = self.links.get(neighbor)
        if link is None:
            return
        self._reset_link(neighbor, link)
        self.request_reevaluation()

    def add_neighbor(self, neighbor: ProcessId) -> None:
        """A conflict edge to ``neighbor`` now exists (join or add_edge)."""
        self._former.discard(neighbor)
        self._departed.discard(neighbor)
        link = self.links.get(neighbor)
        if link is not None:
            # Edge re-added after a removal: hygienic rebuild.
            self._reset_link(neighbor, link)
            self.request_reevaluation()
            return
        link = NeighborLinks.initial(self.color, int(self.coloring[neighbor]))
        self.links[neighbor] = link
        ordered = self._ordered_links
        at = len(ordered)
        for index, (other, _) in enumerate(ordered):
            if other > neighbor:
                at = index
                break
        ordered.insert(at, (neighbor, link))
        self.request_reevaluation()

    def remove_neighbor(self, neighbor: ProcessId) -> None:
        """The conflict edge to ``neighbor`` was removed from the topology."""
        if neighbor not in self.links:
            return
        del self.links[neighbor]
        self._ordered_links = [
            pair for pair in self._ordered_links if pair[0] != neighbor
        ]
        self._former.add(neighbor)
        self._departed.discard(neighbor)
        self.request_reevaluation()

    # ------------------------------------------------------------------
    # Action 1: become hungry
    # ------------------------------------------------------------------
    def _become_hungry(self) -> None:
        if not self.is_thinking:
            return
        self._set_state(DinerState.HUNGRY)
        self.hungry_sessions_started += 1

    # ------------------------------------------------------------------
    # Guarded commands (Actions 2, 5, 6, 9) — run to fixpoint
    # ------------------------------------------------------------------
    def reevaluate(self) -> None:
        """Fire every enabled guarded command until none is enabled.

        The loop is bounded: Action 2 sets ``pinged`` flags monotonically
        within a session, Action 5 fires at most once per session, Action 6
        consumes tokens, and Action 9 leaves the hungry state.
        """
        if self.crashed:
            return
        hungry = DinerState.HUNGRY
        while self.state is hungry:
            if not self.inside:
                fired = self._request_missing_acks()  # Action 2
                fired |= self._try_enter_doorway()  # Action 5
            else:
                fired = self._request_missing_forks()  # Action 6
                fired |= self._try_eat()  # Action 9
            if not fired:
                return

    def _request_missing_acks(self) -> bool:
        """Action 2: ping every neighbor whose ack is missing and unpinged."""
        fired = False
        ping = self._msg_ping
        # Direct transport call: the network re-checks crashed senders
        # with the same error Actor.send raises, so skipping the
        # delegation frame loses nothing but the frame.
        send = self._substrate.send
        pid = self.pid
        for neighbor, link in self._ordered_links:
            if not link.pinged and not link.ack:
                send(pid, neighbor, ping)
                link.pinged = True
                fired = True
        return fired

    def _try_enter_doorway(self) -> bool:
        """Action 5: enter once every neighbor acked or is suspected."""
        # Membership on the module's live suspected set: neighbors are in
        # scope by construction, so the checked ``suspects`` call adds
        # nothing but a frame per neighbor per scan.  Departed neighbors
        # substitute exactly like suspected ones (the ◇P₁ path); the set
        # is empty on static runs, so the merge never happens there.
        suspected = self.module.suspected
        if self._departed:
            suspected = suspected | self._departed
        for neighbor, link in self._ordered_links:
            if not link.ack and neighbor not in suspected:
                return False
        self.inside = True
        self.trace.doorway_change(self._substrate.now, self.pid, True)
        for _, link in self._ordered_links:
            link.ack = False
            link.replied = False
        return True

    def _request_missing_forks(self) -> bool:
        """Action 6: spend each held token on a request for a missing fork."""
        fired = False
        request = self._msg_fork_request
        send = self._substrate.send
        pid = self.pid
        for neighbor, link in self._ordered_links:
            if link.token and not link.fork:
                send(pid, neighbor, request)
                link.token = False
                fired = True
        return fired

    def _try_eat(self) -> bool:
        """Action 9: eat once every neighbor's fork is held or it is suspected."""
        suspected = self.module.suspected
        if self._departed:
            suspected = suspected | self._departed
        for neighbor, link in self._ordered_links:
            if not link.fork and neighbor not in suspected:
                return False
        self._set_state(DinerState.EATING)
        self.meals_eaten += 1
        duration = self.workload.eat_duration(self.pid, self.streams)
        self._exit_timer = self.substrate.set_timer(
            duration, self._exit_fire, label=self._exit_label
        )
        if self.on_eat is not None:
            self.on_eat(self)
        return True

    # ------------------------------------------------------------------
    # Message handlers (Actions 3, 4, 7, 8)
    # ------------------------------------------------------------------
    def on_message(self, src: ProcessId, message) -> None:
        agent = self._detector_agent
        if agent is not None and agent.wants(message):
            agent.on_message(src, message)
            return
        if src not in self.links:
            if src in self._former:
                # Stale traffic from before the edge to ``src`` was
                # removed (or the channel fence missed it): the edge no
                # longer exists, so the message is simply discarded.
                return
            raise ConfigurationError(
                f"diner {self.pid} got {type(message).__name__} from non-neighbor {src}"
            )
        # Exact-type dispatch first (the four concrete classes cover all
        # real traffic); isinstance only for subclassed message types.
        cls = type(message)
        if cls is Ping:
            self._on_ping(src)
        elif cls is Ack:
            self._on_ack(src)
        elif cls is ForkRequest:
            self._on_fork_request(src, message.color)
        elif cls is Fork:
            self._on_fork(src)
        elif isinstance(message, Ping):
            self._on_ping(src)
        elif isinstance(message, Ack):
            self._on_ack(src)
        elif isinstance(message, ForkRequest):
            self._on_fork_request(src, message.color)
        elif isinstance(message, Fork):
            self._on_fork(src)
        else:
            raise ConfigurationError(
                f"diner {self.pid} cannot handle message {message!r}"
            )

    def _on_ping(self, src: ProcessId) -> None:
        """Action 3: grant one ack per hungry session; defer otherwise."""
        link = self.links[src]
        if self.inside or link.replied:
            link.deferred = True
        else:
            self._substrate.send(self.pid, src, self._msg_ack)
            link.replied = self.state is DinerState.HUNGRY
        sink = self.on_dirty_link
        if sink is not None:
            sink((self.pid, src))

    def _on_ack(self, src: ProcessId) -> None:
        """Action 4: an ack only counts while hungry and outside."""
        link = self.links[src]
        link.ack = self.state is DinerState.HUNGRY and not self.inside
        link.pinged = False
        sink = self.on_dirty_link
        if sink is not None:
            sink((self.pid, src))

    def _on_fork_request(self, src: ProcessId, requester_color: int) -> None:
        """Action 7: receive the token; grant the fork or defer by priority."""
        link = self.links[src]
        if not link.fork:
            # Lemma 1.1 says this is unreachable over FIFO channels; if it
            # fires, the implementation (not the paper) has a bug.
            raise ForkDuplicationError(
                f"t={self.now}: fork request from {src} reached {self.pid}, "
                "which does not hold the fork (Lemma 1.1 violated)"
            )
        link.token = True
        if not self.inside or (self.state is DinerState.HUNGRY and self.color < requester_color):
            self._substrate.send(self.pid, src, self._msg_fork)
            link.fork = False
        sink = self.on_dirty_fork
        if sink is not None:
            sink((self.pid, src) if self.pid <= src else (src, self.pid))

    def _on_fork(self, src: ProcessId) -> None:
        """Action 8: receive a fork."""
        self.links[src].fork = True
        sink = self.on_dirty_fork
        if sink is not None:
            sink((self.pid, src) if self.pid <= src else (src, self.pid))

    # ------------------------------------------------------------------
    # Action 10: exit
    # ------------------------------------------------------------------
    def _exit(self) -> None:
        """Exit eating: release the doorway, deferred forks, deferred acks."""
        if not self.is_eating:
            return
        self.inside = False
        self.trace.doorway_change(self._substrate.now, self.pid, False)
        self._set_state(DinerState.THINKING)
        send = self._substrate.send
        pid = self.pid
        fork = self._msg_fork
        ack = self._msg_ack
        sink = self.on_dirty_link
        for neighbor, link in self._ordered_links:
            if link.token and link.fork:  # a deferred fork request
                send(pid, neighbor, fork)
                link.fork = False
            if link.deferred:
                send(pid, neighbor, ack)
                link.deferred = False
                if sink is not None:
                    sink((pid, neighbor))
        self._schedule_next_hunger()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _links_in_order(self):
        """Neighbor links in ascending pid order (determinism)."""
        return iter(self._ordered_links)

    def _set_state(self, new_state: DinerState) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        self.trace.phase_change(self._substrate.now, self.pid, old.phase, new_state.phase)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flags = "in" if self.inside else "out"
        return f"DinerActor(pid={self.pid}, color={self.color}, {self.phase}, {flags})"
