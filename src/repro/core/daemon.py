"""The distributed daemon: dining as a scheduler for hosted protocols.

This is the paper's motivating application (Sections 1 and 8).  A
self-stabilizing protocol needs every correct process to execute
infinitely many steps; a :class:`DistributedDaemon` provides that by
running Algorithm 1 with an always-hungry workload and executing one
enabled guarded command of the hosted protocol inside each eating session.

Eventual weak exclusion is visible at this layer exactly as the paper
frames it: before the detector converges, two conflicting neighbors may
occasionally be scheduled together; each such *sharing violation* is
modeled as (at worst) one more transient fault on the hosted protocol —
the daemon corrupts the stepping process's protocol state instead of
executing its action.  Because ◇WX admits only finitely many violations
and the daemon is wait-free, the protocol still converges.

The hosted protocol is any object with the small duck-typed interface of
:class:`repro.stabilization.protocol.GuardedProtocol`:

* ``execute(pid) -> Optional[str]`` — fire one enabled action, returning
  its name (or ``None`` if none is enabled);
* ``legitimate(live) -> bool`` — the closed safety predicate, judged over
  the currently live processes;
* ``corrupt(pid, rng) -> str`` — inflict a transient fault.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.table import DetectorFactory, DiningTable
from repro.core.workload import AlwaysHungry
from repro.graphs.coloring import Coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.sim.crash import CrashPlan
from repro.sim.latency import LatencyModel
from repro.sim.time import Duration, Instant


class DistributedDaemon:
    """Wait-free scheduler for a guarded-command protocol.

    Parameters mirror :class:`~repro.core.table.DiningTable`, plus:

    protocol:
        The hosted self-stabilizing protocol.
    fault_on_violation:
        When True (default), a protocol step taken while a live neighbor
        is simultaneously eating corrupts local protocol state instead of
        executing — the paper's "sharing violation precipitates at worst a
        transient fault" reading.  When False, violations merely execute
        concurrently (useful to isolate scheduling behaviour).
    step_time:
        Eating duration, i.e. how long the critical section is held per
        scheduled step.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        protocol,
        *,
        seed: int = 0,
        detector: Optional[DetectorFactory] = None,
        latency: Optional[LatencyModel] = None,
        coloring: Optional[Coloring] = None,
        crash_plan: Optional[CrashPlan] = None,
        diner_factory=None,
        fault_on_violation: bool = True,
        step_time: Duration = 0.5,
        think_time: Duration = 0.01,
        check_invariants: bool = True,
        trace=None,
        metrics=None,
    ) -> None:
        self.protocol = protocol
        self.fault_on_violation = fault_on_violation
        self.sharing_violations = 0
        self.steps_executed = 0
        self._last_illegitimate: Instant = 0.0
        self._ever_checked = False

        self.table = DiningTable(
            graph,
            seed=seed,
            latency=latency,
            workload=AlwaysHungry(eat_time=step_time, think_time=think_time),
            coloring=coloring,
            crash_plan=crash_plan,
            detector=detector,
            diner_factory=diner_factory,
            on_eat=self._on_eat,
            check_invariants=check_invariants,
            trace=trace,
            metrics=metrics,
        )
        self._rng = self.table.sim.streams.stream("daemon-violations")

    # ------------------------------------------------------------------
    # Scheduling hook
    # ------------------------------------------------------------------
    def _on_eat(self, diner) -> None:
        pid = diner.pid
        now = self.table.sim.now
        if self.fault_on_violation and self._neighbor_eating(pid):
            # A ◇WX mistake: both sides of a conflict edge are in their
            # critical sections.  Model the damage as a transient fault on
            # the later scheduler's process.
            self.sharing_violations += 1
            detail = self.protocol.corrupt(pid, self._rng)
            self.table.trace.transient_fault(now, pid, f"sharing violation: {detail}")
        else:
            action = self.protocol.execute(pid)
            if action is not None:
                self.steps_executed += 1
                self.table.trace.protocol_step(now, pid, action)
        self._note_legitimacy(now)

    def _neighbor_eating(self, pid: ProcessId) -> bool:
        diners = self.table.diners
        return any(
            diners[nbr].is_eating and not diners[nbr].crashed
            for nbr in self.table.graph.neighbors(pid)
        )

    # ------------------------------------------------------------------
    # Faults and legitimacy bookkeeping
    # ------------------------------------------------------------------
    def live_pids(self) -> List[ProcessId]:
        """Processes that have not crashed as of now."""
        return [pid for pid, diner in self.table.diners.items() if not diner.crashed]

    def inject_fault(self, pid: ProcessId) -> None:
        """Inflict one random transient fault on the hosted protocol at ``pid``."""
        now = self.table.sim.now
        detail = self.protocol.corrupt(pid, self._rng)
        self.table.trace.transient_fault(now, pid, f"injected: {detail}")
        self._note_legitimacy(now)

    def corrupt_register(self, pid: ProcessId, value) -> None:
        """Inflict a *targeted* transient fault: write ``value`` at ``pid``.

        Transient faults can be arbitrary, so experiments may pick
        adversarial values (for example a color that collides with a
        neighbor) instead of random ones.
        """
        now = self.table.sim.now
        old = self.protocol.read(pid)
        self.protocol.write(pid, value)
        self.table.trace.transient_fault(now, pid, f"targeted: [{pid}] {old} -> {value}")
        self._note_legitimacy(now)

    def _note_legitimacy(self, now: Instant) -> None:
        self._ever_checked = True
        if not self.protocol.legitimate(self.live_pids()):
            self._last_illegitimate = now

    # ------------------------------------------------------------------
    # Execution / results
    # ------------------------------------------------------------------
    def run(self, until: Instant) -> "DistributedDaemon":
        self.table.run(until)
        return self

    def run_until_converged(
        self,
        *,
        max_time: Instant,
        settle: Duration = 10.0,
        check_interval: Duration = 5.0,
    ) -> Optional[Instant]:
        """Run until the protocol stays legitimate for ``settle`` time.

        Checks every ``check_interval``; returns the convergence time once
        the protocol has been continuously legitimate for ``settle`` (so a
        transiently legitimate state that a pre-convergence scheduling
        mistake re-corrupts doesn't count), or ``None`` if ``max_time``
        arrives first.  The simulation can be continued afterwards.
        """
        now = self.table.sim.now
        while now < max_time:
            now = min(now + check_interval, max_time)
            self.table.run(now)
            if self.converged():
                converged_at = self.convergence_time()
                if converged_at is not None and now - converged_at >= settle:
                    return converged_at
        return self.convergence_time() if self.converged() else None

    def converged(self) -> bool:
        """Is the hosted protocol currently legitimate over live processes?"""
        return self.protocol.legitimate(self.live_pids())

    def convergence_time(self) -> Optional[Instant]:
        """When the protocol last became (and stayed) legitimate.

        ``None`` while the protocol is still illegitimate.  The value is
        the time of the last observed illegitimate state, i.e. the start
        of the current closed suffix.
        """
        if not self.converged():
            return None
        if not self._ever_checked:
            return 0.0
        return self._last_illegitimate
