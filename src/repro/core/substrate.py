"""The substrate protocol: what a transport must provide to host an actor.

Algorithm 1 is a message-passing protocol; nothing in it depends on *how*
messages move or *what* the clock counts.  This module pins that boundary
down.  :class:`Substrate` names the five capabilities an actor consumes —

* ``now`` — the current time (virtual seconds under the discrete-event
  kernel, wall seconds under the live asyncio runtime);
* ``streams`` — named deterministic random streams (workload durations);
* ``send(src, dst, message)`` — FIFO, reliable, per-directed-channel
  transmission;
* ``set_timer(delay, callback)`` — a cancellable one-shot timer;
* ``request_reevaluation(callback)`` — run ``callback`` as soon as the
  current step completes (guard re-evaluation scheduling);

and :class:`Actor` is the process base class written *only* against that
surface, so the same ``DinerActor`` byte code runs unchanged on the
simulator kernel (:class:`repro.sim.actor.KernelSubstrate`), the live
asyncio runtime (:class:`repro.net.substrate.LiveSubstrate`), and the
exhaustive explorer's choice kernel.

Crash semantics follow the paper's fault model exactly: from its crash
instant a process executes no further steps — pending timers are dead, and
messages addressed to it are dropped by the transport.  Crashing is
irreversible.

Guard re-evaluation
-------------------
The dining algorithm is specified as guarded commands that must fire when
continuously enabled.  Actors get weak fairness for free by re-evaluating
guards whenever local state may have changed: every message receipt and
timer firing ends with a call to :meth:`Actor.reevaluate` (subclass hook),
and external components (for example a failure detector whose output
changed) call :meth:`Actor.request_reevaluation`, which coalesces into at
most one pending re-evaluation per actor.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.errors import CrashedProcessError, SimulationError
from repro.timebase import Duration, Instant

ProcessId = int


class TimerHandle(Protocol):
    """A scheduled one-shot callback that can be retired early."""

    cancelled: bool

    def cancel(self) -> None:
        """Prevent the timer from firing; idempotent."""


@runtime_checkable
class Substrate(Protocol):
    """Transport-and-clock surface consumed by :class:`Actor`.

    Implementations: :class:`repro.sim.actor.KernelSubstrate` (the
    discrete-event kernel), :class:`repro.net.substrate.LiveSubstrate`
    (asyncio over wall clock and real links), and the duck-typed choice
    kernel inside :mod:`repro.verify.explore`.
    """

    @property
    def now(self) -> Instant:
        """Current time, in this substrate's clock."""
        ...

    @property
    def streams(self):
        """Named deterministic random streams (:class:`repro.sim.rng.RandomStreams`)."""
        ...

    def send(self, src: ProcessId, dst: ProcessId, message) -> None:
        """Transmit ``message`` on the directed FIFO channel ``src -> dst``."""
        ...

    def set_timer(
        self, delay: Duration, callback: Callable[[], None], *, label: str = ""
    ) -> TimerHandle:
        """Run ``callback`` after ``delay``; returns a cancellable handle."""
        ...

    def request_reevaluation(self, callback: Callable[[], None], *, label: str = "") -> None:
        """Run ``callback`` once the currently executing step completes."""
        ...


class Actor:
    """Base class for hosted processes, written against :class:`Substrate`."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.crashed = False
        self.crash_time: Optional[Instant] = None
        self._substrate: Optional[Substrate] = None
        self._reevaluation_pending = False
        # Built lazily on first use and reused for the actor's life: the
        # re-evaluation callback and label never change, so rebuilding a
        # closure and an f-string per request is pure hot-path waste.
        self._reeval_fire: Optional[Callable[[], None]] = None
        self._reeval_label = ""

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_substrate(self, substrate: Substrate) -> None:
        """Attach this actor to the substrate that will host it."""
        self._substrate = substrate

    def bind(self, sim, network) -> None:
        """Legacy wiring: wrap a (kernel, network) pair into a substrate.

        Kept so the simulator's :meth:`repro.sim.network.Network.register`
        and the explorer's hand-built worlds keep working verbatim; new
        hosts call :meth:`bind_substrate` with a ready substrate.
        """
        from repro.sim.actor import KernelSubstrate  # deferred: sim is optional here

        self.bind_substrate(KernelSubstrate(sim, network))

    @property
    def substrate(self) -> Substrate:
        if self._substrate is None:
            raise SimulationError(f"actor {self.pid} is not bound to a substrate")
        return self._substrate

    @property
    def sim(self):
        """The kernel behind a simulator-backed substrate (legacy accessor)."""
        sim = getattr(self.substrate, "sim", None)
        if sim is None:
            # Duck-typed kernels (the explorer's) bind via ``bind`` too and
            # expose themselves as ``.sim``; a live substrate has no kernel.
            raise SimulationError(
                f"actor {self.pid} is hosted by {type(self.substrate).__name__}, "
                "which has no simulator kernel"
            )
        return sim

    @property
    def now(self) -> Instant:
        return self.substrate.now

    @property
    def streams(self):
        """The substrate's named random streams (workload durations)."""
        return self.substrate.streams

    # ------------------------------------------------------------------
    # Lifecycle hooks (subclass API)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the hosting run starts; default does nothing."""

    def on_message(self, src: ProcessId, message) -> None:
        """Handle a delivered message; subclasses must override."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called once at the actor's crash instant; default does nothing."""

    def reevaluate(self) -> None:
        """Re-check guarded commands; default does nothing.

        Subclasses with guarded-command semantics override this; the base
        class calls it after every message and timer.
        """

    # ------------------------------------------------------------------
    # Actions available to subclasses
    # ------------------------------------------------------------------
    def send(self, dst: ProcessId, message) -> None:
        """Send ``message`` to ``dst`` over the substrate's transport.

        Sending from a crashed actor raises: a correct implementation never
        reaches a send after its crash instant, so this surfaces hosting
        bugs instead of silently widening the fault model.
        """
        if self.crashed:
            raise CrashedProcessError(f"crashed process {self.pid} attempted to send")
        if self._substrate is None:
            raise SimulationError(f"actor {self.pid} is not bound to a substrate")
        self._substrate.send(self.pid, dst, message)

    def set_timer(
        self, delay: Duration, callback: Callable[[], None], *, label: str = ""
    ) -> TimerHandle:
        """Schedule ``callback`` after ``delay``; suppressed if crashed by then."""

        def fire() -> None:
            if self.crashed:
                return
            callback()
            self.reevaluate()

        return self.substrate.set_timer(delay, fire, label=label or f"timer@{self.pid}")

    def request_reevaluation(self) -> None:
        """Schedule a coalesced guard re-evaluation for this actor.

        Safe to call many times per instant; only one callback is pending
        at any moment.  Used by failure detectors to notify the dining
        layer that suspicion output changed.
        """
        if self.crashed or self._reevaluation_pending or self._substrate is None:
            return
        self._reevaluation_pending = True

        fire = self._reeval_fire
        if fire is None:

            def fire() -> None:
                self._reevaluation_pending = False
                if self.crashed:
                    return
                self.reevaluate()

            self._reeval_fire = fire
            self._reeval_label = f"reeval@{self.pid}"

        self._substrate.request_reevaluation(fire, label=self._reeval_label)

    # ------------------------------------------------------------------
    # Substrate-facing entry points
    # ------------------------------------------------------------------
    def deliver(self, src: ProcessId, message) -> None:
        """Transport entry point; ignores deliveries to crashed actors."""
        if self.crashed:
            return
        self.on_message(src, message)
        self.reevaluate()

    def crash(self) -> None:
        """Crash this actor now; irreversible, idempotent."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_time = self.now if self._substrate is not None else None
        self.on_crash()
