"""Dining-layer message types (Section 3).

Algorithm 1 exchanges exactly four message types:

* :class:`Ping` — request a doorway acknowledgment (Action 2);
* :class:`Ack` — grant doorway entry (Actions 3, 10);
* :class:`ForkRequest` — carries the requester's color; sending it is how
  the token moves to the fork holder (Actions 6, 7);
* :class:`Fork` — the shared fork itself (Actions 7, 10).

All four are tagged ``layer="dining"`` so the channel-capacity experiment
(Section 7: at most 4 dining messages per edge) can filter out detector
heartbeats.  :func:`message_size_bits` implements the paper's message-size
accounting: ids and colors cost ⌈log₂ n⌉ and ⌈log₂ C⌉ bits respectively,
so every message is O(log n) bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    """Request one doorway ack from a neighbor."""

    sender: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class Ack:
    """Permission for the recipient to count this sender toward doorway entry."""

    sender: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class ForkRequest:
    """Request the shared fork; carries the requester's static color.

    Receiving this message *is* receiving the token for the edge: the
    sender relinquished the token when it sent the request (Action 6) and
    the receiver records ``token := true`` (Action 7).
    """

    sender: int
    color: int
    layer = "dining"


@dataclass(frozen=True, slots=True)
class Fork:
    """The unique shared fork of one conflict edge."""

    sender: int
    layer = "dining"


DINING_MESSAGE_TYPES = (Ping, Ack, ForkRequest, Fork)


def _id_bits(n: int) -> int:
    """Bits to encode one of ``n`` distinct values (at least 1)."""
    return max(1, math.ceil(math.log2(max(n, 2))))


def value_bits(value: int) -> int:
    """Bits to encode the non-negative integer ``value`` itself (at least 1).

    Unlike :func:`_id_bits`, which prices a draw from a *known finite
    domain*, this prices an unbounded counter by its current magnitude —
    the accounting baseline messages (bakery tickets, Lamport clocks)
    need, since their values have no a-priori bound.
    """
    return max(1, int(value).bit_length())


def message_size_bits(message, *, n_processes: int, n_colors: int) -> int:
    """Encoded size of ``message`` per the Section 7 accounting.

    Two bits of type tag, plus a process id, plus (for fork requests) a
    color.  The point of the accounting is the growth rate — O(log n) —
    not the constant.

    Messages outside Algorithm 1's four types may carry extra payload; a
    type that defines ``payload_bits()`` (the baseline zoo's
    value-carrying messages do) has those bits added on top of the
    common tag + sender budget.  This is what surfaces the bakery's
    unbounded tickets: its frames grow with the ticket value while every
    Algorithm 1 frame stays O(log n).
    """
    bits = 2 + _id_bits(n_processes)
    if isinstance(message, ForkRequest):
        bits += _id_bits(n_colors)
    else:
        extra = getattr(message, "payload_bits", None)
        if extra is not None:
            bits += extra()
    return bits
