"""DiningTable: one-stop wiring of a complete dining run.

Experiments, tests, and examples all need the same assembly: a simulator,
a FIFO network with monitors, a coloring, a failure detector, one diner
per process, a crash plan, and a trace.  :class:`DiningTable` builds all
of it from declarative parameters and exposes the analysis conveniences,
so a whole experiment reads:

.. code-block:: python

    table = DiningTable(
        topologies.ring(8),
        seed=7,
        detector=scripted_detector(convergence_time=50.0),
        crash_plan=CrashPlan.scripted({3: 20.0}),
    )
    table.run(until=400.0)
    assert table.starving_correct(patience=100.0) == []

Detector choice is a *factory* (:func:`scripted_detector`,
:func:`perfect_detector`, :func:`null_detector`,
:func:`heartbeat_detector`) because oracle-style detectors need the
simulator and crash plan that only exist once the table assembles them.

The same harness runs the baselines: pass ``diner_factory`` to substitute
:class:`~repro.baselines.choy_singh.ChoySinghDiner` or any other actor
with the diner construction signature.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.checks.context import active_collector
from repro.checks.properties import CHANNEL_BOUND, QUIESCENCE
from repro.checks.suite import CheckConfig, standard_suite
from repro.checks.verdict import Verdict
from repro.core.diner import DinerActor, EatCallback
from repro.core.workload import AlwaysHungry, Workload
from repro.detectors.base import FailureDetector, NullDetector
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.perfect import PerfectDetector
from repro.detectors.scripted import ScriptedDetector
from repro.errors import ConfigurationError
from repro.graphs.coloring import Coloring, greedy_coloring, validate_coloring
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.graphs.membership import MembershipDelta, MembershipLog, TopologyTimeline
from repro.obs.context import active_registry
from repro.obs.instrument import instrument_table
from repro.sim.checks import KernelCheckAdapter, raise_violation
from repro.sim.crash import CrashPlan
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.monitors import ChannelOccupancyMonitor, MessageStats, QuiescenceMonitor
from repro.sim.network import Network
from repro.sim.time import Duration, Instant
from repro.trace import analysis
from repro.trace.recorder import TraceRecorder

DetectorFactory = Callable[[Simulator, ConflictGraph, CrashPlan], FailureDetector]
DinerFactory = Callable[..., DinerActor]


# ----------------------------------------------------------------------
# Detector factories
# ----------------------------------------------------------------------
def scripted_detector(
    *,
    convergence_time: Instant = 0.0,
    detection_delay: Duration = 1.0,
    mistakes: tuple = (),
    random_mistakes: bool = False,
    mistakes_per_edge: float = 1.0,
    mean_mistake_duration: Duration = 2.0,
) -> DetectorFactory:
    """◇P₁ oracle with exact convergence time and optional mistake script."""

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        if random_mistakes:
            if mistakes:
                raise ConfigurationError("pass either explicit mistakes or random_mistakes")
            return ScriptedDetector.with_random_mistakes(
                sim,
                graph,
                crash_plan,
                convergence_time=convergence_time,
                detection_delay=detection_delay,
                mistakes_per_edge=mistakes_per_edge,
                mean_mistake_duration=mean_mistake_duration,
            )
        return ScriptedDetector(
            sim,
            graph,
            crash_plan,
            convergence_time=convergence_time,
            detection_delay=detection_delay,
            mistakes=tuple(mistakes),
        )

    return build


def perfect_detector(*, detection_delay: Duration = 1.0) -> DetectorFactory:
    """The perfect detector P (no false positives, ever)."""

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return PerfectDetector(sim, graph, crash_plan, detection_delay=detection_delay)

    return build


def null_detector() -> DetectorFactory:
    """No detector at all: the purely asynchronous system."""

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return NullDetector(graph)

    return build


def heartbeat_detector(
    *,
    interval: Duration = 1.0,
    initial_timeout: Duration = 3.0,
    timeout_increment: Duration = 1.0,
) -> DetectorFactory:
    """A real heartbeat ◇P₁ (pair with a partial-synchrony latency model)."""

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return HeartbeatDetector(
            graph,
            interval=interval,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
        )

    return build


def query_detector(
    *,
    interval: Duration = 1.0,
    initial_timeout: Duration = 4.0,
    timeout_increment: Duration = 1.0,
) -> DetectorFactory:
    """A real round-trip (query-response) \u25c7P\u2081 (pull-style probing)."""
    from repro.detectors.query import QueryDetector

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return QueryDetector(
            graph,
            interval=interval,
            initial_timeout=initial_timeout,
            timeout_increment=timeout_increment,
        )

    return build


def incomplete_detector(*, blind_pairs, detection_delay: Duration = 1.0) -> DetectorFactory:
    """Oracle violating completeness on ``blind_pairs`` (necessity probe E9)."""
    from repro.detectors.adversarial import IncompleteDetector

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return IncompleteDetector(
            sim, graph, crash_plan, blind_pairs=blind_pairs, detection_delay=detection_delay
        )

    return build


def inaccurate_detector(
    *,
    recurring_pairs,
    period: Duration = 10.0,
    episode: Duration = 4.0,
    detection_delay: Duration = 1.0,
) -> DetectorFactory:
    """Oracle violating eventual accuracy on ``recurring_pairs`` (E9)."""
    from repro.detectors.adversarial import InaccurateDetector

    def build(sim: Simulator, graph: ConflictGraph, crash_plan: CrashPlan) -> FailureDetector:
        return InaccurateDetector(
            sim,
            graph,
            crash_plan,
            recurring_pairs=recurring_pairs,
            period=period,
            episode=episode,
            detection_delay=detection_delay,
        )

    return build


# ----------------------------------------------------------------------
# The table
# ----------------------------------------------------------------------
class DiningTable:
    """A fully wired dining simulation."""

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        workload: Optional[Workload] = None,
        coloring: Optional[Coloring] = None,
        crash_plan: Optional[CrashPlan] = None,
        detector: Optional[DetectorFactory] = None,
        diner_factory: Optional[DinerFactory] = None,
        on_eat: Optional[EatCallback] = None,
        check_invariants: bool = True,
        strict_checks: Optional[bool] = None,
        check_config: Optional[CheckConfig] = None,
        channel_bound: int = 4,
        max_events: int = 50_000_000,
        trace: Optional[TraceRecorder] = None,
        metrics=None,
        membership: Optional[MembershipLog] = None,
    ) -> None:
        self.graph = graph
        # Dynamic membership: a non-empty log makes the topology epoched.
        # Everything graph-shaped (coloring, detector scopes, the checked
        # edge set) is then derived from the *union* graph — every node
        # and edge that ever exists — so joiners find their color and
        # detector module waiting, while each diner's live link set is
        # narrowed to its current view.  With no log the union IS the
        # initial graph object and the static wiring below is untouched.
        self.membership = membership if membership is not None else MembershipLog()
        dynamic = bool(self.membership)
        self.timeline = TopologyTimeline(graph, self.membership) if dynamic else None
        union = self.timeline.union() if dynamic else graph
        self.union_graph = union
        self.crash_plan = crash_plan if crash_plan is not None else CrashPlan.none()
        for pid in self.crash_plan.faulty:
            if pid not in union:
                raise ConfigurationError(f"crash plan mentions unknown process {pid}")

        self.sim = Simulator(seed=seed, max_events=max_events)
        self.trace = trace if trace is not None else TraceRecorder()
        self.network = Network(self.sim, latency=latency or FixedLatency(1.0))

        self.coloring = coloring if coloring is not None else greedy_coloring(union)
        validate_coloring(union, self.coloring)

        factory = detector if detector is not None else scripted_detector()
        self.detector = factory(self.sim, union, self.crash_plan)

        self.workload = workload if workload is not None else AlwaysHungry()

        make_diner = diner_factory if diner_factory is not None else DinerActor
        self.diners: Dict[ProcessId, DinerActor] = {}
        for pid in graph.nodes:
            if dynamic:
                diner = make_diner(
                    pid,
                    union,
                    self.coloring,
                    self.detector,
                    self.workload,
                    self.trace,
                    on_eat=on_eat,
                    neighbors=graph.neighbors(pid),
                )
            else:
                diner = make_diner(
                    pid,
                    graph,
                    self.coloring,
                    self.detector,
                    self.workload,
                    self.trace,
                    on_eat=on_eat,
                )
            self.diners[pid] = diner
            self.network.register(diner)

        # Property checking: one substrate-agnostic CheckSuite, fed by the
        # kernel adapter.  ``check_invariants=True`` keeps the historical
        # teeth — an immediate safety violation (fork duplication, channel
        # overflow, FIFO break, local-invariant break) raises its typed
        # exception from inside the offending event.
        # Observability registry resolved up front: the check suite's
        # per-property profiling rides the same opt-in as the kernel
        # profiler, and both must be decided before the suite is built.
        registry = metrics if metrics is not None else active_registry()

        self.checks = None
        self._check_adapter = None
        if check_invariants:
            config = check_config if check_config is not None else CheckConfig()
            config.channel_bound = channel_bound
            config.crash_time_of = self.crash_plan.as_dict().get
            if config.correct is None:
                # Dynamic runs judge wait-freedom on the final topology's
                # residents: a process that left for good owes no meals.
                nodes = (
                    self.timeline.final().graph.nodes if dynamic else graph.nodes
                )
                config.correct = self.crash_plan.correct(nodes)
            if registry is not None and getattr(registry, "profile", False):
                config.profile = True
            # Proof-level local invariants (ack/replied scoping, the phase
            # nesting, Lemma 2.2) only make sense for diners built on
            # Algorithm 1's variable set.
            diner_locals = all(isinstance(d, DinerActor) for d in self.diners.values())
            self.checks = standard_suite(
                sorted(union.edges),
                config,
                diner_locals=diner_locals,
                on_violation=None if strict_checks is False else raise_violation,
                dynamic=dynamic,
                membership=self.timeline,
            )

        # Monitors (always on: cheap, and every experiment reads them).
        # With a check suite attached, the kernel adapter feeds the same
        # canonical occupancy/quiescence implementations exactly once,
        # batches the message stats, and the monitor objects become read
        # facades over the shared state — the adapter is then the only
        # registered observer besides the instrumentation.
        if self.checks is not None:
            self._check_adapter = KernelCheckAdapter(
                self.checks, self.diners, crashing=self.crash_plan.faulty
            )
            channel_checker = self.checks.checker(CHANNEL_BOUND)
            self.message_stats = self._check_adapter.stats
            self.occupancy = ChannelOccupancyMonitor(
                layer=channel_checker.layer, occupancy=channel_checker.occupancy
            )
            self.quiescence = QuiescenceMonitor(
                self.crash_plan.as_dict().get,
                checker=self.checks.checker(QUIESCENCE),
            )
        else:
            self.message_stats = MessageStats()
            self.occupancy = ChannelOccupancyMonitor(layer="dining")
            self.quiescence = QuiescenceMonitor(self.crash_plan.as_dict().get)
            self.network.add_monitor(self.message_stats)
            self.network.add_monitor(self.occupancy)
            self.network.add_monitor(self.quiescence)

        # Observability: an explicit registry wins; otherwise join the
        # ambient ``repro.obs.collecting`` block when one is active.
        self.metrics = registry
        self.instrumentation = (
            instrument_table(self, registry, bound=channel_bound)
            if registry is not None
            else None
        )

        if self.checks is not None:
            # Attached last so the instrumentation monitors still observe
            # a message even when a strict check raises from the adapter.
            self._check_adapter.attach(self.sim, self.network, self.trace)
            collector = active_collector()
            if collector is not None:
                collector.register(self.checks, lambda: self.sim.now)

        self.crash_plan.apply(self.network)
        # Oracle-style detectors (scripted, perfect, adversarial) drive
        # their modules from pre-scheduled events; message-passing ones
        # (heartbeat) have no install step.
        install = getattr(self.detector, "install", None)
        if callable(install):
            install()

        self._epoch = 0
        self._make_diner = make_diner
        self._on_eat = on_eat
        if dynamic:
            # Deltas fire at CONTROL priority in log order (the log is
            # time-sorted and the kernel breaks same-instant ties by
            # scheduling order), so the live epoch counter walks the
            # timeline's snapshots in lock-step.
            self.sim.set_membership_handler(self._apply_delta)
            for delta in self.membership:
                self.sim.schedule_at(
                    delta.time,
                    lambda d=delta: self.sim.apply_membership_delta(d),
                    priority=EventPriority.CONTROL,
                    label=f"membership {delta.verb} {delta.pid}",
                )

        self._started = False

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current topology epoch (0 on static runs)."""
        return self._epoch

    def _spawn_diner(self, pid: ProcessId, neighbors, *, replace: bool) -> None:
        """Build, register, and start a fresh incarnation of ``pid``."""
        diner = self._make_diner(
            pid,
            self.union_graph,
            self.coloring,
            self.detector,
            self.workload,
            self.trace,
            on_eat=self._on_eat,
            neighbors=neighbors,
        )
        self.diners[pid] = diner
        self.network.register(diner, replace=replace)
        if self._check_adapter is not None:
            self._check_adapter.install_diner(diner)
            if replace:
                self._check_adapter.note_rejoin(pid)
        diner.on_start()
        diner.reevaluate()

    def _live_diner(self, pid: ProcessId) -> Optional[DinerActor]:
        diner = self.diners.get(pid)
        return diner if diner is not None and not diner.crashed else None

    def _apply_delta(self, delta: MembershipDelta) -> None:
        """Execute one membership delta at its scheduled instant.

        The epoch counter advances first, so the trace record and every
        epoch-stamped witness agree with the timeline's snapshot index.
        Neighbor notification order is the view's sorted neighbor tuple:
        deterministic, like every other same-instant ordering here.
        """
        epoch = self._epoch + 1
        self._epoch = epoch
        view = self.timeline.snapshots()[epoch].graph
        previous = self.timeline.snapshots()[epoch - 1].graph
        verb = delta.verb
        pid = delta.pid
        record_edges: tuple = ()
        if verb == "join":
            record_edges = delta.edges
            neighbors = view.neighbors(pid)
            # Peers first: when the newcomer's on_start pings, the peers
            # already carry a hygienic link to answer on.
            for other in neighbors:
                peer = self._live_diner(other)
                if peer is not None:
                    peer.add_neighbor(pid)
            self._spawn_diner(pid, neighbors, replace=False)
        elif verb == "leave":
            # The same path as a crash: the network emits the Crash trace
            # record (adapter learns it online), and survivors substitute
            # the leaver in their Action 5/9 guards exactly as ◇P₁
            # suspicion would — the leaver's forks are reclaimed without
            # waiting on a detector that was never scripted to fire.
            neighbors = previous.neighbors(pid)
            self.network.crash(pid)
            for other in neighbors:
                peer = self._live_diner(other)
                if peer is not None:
                    peer.neighbor_left(pid)
        elif verb == "rejoin":
            # Membership act, not detector output: silently wipe the old
            # incarnation's module (suspicions and dead listeners) before
            # the fresh actor re-subscribes in its on_start.
            self.detector.module_for(pid).reset()
            neighbors = view.neighbors(pid)
            for other in neighbors:
                peer = self._live_diner(other)
                if peer is None:
                    continue
                if pid in peer.links:
                    peer.neighbor_rejoined(pid)
                else:
                    peer.add_neighbor(pid)
            self._spawn_diner(pid, neighbors, replace=True)
        elif verb == "add_edge":
            peer_pid = delta.peer
            record_edges = (peer_pid,)
            if pid in view and peer_pid in view.neighbors(pid):
                # Traffic from the edge's earlier existence must not
                # deliver into the rebuilt link state; fence before the
                # endpoints' (deferred) re-evaluations can send.
                self.network.fence_channels(pid, peer_pid)
                if self._check_adapter is not None:
                    self._check_adapter.note_edge_reset(pid, peer_pid)
                a = self._live_diner(pid)
                b = self._live_diner(peer_pid)
                if a is not None:
                    a.add_neighbor(peer_pid)
                if b is not None:
                    b.add_neighbor(pid)
        elif verb == "remove_edge":
            peer_pid = delta.peer
            record_edges = (peer_pid,)
            if pid in previous and peer_pid in previous.neighbors(pid):
                a = self._live_diner(pid)
                b = self._live_diner(peer_pid)
                if a is not None:
                    a.remove_neighbor(peer_pid)
                if b is not None:
                    b.remove_neighbor(pid)
        self.trace.membership_change(self.sim.now, epoch, verb, pid, record_edges)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Instant) -> "DiningTable":
        """Run (or continue) the simulation up to virtual time ``until``."""
        if not self._started:
            self.network.start()
            self._started = True
        self.sim.run(until=until)
        return self

    # ------------------------------------------------------------------
    # Analysis conveniences
    # ------------------------------------------------------------------
    @property
    def correct_pids(self) -> tuple:
        return self.crash_plan.correct(self.graph.nodes)

    def verdict(
        self,
        *,
        settle: Optional[Instant] = None,
        patience: Optional[float] = None,
        after: Optional[Instant] = None,
    ) -> Verdict:
        """Finalize the attached check suite into a single Verdict.

        ``settle`` / ``patience`` / ``after`` bind the eventual
        properties' judgement windows (◇WX, wait-freedom, ◇2-BW) at the
        current horizon; left ``None`` they stay as configured (default:
        informational).  Requires ``check_invariants=True``.
        """
        if self.checks is None:
            raise ConfigurationError(
                "no check suite attached (table built with check_invariants=False)"
            )
        if settle is not None:
            self.checks.checker("wx-safety").settle = settle
            try:
                self.checks.checker("edge-exclusion").settle = settle
            except KeyError:
                pass  # static suite: no edge-scoped variant
        if patience is not None:
            self.checks.checker("progress").patience = patience
        if after is not None:
            self.checks.checker("overtaking").after = after
        return self.checks.finalize(self.sim.now)

    def violations(self) -> List[analysis.ExclusionViolation]:
        """All exclusion violations recorded so far."""
        return analysis.exclusion_violations(self.trace, self.graph, horizon=self.sim.now)

    def violations_after(self, cutoff: Instant) -> List[analysis.ExclusionViolation]:
        """Violations overlapping ``[cutoff, now)`` — Theorem 1 says none
        once ``cutoff`` reaches detector convergence."""
        return analysis.violations_after(self.trace, self.graph, cutoff, horizon=self.sim.now)

    def starving_correct(self, *, patience: float) -> List[ProcessId]:
        """Correct diners hungry for longer than ``patience`` at the horizon."""
        return analysis.starving_processes(
            self.trace, self.correct_pids, horizon=self.sim.now, patience=patience
        )

    def max_overtaking(self, *, after: Instant = 0.0) -> int:
        """Worst per-session overtake count among sessions starting after ``after``."""
        return analysis.max_overtaking(self.trace, self.graph, after=after, horizon=self.sim.now)

    def eat_counts(self) -> Dict[ProcessId, int]:
        return analysis.eat_counts(self.trace)

    def response_times(self, pids: Optional[List[ProcessId]] = None) -> List[float]:
        chosen = pids if pids is not None else list(self.correct_pids)
        return analysis.all_response_times(self.trace, chosen, horizon=self.sim.now)

    def throughput(self) -> float:
        if self.sim.now <= 0 or math.isinf(self.sim.now):
            return 0.0
        return analysis.throughput(self.trace, horizon=self.sim.now)

    def fingerprint(self) -> tuple:
        """A compact, deterministic digest of the run so far.

        Two runs with the same configuration and seed produce identical
        fingerprints; any divergence (event counts, traffic, meals,
        violations) changes it.  Used by the reproducibility regression
        tests and handy for golden-run pinning in downstream projects.
        """
        return (
            self.sim.processed_events,
            self.network.sent_count,
            self.network.delivered_count,
            self.network.dropped_count,
            tuple(sorted(self.eat_counts().items())),
            len(self.violations()),
            len(self.trace),
        )
