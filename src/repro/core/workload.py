"""Hunger and eating workloads.

The dining specification leaves two behaviours to the environment: *when*
a thinking process becomes hungry (it may think forever, or become hungry
at any time — Action 1 is external) and *how long* an eating session lasts
(finite for correct processes, but not necessarily bounded).  A
:class:`Workload` supplies both as per-process distributions.

The diner asks :meth:`think_duration` each time it returns to thinking
(``None`` means "think forever" and ends that diner's participation) and
:meth:`eat_duration` each time it enters eating.  All randomness flows
through the simulator's named streams, keyed by process id, so workloads
replay with the run.

Provided workloads:

* :class:`AlwaysHungry` — maximal contention; the standard load for the
  safety/fairness experiments and for daemon scheduling (a daemon must
  schedule every correct process infinitely often).
* :class:`PoissonWorkload` — exponential think times, for partial
  contention and throughput curves.
* :class:`ScriptedWorkload` — exact per-process think/eat sequences, for
  targeted regression scenarios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.timebase import Duration, validate_duration

if TYPE_CHECKING:  # annotation-only: keeps this module substrate-neutral
    from repro.sim.rng import RandomStreams

ProcessId = int


class Workload:
    """Base class; subclasses override the two duration hooks."""

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        """Time until the next hunger, or ``None`` to think forever."""
        raise NotImplementedError

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        """Length of the upcoming eating session (must be finite)."""
        raise NotImplementedError

    def _stream(self, pid: ProcessId, streams: RandomStreams):
        return streams.stream(f"workload/{pid}")


class AlwaysHungry(Workload):
    """Re-hungers almost immediately after each meal.

    ``think_time`` stays positive (default tiny) so thinking is an actual
    state the trace can observe; ``max_sessions`` optionally retires a
    diner after that many hungry sessions (it then thinks forever), which
    lets tests run to natural quiescence.
    """

    def __init__(
        self,
        *,
        eat_time: Duration = 1.0,
        think_time: Duration = 0.01,
        max_sessions: Optional[int] = None,
    ) -> None:
        self.eat_time = validate_duration(eat_time, name="eat_time", allow_zero=False)
        self.think_time = validate_duration(think_time, name="think_time", allow_zero=False)
        if max_sessions is not None and max_sessions < 0:
            raise ConfigurationError(f"max_sessions must be >= 0, got {max_sessions}")
        self.max_sessions = max_sessions
        self._sessions: Dict[ProcessId, int] = {}

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        count = self._sessions.get(pid, 0)
        if self.max_sessions is not None and count >= self.max_sessions:
            return None
        self._sessions[pid] = count + 1
        return self.think_time

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self.eat_time


class BurstyWorkload(Workload):
    """Hungry-session bursts separated by idle gaps.

    Each diner fires ``burst`` rapid sessions (``burst_think`` between
    them), then idles for ``idle_time`` before the next burst.  The fuzz
    campaigns use this to alternate contention spikes with quiet phases:
    a burst landing just after a neighbor's crash or a detector mistake
    exercises the doorway reset and deferred-release paths that steady
    ``AlwaysHungry`` traffic tends to keep warm.
    """

    def __init__(
        self,
        *,
        burst: int = 4,
        burst_think: Duration = 0.01,
        idle_time: Duration = 8.0,
        eat_time: Duration = 1.0,
    ) -> None:
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.burst = int(burst)
        self.burst_think = validate_duration(burst_think, name="burst_think", allow_zero=False)
        self.idle_time = validate_duration(idle_time, name="idle_time", allow_zero=False)
        self.eat_time = validate_duration(eat_time, name="eat_time", allow_zero=False)
        self._sessions: Dict[ProcessId, int] = {}

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        count = self._sessions.get(pid, 0)
        self._sessions[pid] = count + 1
        if count and count % self.burst == 0:
            return self.idle_time
        return self.burst_think

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self.eat_time


class PoissonWorkload(Workload):
    """Exponential think times and uniform eat times."""

    def __init__(
        self,
        *,
        hunger_rate: float = 0.5,
        eat_time_range: Sequence[Duration] = (0.5, 2.0),
    ) -> None:
        if hunger_rate <= 0:
            raise ConfigurationError(f"hunger_rate must be positive, got {hunger_rate!r}")
        self.hunger_rate = float(hunger_rate)
        low, high = eat_time_range
        self.eat_low = validate_duration(low, name="eat time low", allow_zero=False)
        self.eat_high = validate_duration(high, name="eat time high", allow_zero=False)
        if self.eat_high < self.eat_low:
            raise ConfigurationError("eat time range inverted")

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        return self._stream(pid, streams).expovariate(self.hunger_rate)

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        return self._stream(pid, streams).uniform(self.eat_low, self.eat_high)


class ScriptedWorkload(Workload):
    """Exact think/eat duration sequences per process.

    Each process consumes its ``think`` list one session at a time and
    thinks forever once the list is exhausted.  Eat durations recycle the
    last value when their list runs out (a process must never eat forever).
    Processes absent from the script think forever.
    """

    def __init__(
        self,
        think: Dict[ProcessId, Sequence[Duration]],
        eat: Optional[Dict[ProcessId, Sequence[Duration]]] = None,
        *,
        default_eat: Duration = 1.0,
    ) -> None:
        self._think: Dict[ProcessId, List[Duration]] = {
            pid: [validate_duration(d, name=f"think[{pid}]") for d in durations]
            for pid, durations in think.items()
        }
        self._eat: Dict[ProcessId, List[Duration]] = {
            pid: [validate_duration(d, name=f"eat[{pid}]", allow_zero=False) for d in durations]
            for pid, durations in (eat or {}).items()
        }
        for pid, durations in self._eat.items():
            if not durations:
                raise ConfigurationError(f"empty eat script for process {pid}")
        self.default_eat = validate_duration(default_eat, name="default_eat", allow_zero=False)

    def think_duration(self, pid: ProcessId, streams: RandomStreams) -> Optional[Duration]:
        pending = self._think.get(pid)
        if not pending:
            return None
        return pending.pop(0)

    def eat_duration(self, pid: ProcessId, streams: RandomStreams) -> Duration:
        pending = self._eat.get(pid)
        if not pending:
            return self.default_eat
        if len(pending) == 1:
            return pending[0]
        return pending.pop(0)
