"""The paper's contribution: Algorithm 1 and the distributed daemon.

* :class:`DinerActor` — the wait-free, eventually 2-bounded dining
  algorithm (Section 3, Actions 1-10);
* :class:`DiningTable` — declarative wiring of a complete dining run;
* :class:`DistributedDaemon` — dining as a crash-tolerant scheduler for
  hosted self-stabilizing protocols;
* workloads, message types, and diner-local state.
"""

from repro.core.daemon import DistributedDaemon
from repro.core.diagnostics import DinerDiagnosis, NeighborStatus, diagnose_diner, explain_starvation
from repro.core.diner import DinerActor
from repro.core.messages import (
    Ack,
    DINING_MESSAGE_TYPES,
    Fork,
    ForkRequest,
    Ping,
    message_size_bits,
)
from repro.core.state import DinerState, NeighborLinks, local_state_bits
from repro.core.table import (
    DiningTable,
    heartbeat_detector,
    null_detector,
    perfect_detector,
    query_detector,
    scripted_detector,
)
from repro.core.workload import (
    AlwaysHungry,
    BurstyWorkload,
    PoissonWorkload,
    ScriptedWorkload,
    Workload,
)

__all__ = [
    "Ack",
    "AlwaysHungry",
    "BurstyWorkload",
    "DINING_MESSAGE_TYPES",
    "DinerActor",
    "DinerDiagnosis",
    "DinerState",
    "DiningTable",
    "DistributedDaemon",
    "Fork",
    "ForkRequest",
    "NeighborLinks",
    "NeighborStatus",
    "Ping",
    "PoissonWorkload",
    "ScriptedWorkload",
    "Workload",
    "diagnose_diner",
    "explain_starvation",
    "heartbeat_detector",
    "local_state_bits",
    "message_size_bits",
    "null_detector",
    "perfect_detector",
    "query_detector",
    "scripted_detector",
]
