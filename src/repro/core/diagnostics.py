"""Run diagnostics: explain *why* a diner is (or is not) blocked.

When a run misbehaves — a baseline starves as predicted, or a
configuration mistake wedges a diner — the first question is always the
same: *what exactly is this process waiting for?*  :func:`diagnose_diner`
answers it from live state, phrased in the algorithm's own terms:

* phase 1 (outside the doorway): which neighbors owe an ack, whether a
  ping to them is pending, whether they are suspected or crashed;
* phase 2 (inside): which forks are missing, where each missing fork's
  token currently is, and whether suspicion substitutes.

:func:`explain_starvation` renders the report as text — the thing to
print when a progress assertion fails — and :func:`explain_verdict`
does the same starting from a failed :class:`~repro.checks.Verdict`:
every diner the progress property names gets a wait analysis, and every
other failed property contributes its first witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.checks import PROGRESS, Verdict
from repro.core.diner import DinerActor
from repro.core.table import DiningTable
from repro.errors import ConfigurationError
from repro.graphs.conflict import ProcessId


@dataclass(frozen=True)
class NeighborStatus:
    """One neighbor's contribution to a diner's wait."""

    neighbor: ProcessId
    crashed: bool
    suspected: bool
    blocks_doorway: bool  # no ack and no suspicion
    blocks_forks: bool  # fork missing and no suspicion (only meaningful inside)
    ping_pending: bool
    we_hold_fork: bool
    we_hold_token: bool

    @property
    def blocking(self) -> bool:
        return self.blocks_doorway or self.blocks_forks


@dataclass(frozen=True)
class DinerDiagnosis:
    """Full wait analysis of one diner at one instant."""

    pid: ProcessId
    time: float
    phase: str
    inside: bool
    crashed: bool
    statuses: Tuple[NeighborStatus, ...]

    @property
    def blocked_on(self) -> Tuple[ProcessId, ...]:
        return tuple(s.neighbor for s in self.statuses if s.blocking)

    @property
    def waiting_phase(self) -> Optional[int]:
        """1 = blocked at the doorway, 2 = blocked on forks, None = not blocked."""
        if self.crashed or self.phase != "hungry" or not self.blocked_on:
            return None
        return 2 if self.inside else 1


def diagnose_diner(table: DiningTable, pid: ProcessId) -> DinerDiagnosis:
    """Inspect one diner's live state and classify its wait."""
    diner = table.diners.get(pid)
    if diner is None:
        raise ConfigurationError(f"no diner with pid {pid}")
    if not isinstance(diner, DinerActor):
        raise ConfigurationError(
            f"diner {pid} ({type(diner).__name__}) does not expose Algorithm 1 state"
        )

    statuses: List[NeighborStatus] = []
    for neighbor, link in diner._links_in_order():
        suspected = diner.module.suspects(neighbor)
        crashed = table.diners[neighbor].crashed
        blocks_doorway = (
            diner.is_hungry and not diner.inside and not link.ack and not suspected
        )
        blocks_forks = (
            diner.is_hungry and diner.inside and not link.fork and not suspected
        )
        statuses.append(
            NeighborStatus(
                neighbor=neighbor,
                crashed=crashed,
                suspected=suspected,
                blocks_doorway=blocks_doorway,
                blocks_forks=blocks_forks,
                ping_pending=link.pinged,
                we_hold_fork=link.fork,
                we_hold_token=link.token,
            )
        )
    return DinerDiagnosis(
        pid=pid,
        time=table.sim.now,
        phase=diner.phase,
        inside=diner.inside,
        crashed=diner.crashed,
        statuses=tuple(statuses),
    )


def _critical_path_lines(spans, pid: ProcessId) -> List[str]:
    """The starving diner's worst request, broken down phase by phase."""
    from repro.obs.tracing import render_critical_path, slowest_request

    worst = slowest_request(spans, pid=pid)
    if worst is None:
        return []
    return ["  " + line for line in render_critical_path(spans, worst)]


def explain_starvation(table: DiningTable, pid: ProcessId, *, spans=None) -> str:
    """Human-readable account of what ``pid`` is waiting for right now.

    With ``spans`` (a traced run's request spans), the report ends with
    the diner's worst request's critical path: which phase the wait
    accumulated in, and — when it was fork collection — whose fork
    arrived last.
    """
    report = diagnose_diner(table, pid)
    lines = [
        f"diner {pid} at t={report.time:g}: {report.phase}, "
        f"{'inside' if report.inside else 'outside'} the doorway"
        + (", CRASHED" if report.crashed else "")
    ]
    if report.waiting_phase is None:
        lines.append("  not blocked (thinking, eating, crashed, or fully enabled)")
    else:
        lines.append(f"  blocked in phase {report.waiting_phase}:")
        for status in report.statuses:
            if not status.blocking:
                continue
            what = "doorway ack" if status.blocks_doorway else "shared fork"
            fate = "CRASHED (undetected!)" if status.crashed else "live, not suspected"
            extra = []
            if status.blocks_doorway and status.ping_pending:
                extra.append("ping pending")
            if status.blocks_forks:
                extra.append("token held" if status.we_hold_token else "token away (request sent or deferred)")
            detail = f" [{', '.join(extra)}]" if extra else ""
            lines.append(f"    waiting for {what} from {status.neighbor} — {fate}{detail}")
    if spans:
        lines.extend(_critical_path_lines(spans, pid))
    return "\n".join(lines)


def explain_verdict(table: DiningTable, verdict: Verdict, *, spans=None) -> str:
    """Diagnose every failure a :class:`~repro.checks.Verdict` reports.

    Starving diners named by a failed progress property get the full
    :func:`explain_starvation` wait analysis (their live state still
    holds the answer); every other failed property is summarized by its
    first witness.  ``spans`` (from an attached tracer) adds each
    starving diner's critical path to its analysis.
    """
    lines: List[str] = []
    for name in verdict.failed:
        prop = verdict.property(name)
        if name == PROGRESS:
            for pid in prop.details.get("starving", []):
                if lines:
                    lines.append("")
                lines.append(explain_starvation(table, pid, spans=spans))
            continue
        witness = prop.first_violation
        if witness is not None:
            trace = (
                f" trace={witness.trace_id:#x}/{witness.span_id}"
                if getattr(witness, "trace_id", None) is not None
                else ""
            )
            lines.append(f"{name} failed at t={witness.time:g}: {witness.detail}{trace}")
    if not lines:
        return "no failed properties to explain"
    return "\n".join(lines)
