"""Self-stabilizing BFS spanning tree (Dolev, Israeli & Moran style).

A rooted shortest-path tree that repairs itself from arbitrary register
corruption — the classic "silent" stabilizing structure, and a daemon
client whose legitimate state is *globally* meaningful (distances), not
just locally quiescent.

Registers per process: ``(dist, parent)``.

* the **root** sets ``dist = 0, parent = None``;
* every other process sets ``dist = 1 + min(neighbor dists)`` (capped at
  ``n``, the "unreachable" sentinel) and ``parent`` to the smallest-id
  neighbor achieving the minimum (``None`` when unreachable).

A process is enabled whenever its registers differ from that recomputation.

**Crash-aware extension** (``suspector``): distances advertised by a
crashed process freeze and can poison the tree (a dead node advertising
``dist = 1`` forever attracts parents into a black hole).  With a
suspector backed by the run's ◇P₁ modules, suspected neighbors are
excluded from the minimum: after the detector converges, the protocol
stabilizes to a BFS tree of the *live* subgraph, and unreachable live
processes settle at the sentinel.
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.stabilization.protocol import GuardedProtocol

RECOMPUTE = "recompute"

Suspector = Callable[[ProcessId], FrozenSet[ProcessId]]


def _no_suspicions(pid: ProcessId) -> FrozenSet[ProcessId]:
    return frozenset()


class BfsSpanningTree(GuardedProtocol):
    """Rooted self-stabilizing BFS tree with an unreachable sentinel."""

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        root: ProcessId,
        initial: Optional[dict] = None,
        suspector: Optional[Suspector] = None,
    ) -> None:
        super().__init__(graph)
        if root not in graph:
            raise ConfigurationError(f"root {root} is not in the graph")
        self.root = root
        self.sentinel = len(graph)  # dist >= n means "unreachable"
        self._suspector = suspector if suspector is not None else _no_suspicions
        for pid in graph.nodes:
            if initial and pid in initial:
                dist, parent = initial[pid]
                dist = max(0, min(int(dist), self.sentinel))
                if parent is not None and parent not in graph.neighbors(pid):
                    parent = None
                self.write(pid, (dist, parent))
            else:
                self.write(pid, (self.sentinel, None))

    # ------------------------------------------------------------------
    def dist(self, pid: ProcessId) -> int:
        return self.read(pid)[0]

    def parent(self, pid: ProcessId) -> Optional[ProcessId]:
        return self.read(pid)[1]

    def _target(self, pid: ProcessId) -> Tuple[int, Optional[ProcessId]]:
        """What (dist, parent) should be, given current neighbor registers."""
        if pid == self.root:
            return (0, None)
        suspected = self._suspector(pid)
        candidates = [
            (self.dist(nbr), nbr)
            for nbr in self.graph.neighbors(pid)
            if nbr not in suspected
        ]
        if not candidates:
            return (self.sentinel, None)
        best_dist, best_nbr = min(candidates)
        dist = min(best_dist + 1, self.sentinel)
        parent = best_nbr if dist < self.sentinel else None
        return (dist, parent)

    def enabled_actions(self, pid: ProcessId) -> List[str]:
        return [RECOMPUTE] if self.read(pid) != self._target(pid) else []

    def execute(self, pid: ProcessId) -> Optional[str]:
        target = self._target(pid)
        if self.read(pid) == target:
            return None
        self.write(pid, target)
        return RECOMPUTE

    # ------------------------------------------------------------------
    def tree_edges(self) -> List[Tuple[ProcessId, ProcessId]]:
        """(child, parent) pairs currently claimed."""
        return [
            (pid, self.parent(pid))
            for pid in self.graph.nodes
            if self.parent(pid) is not None
        ]

    def is_correct_bfs(self, live: Iterable[ProcessId]) -> bool:
        """Do live registers equal true BFS distances on the live subgraph?

        Distances are computed ignoring crashed processes entirely (the
        crash-aware protocol converges to exactly this once ◇P₁ has
        converged).
        """
        live_set = set(live)
        if self.root not in live_set:
            return False
        true_dist = {self.root: 0}
        frontier = [self.root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for nbr in self.graph.neighbors(node):
                    if nbr in live_set and nbr not in true_dist:
                        true_dist[nbr] = true_dist[node] + 1
                        next_frontier.append(nbr)
            frontier = next_frontier
        for pid in live_set:
            expected = true_dist.get(pid, self.sentinel)
            if self.dist(pid) != min(expected, self.sentinel):
                return False
        return True

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """No live process enabled (silent protocol ⇒ registers correct)."""
        return not any(self.enabled_actions(pid) for pid in live)

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        old = self.read(pid)
        neighbors = list(self.graph.neighbors(pid))
        new_parent = rng.choice([None] + neighbors) if neighbors else None
        new = (rng.randrange(self.sentinel + 1), new_parent)
        self.write(pid, new)
        return f"tree[{pid}]: {old} -> {new}"
