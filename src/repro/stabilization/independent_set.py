"""Self-stabilizing maximal independent set under local mutual exclusion.

A third daemon client, with the classic two rules over a boolean
``in``/``out`` register (ties broken by process id so neighboring INs
cannot oscillate):

* **enter** — ``out`` and no neighbor is ``in``: become ``in``;
* **retreat** — ``in`` and some *smaller-id* neighbor is ``in``: become
  ``out`` (the smaller id stays; under local mutual exclusion the pair
  never flips simultaneously, and pre-convergence ◇WX mistakes that do
  flip both are one more transient fault to absorb).

Quiescence is exactly "independent and maximal": no retreat enabled
means no two adjacent INs (the larger-id one would retreat); no enter
enabled means every OUT has an IN neighbor.

Crash behaviour: registers of crashed processes stay readable (frozen).
A frozen IN keeps excluding its live neighbors — consistent, since
independence is judged against all registers; a frozen OUT is inert.
Legitimacy is judged as live quiescence, like the matching protocol.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.stabilization.protocol import GuardedProtocol

ENTER = "enter"
RETREAT = "retreat"


class MaximalIndependentSet(GuardedProtocol):
    """Stabilizing MIS with id-ordered conflict resolution."""

    def __init__(self, graph: ConflictGraph, *, initial: Optional[dict] = None) -> None:
        super().__init__(graph)
        for pid in graph.nodes:
            value = bool(initial.get(pid, False)) if initial else False
            self.write(pid, value)

    # ------------------------------------------------------------------
    def _is_in(self, pid: ProcessId) -> bool:
        return bool(self.read(pid))

    def _in_neighbors(self, pid: ProcessId) -> List[ProcessId]:
        return [nbr for nbr in self.graph.neighbors(pid) if self._is_in(nbr)]

    def enabled_actions(self, pid: ProcessId) -> List[str]:
        in_neighbors = self._in_neighbors(pid)
        if not self._is_in(pid):
            return [ENTER] if not in_neighbors else []
        if any(nbr < pid for nbr in in_neighbors):
            return [RETREAT]
        return []

    def execute(self, pid: ProcessId) -> Optional[str]:
        actions = self.enabled_actions(pid)
        if not actions:
            return None
        self.write(pid, actions[0] == ENTER)
        return actions[0]

    # ------------------------------------------------------------------
    def members(self) -> Set[ProcessId]:
        """The current IN set."""
        return {pid for pid in self.graph.nodes if self._is_in(pid)}

    def is_independent(self) -> bool:
        """No conflict edge joins two IN processes."""
        return not any(self._is_in(a) and self._is_in(b) for a, b in self.graph.edges)

    def is_maximal(self) -> bool:
        """Every OUT process has an IN neighbor."""
        return all(
            self._is_in(pid) or self._in_neighbors(pid) for pid in self.graph.nodes
        )

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """No live process has an enabled rule.

        Live quiescence implies the set is independent and maximal with
        respect to everything a live process can still change.
        """
        return not any(self.enabled_actions(pid) for pid in live)

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        old = self._is_in(pid)
        new = rng.random() < 0.5
        self.write(pid, new)
        return f"membership[{pid}]: {old} -> {new}"
