"""Guarded-command protocol abstraction for daemon-hosted protocols.

The paper models each process of a self-stabilizing protocol as a set of
guarded commands over locally shared memory: a process's action may read
its neighbors' registers and write its own.  The daemon guarantees that a
scheduled process runs one enabled action with no conflicting neighbor
running simultaneously (up to the finitely many pre-convergence ◇WX
mistakes).

:class:`GuardedProtocol` is the base class concrete protocols extend.  It
owns the per-process registers (this models locally shared memory — the
*scheduling*, not the data plane, is what the daemon provides) and the
bookkeeping hooks the daemon and the experiments need:

* :meth:`execute` — fire one enabled action at a process;
* :meth:`legitimate` — the closed safety predicate over live processes;
* :meth:`corrupt` — transient fault injection (arbitrary register value);
* :meth:`conflict_edges` — which registers disagree (diagnostics).

Concrete protocols: :mod:`repro.stabilization.token_ring`,
:mod:`repro.stabilization.coloring_protocol`,
:mod:`repro.stabilization.matching`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId


class GuardedProtocol:
    """Base class for daemon-hosted guarded-command protocols."""

    def __init__(self, graph: ConflictGraph) -> None:
        self.graph = graph
        self._registers: Dict[ProcessId, object] = {}

    # ------------------------------------------------------------------
    # Register (locally shared memory) access
    # ------------------------------------------------------------------
    def read(self, pid: ProcessId):
        """Read a process's register (any process may read any neighbor's)."""
        try:
            return self._registers[pid]
        except KeyError:
            raise ConfigurationError(f"no register for process {pid}") from None

    def write(self, pid: ProcessId, value) -> None:
        """Write a process's own register."""
        if pid not in self.graph:
            raise ConfigurationError(f"unknown process {pid}")
        self._registers[pid] = value

    def snapshot(self) -> Dict[ProcessId, object]:
        """Copy of the global register state (tests and diagnostics)."""
        return dict(self._registers)

    # ------------------------------------------------------------------
    # Protocol interface (subclasses implement)
    # ------------------------------------------------------------------
    def enabled_actions(self, pid: ProcessId) -> List[str]:
        """Names of this process's currently enabled guarded commands."""
        raise NotImplementedError

    def execute(self, pid: ProcessId) -> Optional[str]:
        """Fire one enabled action at ``pid``; return its name or None.

        Must be atomic with respect to the register map (the daemon
        provides the exclusion; this method just applies the command).
        """
        raise NotImplementedError

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """The protocol's closed safety predicate, judged over ``live``."""
        raise NotImplementedError

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        """Set ``pid``'s register to an arbitrary value; return a detail string."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def has_enabled(self, pid: ProcessId) -> bool:
        return bool(self.enabled_actions(pid))

    def enabled_anywhere(self, live: Iterable[ProcessId]) -> bool:
        return any(self.has_enabled(pid) for pid in live)
