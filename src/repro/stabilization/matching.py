"""Self-stabilizing maximal matching (Hsu & Huang 1992), crash-aware.

Each process holds a pointer register ``p ∈ neighbors ∪ {None}``.  The
classic three rules (executed under local mutual exclusion):

* **marry** — ``p = None`` and some neighbor points at me: point back
  (smallest such neighbor, for determinism);
* **propose** — ``p = None``, nobody points at me, and some neighbor is
  unengaged (``p = None``): point at the smallest such neighbor;
* **back-off** — ``p = j`` but ``j`` points at some third party: reset to
  ``None``.

Quiescence implies the mutual pairs form a maximal matching.

**Crash-aware extension** (library extension, flagged by ``suspector``):
the classic rules deadlock under crashes — a proposal to a process that
crashed while unengaged waits forever for an acceptance.  Supplying a
``suspector`` callback (pid → set of suspected neighbors, e.g. backed by
the run's ◇P₁ modules) adds a fourth rule:

* **widow** — ``p = j`` and ``j`` is suspected: reset to ``None``.

With ◇P₁'s completeness, proposals to crashed neighbors are eventually
withdrawn and the live subgraph still reaches a maximal matching; its
eventual accuracy ensures only finitely many live engagements are
spuriously dissolved.  This demonstrates the paper's oracle benefiting
the hosted protocol layer, not just the daemon.
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.stabilization.protocol import GuardedProtocol

MARRY = "marry"
PROPOSE = "propose"
BACK_OFF = "back-off"
WIDOW = "widow"

Suspector = Callable[[ProcessId], FrozenSet[ProcessId]]


def _no_suspicions(pid: ProcessId) -> FrozenSet[ProcessId]:
    return frozenset()


class MaximalMatching(GuardedProtocol):
    """Hsu-Huang maximal matching with an optional crash-aware rule."""

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        initial: Optional[dict] = None,
        suspector: Optional[Suspector] = None,
    ) -> None:
        super().__init__(graph)
        self._suspector: Suspector = suspector if suspector is not None else _no_suspicions
        for pid in graph.nodes:
            value = None if initial is None else initial.get(pid)
            if value is not None and value not in graph.neighbors(pid):
                value = None  # arbitrary corruption may point anywhere; clamp to the model
            self.write(pid, value)

    # ------------------------------------------------------------------
    # Rule evaluation
    # ------------------------------------------------------------------
    def _pointer(self, pid: ProcessId) -> Optional[ProcessId]:
        return self.read(pid)

    def _trusted_neighbors(self, pid: ProcessId) -> List[ProcessId]:
        """Neighbors not currently suspected by ``pid``'s detector module.

        Proposing to (or marrying) a suspected neighbor would immediately
        re-enable the widow rule, so the crash-aware variant courts only
        trusted neighbors.  With no suspector this is all neighbors.
        """
        suspected = self._suspector(pid)
        return [nbr for nbr in self.graph.neighbors(pid) if nbr not in suspected]

    def _suitors(self, pid: ProcessId) -> List[ProcessId]:
        return [nbr for nbr in self._trusted_neighbors(pid) if self._pointer(nbr) == pid]

    def _unengaged_neighbors(self, pid: ProcessId) -> List[ProcessId]:
        return [nbr for nbr in self._trusted_neighbors(pid) if self._pointer(nbr) is None]

    def enabled_actions(self, pid: ProcessId) -> List[str]:
        pointer = self._pointer(pid)
        actions: List[str] = []
        if pointer is None:
            if self._suitors(pid):
                actions.append(MARRY)
            elif self._unengaged_neighbors(pid):
                actions.append(PROPOSE)
        else:
            if pointer in self._suspector(pid):
                actions.append(WIDOW)
            partner_pointer = self._pointer(pointer)
            if partner_pointer is not None and partner_pointer != pid:
                actions.append(BACK_OFF)
        return actions

    def execute(self, pid: ProcessId) -> Optional[str]:
        actions = self.enabled_actions(pid)
        if not actions:
            return None
        action = actions[0]
        if action == MARRY:
            self.write(pid, min(self._suitors(pid)))
        elif action == PROPOSE:
            self.write(pid, min(self._unengaged_neighbors(pid)))
        else:  # BACK_OFF or WIDOW
            self.write(pid, None)
        return action

    # ------------------------------------------------------------------
    # Legitimacy
    # ------------------------------------------------------------------
    def matched_pairs(self) -> Set[Tuple[ProcessId, ProcessId]]:
        """Mutually pointing pairs (the matching)."""
        pairs: Set[Tuple[ProcessId, ProcessId]] = set()
        for pid in self.graph.nodes:
            partner = self._pointer(pid)
            if partner is not None and self._pointer(partner) == pid:
                pairs.add((min(pid, partner), max(pid, partner)))
        return pairs

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """No live process has an enabled rule.

        By the rule structure, live quiescence means every live pointer is
        half of a mutual pair (or aimed at a not-yet-suspected crashed
        partner, which ◇P₁ completeness makes transient) and no two
        unengaged live neighbors remain — i.e. the matching is maximal on
        the live subgraph.
        """
        return not any(self.enabled_actions(pid) for pid in live)

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        old = self._pointer(pid)
        choices: List[Optional[ProcessId]] = [None] + list(self.graph.neighbors(pid))
        new = rng.choice(choices)
        self.write(pid, new)
        return f"pointer[{pid}]: {old} -> {new}"
