"""Dijkstra's K-state self-stabilizing token ring (1974).

The canonical self-stabilizing protocol, and the canonical daemon client:
from *any* register configuration it converges to exactly one circulating
token — but only if every process keeps taking steps, which is precisely
what the wait-free daemon guarantees.

Processes sit on a ring ``0, 1, …, n-1``.  Each holds a counter in
``{0, …, K-1}`` with ``K > n``:

* the **root** (position 0) is enabled ("has the token") when its counter
  equals its predecessor's (position n-1); its action increments modulo K;
* every **other** process is enabled when its counter differs from its
  predecessor's; its action copies the predecessor.

Legitimacy: exactly one process enabled.  Transient faults (arbitrary
counter corruption) create extra tokens; Dijkstra's theorem says they die
out within O(n²) daemon-fair steps.

Crash caveat: a crashed process freezes its counter and breaks token
circulation, so this protocol is the daemon's client in *crash-free*
transient-fault runs (E7a); the crash-tolerant clients are the coloring
and matching protocols.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.graphs.conflict import ProcessId
from repro.graphs.topologies import ring
from repro.stabilization.protocol import GuardedProtocol

MOVE_TOKEN = "advance-token"
COPY_PREDECESSOR = "copy-predecessor"


class DijkstraTokenRing(GuardedProtocol):
    """K-state token ring on ``n`` processes (ids ``0..n-1``).

    Parameters
    ----------
    n:
        Ring size (the conflict graph is built internally: dining
        neighbors are ring neighbors, which is exactly the conflict
        relation — a process's action reads its predecessor's register).
    k:
        Counter alphabet size; must exceed ``n`` for self-stabilization.
    initial:
        Optional initial counters (defaults to all zero — a legitimate
        state with the token at the root).
    """

    def __init__(self, n: int, *, k: Optional[int] = None, initial: Optional[List[int]] = None) -> None:
        if n < 3:
            raise ConfigurationError("token ring needs at least 3 processes")
        super().__init__(ring(n))
        self.n = n
        self.k = k if k is not None else n + 1
        if self.k <= n:
            raise ConfigurationError(f"need K > n for stabilization; got K={self.k}, n={n}")
        values = initial if initial is not None else [0] * n
        if len(values) != n:
            raise ConfigurationError(f"initial state has {len(values)} values for {n} processes")
        for pid, value in enumerate(values):
            self.write(pid, int(value) % self.k)

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def _predecessor(self, pid: ProcessId) -> ProcessId:
        return (pid - 1) % self.n

    def holds_token(self, pid: ProcessId) -> bool:
        """Token = enabled guard, per Dijkstra's reading."""
        own = self.read(pid)
        pred = self.read(self._predecessor(pid))
        if pid == 0:
            return own == pred
        return own != pred

    def enabled_actions(self, pid: ProcessId) -> List[str]:
        if not self.holds_token(pid):
            return []
        return [MOVE_TOKEN if pid == 0 else COPY_PREDECESSOR]

    def execute(self, pid: ProcessId) -> Optional[str]:
        if not self.holds_token(pid):
            return None
        if pid == 0:
            self.write(pid, (self.read(pid) + 1) % self.k)
            return MOVE_TOKEN
        self.write(pid, self.read(self._predecessor(pid)))
        return COPY_PREDECESSOR

    def token_holders(self) -> List[ProcessId]:
        return [pid for pid in range(self.n) if self.holds_token(pid)]

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """Exactly one token in the whole ring.

        The ring is only a sensible client when every process is live, so
        legitimacy here is global; ``live`` is accepted for interface
        uniformity.
        """
        return len(self.token_holders()) == 1

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        old = self.read(pid)
        new = rng.randrange(self.k)
        self.write(pid, new)
        return f"counter[{pid}]: {old} -> {new}"
