"""Transient-fault injection for daemon-hosted protocols.

Self-stabilization's raison d'être is recovery from transient faults —
arbitrary corruption of protocol registers.  A :class:`TransientFaultPlan`
schedules bursts of corruption against a
:class:`~repro.core.daemon.DistributedDaemon`'s hosted protocol; the E7
experiment then measures re-convergence.

Faults are applied through :meth:`DistributedDaemon.inject_fault`, so they
are recorded in the trace and the daemon's legitimacy bookkeeping stays
accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.daemon import DistributedDaemon
from repro.errors import ConfigurationError
from repro.graphs.conflict import ProcessId
from repro.sim.events import EventPriority
from repro.sim.time import Instant, validate_instant


@dataclass(frozen=True)
class FaultBurst:
    """At ``time``, corrupt each process in ``victims`` once."""

    time: Instant
    victims: Tuple[ProcessId, ...]


class TransientFaultPlan:
    """A scripted or randomized sequence of fault bursts."""

    def __init__(self, bursts: Sequence[FaultBurst]) -> None:
        self.bursts: List[FaultBurst] = sorted(bursts, key=lambda b: b.time)
        for burst in self.bursts:
            validate_instant(burst.time, name="burst time")
            if not burst.victims:
                raise ConfigurationError("fault burst with no victims")

    @staticmethod
    def scripted(bursts: Sequence[Tuple[Instant, Sequence[ProcessId]]]) -> "TransientFaultPlan":
        """Exact bursts: ``[(time, [pids…]), …]``."""
        return TransientFaultPlan(
            [FaultBurst(time, tuple(victims)) for time, victims in bursts]
        )

    @staticmethod
    def random(
        daemon: DistributedDaemon,
        *,
        burst_times: Sequence[Instant],
        victims_per_burst: int,
        stream_name: str = "transient-faults",
    ) -> "TransientFaultPlan":
        """Random victims per burst, drawn from the daemon's process set.

        Victims are sampled from all processes (a fault may corrupt a
        register just before its owner crashes; the surviving corruption
        still perturbs live readers — which is the interesting case).
        """
        rng = daemon.table.sim.streams.stream(stream_name)
        pids = sorted(daemon.table.graph.nodes)
        if victims_per_burst < 1 or victims_per_burst > len(pids):
            raise ConfigurationError(
                f"cannot pick {victims_per_burst} victims from {len(pids)} processes"
            )
        bursts = [
            FaultBurst(validate_instant(t, name="burst time"), tuple(sorted(rng.sample(pids, victims_per_burst))))
            for t in burst_times
        ]
        return TransientFaultPlan(bursts)

    # ------------------------------------------------------------------
    def apply(self, daemon: DistributedDaemon) -> None:
        """Schedule every burst on the daemon's simulator.

        Bursts only corrupt processes that are still live when the burst
        fires — a crashed process takes no steps, including faulty ones,
        and its register freeze is already modeled by the crash.
        """

        def make_burst(burst: FaultBurst):
            def fire() -> None:
                for pid in burst.victims:
                    if not daemon.table.diners[pid].crashed:
                        daemon.inject_fault(pid)

            return fire

        for burst in self.bursts:
            daemon.table.sim.schedule_at(
                burst.time,
                make_burst(burst),
                priority=EventPriority.CONTROL,
                label=f"fault burst at {burst.time}",
            )

    @property
    def last_burst_time(self) -> Instant:
        return self.bursts[-1].time if self.bursts else 0.0
