"""Self-stabilizing proper coloring under local mutual exclusion.

A simple greedy recoloring protocol that is the workhorse crash-tolerant
client for the E7 daemon experiment:

* a process is **enabled** when its color collides with any neighbor's
  (including a crashed neighbor's frozen color — registers of crashed
  processes remain readable shared memory);
* its **action** recolors to the smallest color absent from all
  neighbors' registers.

Under local mutual exclusion the protocol converges from any state: when
a process recolors, no conflicting neighbor moves simultaneously, so the
new color clears every collision at that process and introduces none —
the number of collision edges strictly decreases with each effective
step.  Pre-convergence ◇WX mistakes can let two neighbors recolor
together and collide again; that is exactly the "sharing violation as
transient fault" the paper budgets for, and it happens only finitely
often.

Crash tolerance: a crashed process freezes its color; live neighbors
simply avoid it.  Legitimacy is judged over edges with at least one live
endpoint, which live processes can always fix alone.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.graphs.conflict import ConflictGraph, ProcessId
from repro.stabilization.protocol import GuardedProtocol

RECOLOR = "recolor"


class GreedyRecoloring(GuardedProtocol):
    """Stabilizing proper coloring with colors in ``{0, …, δ}``."""

    def __init__(
        self,
        graph: ConflictGraph,
        *,
        initial: Optional[Dict[ProcessId, int]] = None,
        palette_size: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        self.palette_size = palette_size if palette_size is not None else graph.max_degree + 1
        if self.palette_size < graph.max_degree + 1:
            raise ConfigurationError(
                f"palette of {self.palette_size} colors cannot properly color "
                f"a graph with max degree {graph.max_degree}"
            )
        for pid in graph.nodes:
            value = 0 if initial is None else int(initial.get(pid, 0))
            self.write(pid, value % self.palette_size)

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def _collides(self, pid: ProcessId) -> bool:
        own = self.read(pid)
        return any(self.read(nbr) == own for nbr in self.graph.neighbors(pid))

    def enabled_actions(self, pid: ProcessId) -> List[str]:
        return [RECOLOR] if self._collides(pid) else []

    def execute(self, pid: ProcessId) -> Optional[str]:
        if not self._collides(pid):
            return None
        taken = {self.read(nbr) for nbr in self.graph.neighbors(pid)}
        color = 0
        while color in taken:
            color += 1
        self.write(pid, color)
        return RECOLOR

    def conflict_edges(self, live: Iterable[ProcessId]) -> List[tuple]:
        """Collision edges with at least one live endpoint."""
        live_set = set(live)
        return [
            (a, b)
            for a, b in sorted(self.graph.edges)
            if (a in live_set or b in live_set) and self.read(a) == self.read(b)
        ]

    def legitimate(self, live: Iterable[ProcessId]) -> bool:
        """No collision on any edge a live process could still fix."""
        return not self.conflict_edges(live)

    def corrupt(self, pid: ProcessId, rng: random.Random) -> str:
        old = self.read(pid)
        new = rng.randrange(self.palette_size)
        self.write(pid, new)
        return f"color[{pid}]: {old} -> {new}"
