"""Hosted self-stabilizing protocols — the distributed daemon's clients."""

from repro.stabilization.bfs_tree import BfsSpanningTree, RECOMPUTE
from repro.stabilization.coloring_protocol import GreedyRecoloring, RECOLOR
from repro.stabilization.faults import FaultBurst, TransientFaultPlan
from repro.stabilization.independent_set import ENTER, MaximalIndependentSet, RETREAT
from repro.stabilization.matching import (
    BACK_OFF,
    MARRY,
    MaximalMatching,
    PROPOSE,
    WIDOW,
)
from repro.stabilization.protocol import GuardedProtocol
from repro.stabilization.token_ring import (
    COPY_PREDECESSOR,
    DijkstraTokenRing,
    MOVE_TOKEN,
)

__all__ = [
    "BACK_OFF",
    "BfsSpanningTree",
    "COPY_PREDECESSOR",
    "DijkstraTokenRing",
    "ENTER",
    "FaultBurst",
    "GreedyRecoloring",
    "GuardedProtocol",
    "MARRY",
    "MOVE_TOKEN",
    "MaximalIndependentSet",
    "MaximalMatching",
    "PROPOSE",
    "RECOLOR",
    "RECOMPUTE",
    "RETREAT",
    "TransientFaultPlan",
    "WIDOW",
]
